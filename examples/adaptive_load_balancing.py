#!/usr/bin/env python
"""The Table-5 scenario: a competing load appears on one workstation; the
runtime detects the imbalance, prices a remap, and redistributes.

The experiment follows the paper exactly:
  1. the mesh is decomposed assuming all processors have EQUAL capability;
  2. a constant competing load sits on workstation 1;
  3. without load balancing, the loaded machine drags every iteration;
  4. with a check every 10 iterations, one remap restores balance.

Run:  python examples/adaptive_load_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import adaptive_testbed
from repro.graph import paper_mesh
from repro.runtime import (
    LoadBalanceConfig,
    ProgramConfig,
    run_program,
    run_sequential,
)


def main() -> None:
    graph = paper_mesh(5_000, seed=11)
    cluster = adaptive_testbed(4, competing_load=2.0)
    y0 = np.random.default_rng(1).uniform(0.0, 100.0, graph.num_vertices)
    iterations = 80

    base = ProgramConfig(
        iterations=iterations,
        initial_capabilities="equal",  # the paper's deliberately bad split
    )
    no_lb = run_program(graph, cluster, base, y0=y0)
    print(f"without load balancing: {no_lb.makespan:8.3f} virtual s")

    with_lb_cfg = ProgramConfig(
        iterations=iterations,
        initial_capabilities="equal",
        load_balance=LoadBalanceConfig(check_interval=10),
    )
    with_lb = run_program(graph, cluster, with_lb_cfg, y0=y0)
    print(f"with load balancing:    {with_lb.makespan:8.3f} virtual s")
    print(f"  remaps performed:     {with_lb.num_remaps}")
    print(f"  check cost (total):   {with_lb.lb_check_time:8.4f} s")
    print(f"  remap cost (total):   {with_lb.remap_time:8.4f} s")
    speedup = no_lb.makespan / with_lb.makespan
    print(f"  improvement:          {speedup:.2f}x")

    # Remapping never changes the numerics — both match the oracle.
    oracle = run_sequential(graph, y0, iterations)
    assert np.abs(no_lb.values - oracle).max() < 1e-9
    assert np.abs(with_lb.values - oracle).max() < 1e-9
    print("both runs match the sequential oracle exactly")

    # How the data ended up split (capability-proportional, not equal).
    part = with_lb.partition_final
    assert part is not None
    print(f"final partition sizes by rank: {part.sizes().tolist()}")


if __name__ == "__main__":
    main()
