#!/usr/bin/env python
"""Beyond Fig. 8: an irregular sparse matrix-vector kernel (power
iteration) on the same runtime machinery.

Shows the library is not wired to one kernel: any computation with a
symmetric access pattern gets schedules from the same inspector and data
movement from the same executor.

Run:  python examples/spmv_power_iteration.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    SymmetricPatternMatrix,
    run_parallel_spmv,
    spmv_sequential,
)
from repro.graph import paper_mesh
from repro.net import sun4_cluster


def main() -> None:
    graph = paper_mesh(2_500, seed=13)
    base = SymmetricPatternMatrix.laplacian_like(graph, shift=0.5)
    # Boost one diagonal entry so the dominant eigenvalue is well separated
    # (a mesh Laplacian's top eigenvalues are clustered, which would make
    # power iteration converge impractically slowly for a demo).
    diag = base.diag.copy()
    diag[0] += 25.0
    mat = SymmetricPatternMatrix(graph=graph, offdiag=base.offdiag, diag=diag)
    x0 = np.ones(graph.num_vertices)
    iterations = 40

    # Sequential power iteration (the oracle).
    x = x0.copy()
    for _ in range(iterations):
        y = spmv_sequential(mat, x)
        x = y / np.linalg.norm(y)

    x_par, makespan = run_parallel_spmv(
        mat, sun4_cluster(4), x0, iterations=iterations
    )
    print(f"virtual makespan over 4 workstations: {makespan:.3f} s")

    # Floating-point summation order differs between the sequential and the
    # distributed normalization, so the meaningful comparison is the
    # eigenpair quality, not bit-identical vectors.
    def rayleigh(v: np.ndarray) -> float:
        return float(np.dot(v, spmv_sequential(mat, v)) / np.dot(v, v))

    lam_seq, lam_par = rayleigh(x), rayleigh(x_par)
    resid = np.linalg.norm(
        spmv_sequential(mat, x_par) - lam_par * x_par
    ) / np.linalg.norm(x_par)
    print(f"dominant eigenvalue: sequential {lam_seq:.9f}, parallel {lam_par:.9f}")
    print(f"parallel eigenpair residual: {resid:.2e}")
    assert abs(lam_seq - lam_par) < 1e-9
    assert resid < 1e-6
    print("parallel power iteration found the same dominant eigenpair")


if __name__ == "__main__":
    main()
