#!/usr/bin/env python
"""Quickstart: partition an unstructured mesh and run the paper's irregular
loop on a heterogeneous simulated cluster.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.graph import paper_mesh
from repro.net import sun4_cluster
from repro.runtime import (
    ProgramConfig,
    cluster_efficiency,
    run_program,
    run_sequential,
)


def main() -> None:
    # The paper's workload, scaled down: an unstructured 2-D mesh with the
    # Fig. 9 edge/vertex ratio.
    graph = paper_mesh(4_000, seed=7)
    print(f"workload: {graph}")

    # The paper's testbed: heterogeneous SUN4-class workstations on a
    # shared 10 Mbit/s Ethernet.
    cluster = sun4_cluster(4)
    print(f"cluster speeds: {cluster.speeds.tolist()}")

    # Phase A-D in one call: RCB ordering, proportional interval split,
    # sort2 inspector, 50 executor iterations.
    y0 = np.random.default_rng(0).uniform(0.0, 100.0, graph.num_vertices)
    config = ProgramConfig(iterations=50, strategy="sort2")
    report = run_program(graph, cluster, config, y0=y0)

    print(f"virtual parallel time: {report.makespan:.3f} s")
    eff = cluster_efficiency(cluster, report.makespan, report.total_work_seconds)
    print(f"nonuniform efficiency (Sec. 4): {eff:.3f}")

    # The parallel run computes exactly what the sequential loop computes.
    oracle = run_sequential(graph, y0, config.iterations)
    err = np.abs(report.values - oracle).max()
    print(f"max deviation from sequential oracle: {err:.2e}")
    assert err < 1e-9

    # Per-rank breakdown.
    for s in report.rank_stats:
        print(
            f"  rank {s.rank}: {s.n_local_final:5d} vertices, "
            f"compute {s.compute_time:7.3f}s, inspector {s.inspector_time:6.4f}s"
        )


if __name__ == "__main__":
    main()
