#!/usr/bin/env python
"""The Fig. 5 / Sec. 3.4 walkthrough: how the arrangement changes
redistribution cost, and how MinimizeCostRedistribution finds a good one.

Uses the paper's exact example: 100 elements, five processors whose
capability ratios adapt from (0.27, 0.18, 0.34, 0.07, 0.14) to
(0.10, 0.13, 0.29, 0.24, 0.24).

Run:  python examples/redistribution_mcr.py
"""

from __future__ import annotations

import numpy as np

from repro.partition import (
    brute_force_arrangement,
    message_count,
    minimize_cost_redistribution,
    overlap_elements,
    partition_list,
    transfer_matrix,
)
from repro.utils import format_table


def describe(label: str, old, new) -> list[object]:
    return [
        label,
        overlap_elements(old, new),
        100 - overlap_elements(old, new),
        message_count(old, new),
    ]


def main() -> None:
    old_cap = [0.27, 0.18, 0.34, 0.07, 0.14]
    new_cap = [0.10, 0.13, 0.29, 0.24, 0.24]
    n = 100
    old = partition_list(n, old_cap)

    rows = []
    identity = partition_list(n, new_cap)
    rows.append(describe("identity (P0,P1,P2,P3,P4)", old, identity))

    paper_arr = partition_list(n, new_cap, [0, 3, 1, 2, 4])
    rows.append(describe("paper's (P0,P3,P1,P2,P4)", old, paper_arr))

    mcr = minimize_cost_redistribution(np.arange(5), old_cap, new_cap, n)
    mcr_part = partition_list(n, new_cap, mcr)
    rows.append(describe(f"MCR greedy {mcr.tolist()}", old, mcr_part))

    best, _ = brute_force_arrangement(np.arange(5), old_cap, new_cap, n)
    best_part = partition_list(n, new_cap, best)
    rows.append(describe(f"brute force {best.tolist()}", old, best_part))

    print(
        format_table(
            ["Arrangement", "Overlap", "Moved", "Messages"],
            rows,
            title="Fig. 5: arrangements and redistribution cost (n=100)",
        )
    )
    print("\n(paper reports 29 overlapped elements / 5 messages for the")
    print(" original arrangement and 65 / 3 for (P0,P3,P1,P2,P4); small")
    print(" deviations come from block-rounding of fractional capabilities)")

    print("\ntransfers under the MCR arrangement:")
    for tr in transfer_matrix(old, mcr_part):
        print(
            f"  P{tr.source} -> P{tr.dest}: elements [{tr.lo}, {tr.hi}) "
            f"({tr.count} items)"
        )


if __name__ == "__main__":
    main()
