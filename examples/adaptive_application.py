#!/usr/bin/env python
"""Adaptive applications (paper footnote 1): the computational structure
itself adapts — here, a refinement hotspot sweeping across the mesh.

Without repartitioning, whichever processor currently holds the hotspot
becomes the bottleneck.  With weighted interval repartitioning, every
adaptation triggers phase B again (weighted split, redistribution,
inspector rebuild) and the load stays balanced.

Run:  python examples/adaptive_application.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import MovingHotspot, run_adaptive_application
from repro.graph import paper_mesh
from repro.net import sun4_cluster
from repro.runtime import run_sequential


def main() -> None:
    graph = paper_mesh(4_000, seed=17)
    cluster = sun4_cluster(4)
    iterations, adapt_interval = 60, 10
    hotspot = MovingHotspot(
        graph, amplitude=14.0, radius_fraction=0.12,
        n_phases=iterations // adapt_interval,
    )
    y0 = np.random.default_rng(4).uniform(0.0, 100.0, graph.num_vertices)
    print(f"workload: {graph}, hotspot sweeping over {hotspot.n_phases} phases")

    kw = dict(
        iterations=iterations, adapt_interval=adapt_interval,
        hotspot=hotspot, y0=y0,
    )
    static = run_adaptive_application(graph, cluster, repartition=False, **kw)
    print(f"static partition:      {static.makespan:8.3f} virtual s")

    adaptive = run_adaptive_application(graph, cluster, repartition=True, **kw)
    print(f"weighted repartition:  {adaptive.makespan:8.3f} virtual s")
    print(f"  repartitions:        {adaptive.num_repartitions}")
    print(f"  repartition cost:    {adaptive.repartition_time:8.4f} s")
    print(f"  speedup:             {static.makespan / adaptive.makespan:.2f}x")

    oracle = run_sequential(graph, y0, iterations)
    assert np.abs(static.values - oracle).max() < 1e-9
    assert np.abs(adaptive.values - oracle).max() < 1e-9
    print("both runs match the sequential oracle exactly")


if __name__ == "__main__":
    main()
