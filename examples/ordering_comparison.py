#!/usr/bin/env python
"""Fig. 2 theme: compare one-dimensional locality transformations.

One permutation must serve every partition count (Sec. 3.1's "good
partitioning for a wide range of partitions").  This example scores RCB,
inertial, RSB, Hilbert, Morton, and the identity/random baselines by the
edge cut of contiguous equal splits at several processor counts.

Run:  python examples/ordering_comparison.py
"""

from __future__ import annotations

from repro.graph import airfoil_mesh
from repro.partition import (
    HilbertOrdering,
    IdentityOrdering,
    InertialOrdering,
    MortonOrdering,
    RandomOrdering,
    RCBOrdering,
    SpectralOrdering,
    compare_orderings,
)
from repro.utils import format_table


def main() -> None:
    mesh = airfoil_mesh(3_000, seed=9)
    graph = mesh.graph
    print(f"workload: {mesh} (nonconvex airfoil domain)")

    part_counts = (2, 4, 8, 16)
    methods = [
        RCBOrdering(),
        InertialOrdering(),
        SpectralOrdering(leaf_size=128),
        HilbertOrdering(),
        MortonOrdering(),
        IdentityOrdering(),
        RandomOrdering(seed=0),
    ]
    reports = compare_orderings(graph, methods, part_counts)
    rows = [r.as_row(part_counts) for r in reports]
    print(
        format_table(
            ["Ordering", "Mean edge span", "Bandwidth"]
            + [f"cut@{p}" for p in part_counts],
            rows,
            title="1-D locality transformations on an unstructured mesh",
            float_fmt="{:.1f}",
        )
    )
    print(
        "\nlower is better everywhere; a good transformation keeps every "
        "column far below the random baseline"
    )


if __name__ == "__main__":
    main()
