#!/usr/bin/env python
"""Trace analytics: where does the virtual time actually go?

Runs the same workload twice on the Table-5 adaptive environment —
without and with load balancing — and renders per-rank utilization
breakdowns plus ASCII timelines.  The staircase of the unbalanced run
(three ranks waiting at every barrier for the loaded one) versus the
dense balanced timeline tells the paper's whole story in two pictures.

Run:  python examples/trace_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import adaptive_testbed
from repro.graph import paper_mesh
from repro.net import analyze_trace, render_timeline
from repro.runtime import LoadBalanceConfig, ProgramConfig, run_program


def main() -> None:
    graph = paper_mesh(3_000, seed=23)
    cluster = adaptive_testbed(4, competing_load=2.0)
    y0 = np.random.default_rng(6).uniform(0.0, 100.0, graph.num_vertices)

    for label, lb in (("WITHOUT load balancing", None),
                      ("WITH load balancing", LoadBalanceConfig(check_interval=10))):
        config = ProgramConfig(
            iterations=40,
            initial_capabilities="equal",
            load_balance=lb,
            trace=True,
        )
        report = run_program(graph, cluster, config, y0=y0)
        assert report.trace is not None
        util = analyze_trace(report.trace, report.clocks)
        print(f"\n=== {label}: {report.makespan:.3f} virtual s, "
              f"mean utilization {util.mean_utilization:.2f}")
        print(util.to_text())
        print()
        print(render_timeline(report.trace, report.clocks, width=64))


if __name__ == "__main__":
    main()
