#!/usr/bin/env python
"""The Table-4 scenario: static nonuniform workstation pools.

Runs the irregular loop on growing prefixes of the heterogeneous pool and
reports execution time plus the Sec. 4 nonuniform efficiency — the paper's
"reasonable efficiency can be achieved in most cases" result.

Run:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.graph import paper_mesh
from repro.net import sun4_cluster
from repro.runtime import ProgramConfig, nonuniform_efficiency, run_program
from repro.utils import format_table


def main() -> None:
    graph = paper_mesh(5_000, seed=3)
    iterations = 60
    y0 = np.random.default_rng(2).uniform(0.0, 100.0, graph.num_vertices)

    # T(p_i): measured single-machine times for each pool member, exactly
    # how the paper defines the efficiency denominator.
    single_times = []
    for i in range(5):
        solo = sun4_cluster(5).subset([i])
        rep = run_program(
            graph, solo, ProgramConfig(iterations=iterations), y0=y0
        )
        single_times.append(rep.makespan)

    rows = []
    for n in range(1, 6):
        cluster = sun4_cluster(n)
        rep = run_program(
            graph, cluster, ProgramConfig(iterations=iterations), y0=y0
        )
        eff = nonuniform_efficiency(rep.makespan, single_times[:n])
        rows.append([f"1..{n}", rep.makespan, eff])

    print(
        format_table(
            ["Workstations", "Time (virtual s)", "Efficiency"],
            rows,
            title="Static nonuniform pools (Table 4 scenario)",
            float_fmt="{:.3f}",
        )
    )


if __name__ == "__main__":
    main()
