"""Legacy entry point: lets `pip install -e .` work offline (no wheel pkg)."""
from setuptools import setup

setup()
