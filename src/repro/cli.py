"""Command-line interface: ``python -m repro <command>``.

Commands mirror what a downstream user evaluating the runtime wants first:

* ``info`` — library version and a one-line inventory;
* ``run`` — execute the Fig. 8 loop on a synthetic mesh over a simulated
  cluster, with optional adaptive load balancing, and report the paper's
  metrics (time, efficiency, LB costs);
* ``orderings`` — compare 1-D locality transformations on a mesh;
* ``mcr`` — run MinimizeCostRedistribution on given capability vectors;
* ``bench`` — the unified experiment harness (:mod:`repro.experiments`):
  ``list`` registered experiments, ``run`` one over its grid, ``sweep``
  a scenario grid, and ``report`` a markdown diff of two JSON artifacts;
* ``fuzz`` — the seeded adversarial scenario fuzzer (:mod:`repro.fuzz`):
  ``run`` a generated batch or replay one scenario, ``shrink`` a failing
  scenario to a minimal reproducer, ``corpus`` to replay the committed
  corpus in ``tests/fuzz_corpus/``;
* ``serve`` — the multi-tenant job service (:mod:`repro.serve`): submit
  a JSONL job stream (or generate a seeded one), co-schedule it over one
  shared cluster under a chosen admission policy, and print the service
  report (throughput, p50/p99 makespan, Jain fairness, queue waits).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]

_log = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STANCE runtime reproduction (Kaddoura & Ranka, HPDC 1996)",
    )
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="diagnostic verbosity for the repro.* loggers "
                             "(default: REPRO_LOG_LEVEL env var, else info); "
                             "real-world workers inherit it and prefix "
                             "their lines with [rank N]")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print version and inventory")

    run = sub.add_parser("run", help="run the irregular loop on a simulated cluster")
    run.add_argument("--vertices", type=int, default=4000)
    run.add_argument("--iterations", type=int, default=60)
    run.add_argument("--workstations", type=int, default=4, choices=range(1, 6))
    run.add_argument("--strategy", default="sort2",
                     choices=("simple", "sort1", "sort2"))
    run.add_argument("--backend", default=None,
                     choices=("reference", "vectorized"),
                     help="hot-path implementation (default: REPRO_BACKEND "
                          "env var, else vectorized)")
    run.add_argument("--inspector-mode", default="full",
                     choices=("full", "incremental"),
                     help="phase-B rebuild after a remap: 'full' re-runs "
                          "the inspector from scratch, 'incremental' "
                          "patches the previous schedule from the "
                          "boundary diff (identical results, cheaper "
                          "for small boundary shifts)")
    run.add_argument("--load-balance", nargs="?", const="centralized",
                     default="off",
                     choices=("off", "centralized", "distributed"),
                     help="phase-D rebalance strategy (bare flag = "
                          "centralized, the paper's protocol)")
    run.add_argument("--competing-load", type=float, default=0.0,
                     help="competing load on workstation 1 (Table 5: 2.0)")
    run.add_argument("--membership", default=None, metavar="TRACE",
                     help="elastic membership events, e.g. "
                          "'standby:3, join:3@5.0, leave:0@9.5, "
                          "replace:1->2@12, fail:2@15' "
                          "(kind:rank@virtual-time; standby:R starts rank "
                          "R inactive; fail is unannounced and needs "
                          "--checkpoint)")
    run.add_argument("--checkpoint", default=None, metavar="POLICY",
                     help="checkpoint policy for failure recovery: "
                          "'interval:K' (every K iterations) or "
                          "'cost:MTBF' (Young's interval for an MTBF "
                          "estimate in virtual seconds); append ':rF' "
                          "to replicate each epoch to F ring successors")
    run.add_argument("--replication", type=int, default=None, metavar="K",
                     help="replicate each checkpoint epoch to K distinct "
                          "ring successors (survives K correlated "
                          "failures per ring neighborhood; requires "
                          "--checkpoint, overrides its ':rF' suffix)")
    run.add_argument("--check-interval", type=int, default=10)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--world", default="sim", choices=("sim", "real"),
                     help="execution world: 'sim' (threads + virtual "
                          "clocks, the default) or 'real' (one OS process "
                          "per rank over loopback sockets; reported times "
                          "are wall seconds and --membership times are "
                          "interpreted as wall seconds too)")
    run.add_argument("--recv-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="host timeout for blocking receives (deadlock "
                          "guard; default: REPRO_RECV_TIMEOUT env var, "
                          "else 120)")
    run.add_argument("--verify", action="store_true",
                     help="check the result against the sequential oracle")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="record hierarchical spans and write a Chrome "
                          "trace-event JSON (load it in Perfetto / "
                          "chrome://tracing); works in both worlds")
    run.add_argument("--trace-capacity", type=int, default=None,
                     metavar="N",
                     help="ring-buffer cap on recorded trace events per "
                          "run (oldest dropped first, with a dropped-"
                          "events count in the export; default: unbounded)")
    run.add_argument("--trace-timebase", default="clock",
                     choices=("clock", "wall"),
                     help="timestamp source for --trace-out: 'clock' "
                          "(virtual in sim, latched wall in real) or "
                          "'wall' (host wall clock; sim spans only)")

    orderings = sub.add_parser("orderings", help="compare 1-D transformations")
    orderings.add_argument("--vertices", type=int, default=3000)
    orderings.add_argument("--parts", type=int, nargs="+", default=[2, 4, 8, 16])
    orderings.add_argument("--seed", type=int, default=0)

    mcr = sub.add_parser("mcr", help="run MinimizeCostRedistribution")
    mcr.add_argument("--old", type=float, nargs="+", required=True,
                     help="old capability ratios")
    mcr.add_argument("--new", type=float, nargs="+", required=True,
                     help="new capability ratios")
    mcr.add_argument("--elements", type=int, default=100)

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded adversarial scenario fuzzing (churn x load x failure)",
    )
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    frun = fsub.add_parser(
        "run", help="generate and run scenarios against the oracle"
    )
    frun.add_argument("--seed", type=int, default=0,
                      help="master seed: scenario i is a pure function of "
                           "(seed, i), so the same seed/budget pair "
                           "replays the identical sequence")
    frun.add_argument("--budget", type=int, default=10,
                      help="number of scenarios to generate and run")
    frun.add_argument("--scenario", default=None, metavar="FILE|JSON",
                      help="replay exactly one scenario instead of "
                           "generating: a path to a scenario JSON file, "
                           "or the JSON object inline")
    frun.add_argument("--invariant", action="append", default=[],
                      metavar="NAME",
                      help="check only the named invariant(s); repeatable "
                           "(default: all — see `repro fuzz run --seed 0 "
                           "--budget 1` output for the list)")
    frun.add_argument("--shrink-failures", action="store_true",
                      help="greedily shrink each failing scenario and "
                           "print its minimal reproducer command")
    frun.add_argument("--shrink-dir", default=None, metavar="DIR",
                      help="also write each shrunk failing scenario as "
                           "JSON into DIR (implies --shrink-failures)")

    fshrink = fsub.add_parser(
        "shrink", help="reduce a failing scenario to a minimal reproducer"
    )
    fshrink.add_argument("--scenario", default=None, metavar="FILE|JSON",
                         help="the failing scenario (file or inline JSON)")
    fshrink.add_argument("--seed", type=int, default=None,
                         help="with --index: shrink the index-th scenario "
                              "of this master seed")
    fshrink.add_argument("--index", type=int, default=0,
                         help="scenario index under --seed (default 0)")
    fshrink.add_argument("--invariant", action="append", default=[],
                         metavar="NAME")
    fshrink.add_argument("--max-attempts", type=int, default=200,
                         help="oracle-run budget for the shrink loop")
    fshrink.add_argument("-o", "--output", default=None,
                         help="write the shrunk scenario JSON to this file")

    fcorpus = fsub.add_parser(
        "corpus", help="replay every scenario JSON in a corpus directory"
    )
    fcorpus.add_argument("--dir", default="tests/fuzz_corpus",
                         help="corpus directory (default: tests/fuzz_corpus)")
    fcorpus.add_argument("--invariant", action="append", default=[],
                         metavar="NAME")

    serve = sub.add_parser(
        "serve",
        help="co-schedule a job stream over one shared cluster",
    )
    serve.add_argument("--jobs", default=None, metavar="FILE",
                       help="JSONL job stream, one JobSpec per line "
                            "('-' reads stdin; blank lines and '#' "
                            "comments are skipped); default: a generated "
                            "stream (--stream/--n-jobs)")
    serve.add_argument("--stream", default="uniform",
                       choices=("uniform", "descending", "mixed"),
                       help="generated stream shape when --jobs is not "
                            "given ('descending' is the adversarial "
                            "head-of-line case for FIFO)")
    serve.add_argument("--n-jobs", type=int, default=8,
                       help="number of jobs in the generated stream")
    serve.add_argument("--cluster-size", type=int, default=8,
                       help="processors in the shared pool")
    serve.add_argument("--policy", default="fifo",
                       choices=("fifo", "random", "sjf"),
                       help="admission order: submission order, seeded "
                            "random permutation, or shortest-job-first")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the generated stream and for the "
                            "random admission permutation")
    serve.add_argument("--max-tenants", type=int, default=1,
                       help="jobs a single rank may host concurrently "
                            "(1 = space sharing; higher values time-share "
                            "and co-tenant compute becomes competing load)")
    serve.add_argument("--backend", default=None,
                       choices=("reference", "vectorized"),
                       help="hot-path implementation for every job "
                            "(default: REPRO_BACKEND env var, else "
                            "vectorized)")
    serve.add_argument("--json", dest="json_out", default=None,
                       metavar="FILE",
                       help="also write the service report as JSON")
    serve.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record service-time spans (admit / job / "
                            "per-rank occupancy) and write a Chrome "
                            "trace-event JSON")
    serve.add_argument("--trace-capacity", type=int, default=None,
                       metavar="N",
                       help="ring-buffer cap on recorded trace events")

    bench = sub.add_parser(
        "bench", help="experiment harness: list, run, sweep, report"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    bsub.add_parser("list", help="list registered experiments")

    brun = bsub.add_parser("run", help="run one experiment over its grid")
    brun.add_argument("name",
                      help="experiment name, or a glob like 'scale-*' "
                           "(see `repro bench list`)")
    brun.add_argument("--quick", action="store_true",
                      help="use the reduced smoke-scale grid")
    brun.add_argument("--results-dir", default="results",
                      help="artifact directory (default: results/)")
    brun.add_argument("--set", dest="overrides", action="append", default=[],
                      metavar="KEY=VALUE",
                      help="force a parameter value on every configuration")
    brun.add_argument("--profile", action="store_true",
                      help="run under cProfile; dumps "
                           "<results-dir>/profiles/<experiment>.pstats and "
                           "prints the top-20 cumulative entries to stderr")
    brun.add_argument("--trace-out", default=None, metavar="FILE",
                      help="capture the trace of the experiment's program "
                           "runs (ambient capture window; the last run's "
                           "trace is exported as Chrome trace-event JSON)")
    brun.add_argument("--trace-capacity", type=int, default=None,
                      metavar="N",
                      help="ring-buffer cap on recorded trace events per run")

    bsweep = bsub.add_parser("sweep", help="run a scenario-sweep grid")
    bsweep.add_argument("--grid", default="small",
                        help="named scenario grid (small or full)")
    bsweep.add_argument("--results-dir", default="results")

    breport = bsub.add_parser(
        "report", help="markdown comparison of two artifacts"
    )
    breport.add_argument("old", help="baseline artifact JSON")
    breport.add_argument("new", help="candidate artifact JSON")
    breport.add_argument("--threshold", type=float, default=0.05,
                         help="relative change treated as noise (default 5%%)")
    breport.add_argument("-o", "--output", default=None,
                         help="also write the markdown report to this file")
    breport.add_argument("--fail-on-regression", action="store_true",
                         help="exit 1 if any metric regressed")

    trace_p = sub.add_parser(
        "trace",
        help="inspect or re-export a Chrome trace written by --trace-out",
    )
    tsub = trace_p.add_subparsers(dest="trace_command", required=True)
    texport = tsub.add_parser(
        "export", help="re-export a trace (switch timebase, drop wall fields)"
    )
    texport.add_argument("input",
                         help="Chrome trace-event JSON written by --trace-out")
    texport.add_argument("-o", "--output", required=True,
                         help="destination JSON file")
    texport.add_argument("--timebase", default="clock",
                         choices=("clock", "wall"),
                         help="timestamp source for the re-export")
    texport.add_argument("--no-wall", action="store_true",
                         help="omit wall-clock fields from the event args")
    tsummary = tsub.add_parser(
        "summary", help="per-rank, per-phase event / time / byte totals"
    )
    tsummary.add_argument("input",
                          help="Chrome trace-event JSON written by --trace-out")
    return parser


def _cmd_info() -> int:
    from repro import __version__

    print(f"repro {__version__} — STANCE runtime reproduction")
    print("subpackages: repro.net (simulated cluster), repro.graph,")
    print("             repro.partition (phase A + MCR), repro.runtime")
    print("             (phases B-D), repro.apps, repro.experiments")
    print("docs: README.md, docs/architecture.md, docs/benchmarks.md")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import (
        ConfigurationError,
        LoadBalanceError,
        RankFailedError,
        ResilienceError,
    )
    from repro.graph import paper_mesh
    from repro.net import adaptive_cluster, sun4_cluster
    from repro.runtime import (
        LoadBalanceConfig,
        ProgramConfig,
        cluster_efficiency,
        run_program,
        run_sequential,
    )

    graph = paper_mesh(args.vertices, seed=args.seed)
    if args.competing_load > 0:
        cluster = adaptive_cluster(
            args.workstations, loaded_rank=0, competing_load=args.competing_load
        )
    else:
        cluster = sun4_cluster(args.workstations)
    y0 = np.random.default_rng(args.seed).uniform(0, 100, graph.num_vertices)
    balancing = args.load_balance != "off"
    try:
        config = ProgramConfig(
            iterations=args.iterations,
            strategy=args.strategy,
            backend=args.backend,
            inspector_mode=args.inspector_mode,
            initial_capabilities=(
                "equal"
                if args.competing_load > 0 or args.membership
                else "speeds"
            ),
            load_balance=(
                LoadBalanceConfig(
                    check_interval=args.check_interval, style=args.load_balance
                )
                if balancing
                else None
            ),
            membership=args.membership,
            checkpoint=args.checkpoint,
            replication_factor=args.replication,
            world=args.world,
            recv_timeout=args.recv_timeout,
            trace=args.trace_out is not None,
            trace_capacity=args.trace_capacity,
        )
        report = run_program(graph, cluster, config, y0=y0)
        print(f"workload: {graph}")
        print(f"cluster:  {args.workstations} workstations "
              f"(speeds {cluster.speeds.tolist()})")
        print(f"world: {args.world}")
        if args.world == "real":
            print(f"wall time: {report.makespan:.4f} s")
        else:
            print(f"virtual time: {report.makespan:.4f} s")
        if args.world == "sim":
            # Efficiency relates virtual makespan to modeled work; a wall
            # makespan is not comparable to virtual work-seconds.
            eff = cluster_efficiency(
                cluster, report.makespan, report.total_work_seconds
            )
            print(f"efficiency (Sec. 4): {eff:.3f}")
        if balancing:
            print(f"strategy: {args.load_balance}, "
                  f"remaps: {report.num_remaps}, "
                  f"check cost {report.lb_check_time:.4f} s, "
                  f"remap cost {report.remap_time:.4f} s")
        if args.membership:
            events = report.membership_events
            final = report.partition_final
            survivors = np.flatnonzero(final.sizes() > 0).tolist()
            print(f"membership: {events} event(s) applied, "
                  f"{report.num_remaps} remap(s), final data on ranks "
                  f"{survivors} (sizes {final.sizes().tolist()})")
        if args.checkpoint:
            from repro.runtime import format_checkpoint_policy

            print(f"checkpoint: {format_checkpoint_policy(config.checkpoint)}")
            print(f"resilience: {report.num_checkpoints} checkpoint(s) "
                  f"(cost {report.checkpoint_time:.4f} s), "
                  f"{report.num_rollbacks} rollback(s) "
                  f"(cost {report.rollback_time:.4f} s, "
                  f"lost work {report.lost_time:.4f} s)")
        if args.trace_out:
            from repro.obs import write_chrome_trace

            assert report.trace is not None
            write_chrome_trace(
                args.trace_out,
                report.trace,
                timebase=args.trace_timebase,
                metadata={"command": "run", "world": args.world},
            )
            print(f"trace: {args.trace_out} ({len(report.trace)} event(s), "
                  f"{report.trace.dropped_events} dropped)")
    except (
        ConfigurationError,
        LoadBalanceError,
        RankFailedError,
        ResilienceError,
    ) as exc:
        # Cross-rank aggregation (num_remaps / membership_events /
        # num_checkpoints / num_rollbacks) raises on a desync too, so
        # the summary prints live inside the guard.
        _log.error("error: %s", exc)
        return 2
    if args.verify:
        oracle = run_sequential(graph, y0, args.iterations)
        err = float(np.abs(report.values - oracle).max())
        print(f"max deviation from sequential oracle: {err:.2e}")
        if err > 1e-9:
            _log.error("VERIFICATION FAILED")
            return 1
        print("verified against sequential oracle")
    return 0


def _cmd_orderings(args: argparse.Namespace) -> int:
    from repro.graph import paper_mesh
    from repro.partition import (
        HilbertOrdering,
        IdentityOrdering,
        InertialOrdering,
        MortonOrdering,
        RandomOrdering,
        RCBOrdering,
        SpectralOrdering,
        compare_orderings,
    )
    from repro.utils import format_table

    graph = paper_mesh(args.vertices, seed=args.seed)
    methods = [
        RCBOrdering(), InertialOrdering(), SpectralOrdering(leaf_size=128),
        HilbertOrdering(), MortonOrdering(), IdentityOrdering(),
        RandomOrdering(seed=args.seed),
    ]
    reports = compare_orderings(graph, methods, args.parts)
    rows = [r.as_row(args.parts) for r in reports]
    print(
        format_table(
            ["ordering", "mean span", "bandwidth"]
            + [f"cut@{p}" for p in args.parts],
            rows,
            title=f"1-D transformations on {graph}",
            float_fmt="{:.1f}",
        )
    )
    return 0


def _cmd_mcr(args: argparse.Namespace) -> int:
    from repro.partition import (
        message_count,
        minimize_cost_redistribution,
        overlap_elements,
        partition_list,
    )

    if len(args.old) != len(args.new):
        _log.error("--old and --new must have the same length")
        return 2
    p = len(args.old)
    arrangement = minimize_cost_redistribution(
        np.arange(p), args.old, args.new, args.elements
    )
    old = partition_list(args.elements, args.old)
    ident = partition_list(args.elements, args.new)
    chosen = partition_list(args.elements, args.new, arrangement)
    print(f"MCR arrangement: {arrangement.tolist()}")
    print(
        f"identity: overlap {overlap_elements(old, ident)}/{args.elements}, "
        f"{message_count(old, ident)} messages"
    )
    print(
        f"MCR:      overlap {overlap_elements(old, chosen)}/{args.elements}, "
        f"{message_count(old, chosen)} messages"
    )
    return 0


def _load_scenario(spec: str):
    """Resolve ``--scenario FILE|JSON`` into a Scenario."""
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.fuzz import Scenario

    text = spec.strip()
    if text.startswith("{"):
        return Scenario.from_json(text)
    path = Path(spec)
    if not path.is_file():
        raise ConfigurationError(
            f"scenario {spec!r} is neither an inline JSON object nor an "
            f"existing file; pass a path to a scenario JSON (e.g. one "
            f"from tests/fuzz_corpus/) or the JSON itself in quotes"
        )
    return Scenario.from_json(path.read_text(encoding="utf-8"))


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError, ReproError
    from repro.fuzz import (
        check_invariant_names,
        generate_scenarios,
        run_scenario,
        shrink_scenario,
    )

    try:
        invariants = check_invariant_names(args.invariant)

        if args.fuzz_command == "run":
            if args.scenario is not None:
                scenarios = [_load_scenario(args.scenario)]
            else:
                scenarios = generate_scenarios(args.seed, args.budget)
            failures = []
            for scenario in scenarios:
                report = run_scenario(scenario, invariants=invariants)
                print(report.summary())
                if not report.ok:
                    failures.append(report)
            print(f"\n{len(scenarios)} scenario(s), "
                  f"{len(failures)} failure(s); invariants: "
                  f"{', '.join(invariants)}")
            if not failures:
                return 0
            shrink = args.shrink_failures or args.shrink_dir
            for report in failures:
                for violation in report.violations:
                    print(f"  - {violation}")
                if shrink:
                    result = shrink_scenario(
                        report.scenario, invariants=invariants
                    )
                    print(f"reproducer ({result.reductions} reduction(s), "
                          f"{result.attempts} oracle run(s)):")
                    print(f"  {result.command}")
                    if args.shrink_dir:
                        from pathlib import Path

                        out_dir = Path(args.shrink_dir)
                        out_dir.mkdir(parents=True, exist_ok=True)
                        label = report.scenario.name or "scenario"
                        out = out_dir / f"shrunk-{label}.json"
                        out.write_text(
                            result.scenario.to_json(indent=2) + "\n",
                            encoding="utf-8",
                        )
                        print(f"  written to {out}")
                else:
                    print("reproducer:")
                    print(f"  {report.scenario.reproducer_command()}")
            return 1

        if args.fuzz_command == "shrink":
            if args.scenario is not None:
                scenario = _load_scenario(args.scenario)
            elif args.seed is not None:
                if args.index < 0:
                    raise ConfigurationError(
                        f"--index must be >= 0, got {args.index}"
                    )
                scenario = generate_scenarios(
                    args.seed, args.index + 1
                )[args.index]
            else:
                raise ConfigurationError(
                    "fuzz shrink needs a target: pass --scenario "
                    "FILE|JSON, or --seed S [--index I] to name a "
                    "generated scenario"
                )
            result = shrink_scenario(
                scenario,
                invariants=invariants,
                max_attempts=args.max_attempts,
            )
            for violation in result.report.violations:
                print(f"  - {violation}")
            print(f"shrunk after {result.reductions} reduction(s) "
                  f"({result.attempts} oracle run(s)); minimal reproducer:")
            print(f"  {result.command}")
            if args.output:
                from pathlib import Path

                out = Path(args.output)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(
                    result.scenario.to_json(indent=2) + "\n",
                    encoding="utf-8",
                )
                print(f"  written to {out}")
            return 1  # a successful shrink means the scenario still fails

        if args.fuzz_command == "corpus":
            from pathlib import Path

            corpus_dir = Path(args.dir)
            paths = sorted(corpus_dir.glob("*.json"))
            if not paths:
                raise ConfigurationError(
                    f"no scenario JSON files found in {corpus_dir}/ — "
                    f"pass --dir pointing at a corpus directory (the "
                    f"repository ships one at tests/fuzz_corpus/)"
                )
            failures = 0
            for path in paths:
                from repro.fuzz import Scenario

                scenario = Scenario.from_json(
                    path.read_text(encoding="utf-8")
                )
                report = run_scenario(scenario, invariants=invariants)
                print(f"{path.name}: {report.summary()}")
                if not report.ok:
                    failures += 1
                    for violation in report.violations:
                        print(f"  - {violation}")
                    print(f"  {report.scenario.reproducer_command()}")
            print(f"\n{len(paths)} corpus scenario(s), {failures} failure(s)")
            return 1 if failures else 0
    except ReproError as exc:
        _log.error("error: %s", exc)
        return 2
    raise AssertionError(f"unhandled fuzz command {args.fuzz_command!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.net import uniform_cluster
    from repro.serve import JobQueue, ServiceSession, generate_stream

    try:
        if args.jobs is not None:
            if args.jobs == "-":
                text = sys.stdin.read()
            else:
                from pathlib import Path

                text = Path(args.jobs).read_text(encoding="utf-8")
            queue = JobQueue.from_jsonl(text)
        else:
            queue = generate_stream(
                args.stream,
                args.n_jobs,
                max_ranks=args.cluster_size,
                seed=args.seed,
            )
        session = ServiceSession(
            uniform_cluster(args.cluster_size, name="service-pool"),
            queue,
            policy=args.policy,
            seed=args.seed,
            max_tenants=args.max_tenants,
            backend=args.backend,
            trace=args.trace_out is not None,
            trace_capacity=args.trace_capacity,
        )
        report = session.run()
    except OSError as exc:
        _log.error("error: cannot read job stream: %s", exc)
        return 2
    except ReproError as exc:
        _log.error("error: %s", exc)
        return 2
    print(report.to_text())
    if args.json_out:
        from pathlib import Path

        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nreport: {out}")
    if args.trace_out and report.trace is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            args.trace_out,
            report.trace,
            metadata={"command": "serve", "policy": args.policy},
        )
        print(f"trace: {args.trace_out} ({len(report.trace)} event(s))")
    return 0


def _parse_override(text: str) -> tuple[str, object]:
    """``KEY=VALUE`` with the value parsed as JSON when possible."""
    import json

    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise SystemExit(f"--set expects KEY=VALUE, got {text!r}")
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.utils import format_table

    try:
        if args.bench_command == "list":
            from repro.experiments import all_experiments

            rows = [
                [
                    e.name,
                    e.paper_anchor,
                    e.num_configs(),
                    e.num_configs(quick=True),
                    e.title,
                ]
                for e in all_experiments()
            ]
            print(
                format_table(
                    ["name", "anchor", "configs", "quick", "title"],
                    rows,
                    title="registered experiments (repro.experiments)",
                )
            )
            return 0

        if args.bench_command == "run":
            from fnmatch import fnmatchcase

            from repro.experiments import run_experiment
            from repro.experiments.registry import names

            overrides = dict(_parse_override(t) for t in args.overrides)
            if any(ch in args.name for ch in "*?["):
                matched = [n for n in names() if fnmatchcase(n, args.name)]
                if not matched:
                    _log.error("error: no experiment matches %r", args.name)
                    return 2
            else:
                matched = [args.name]
            if overrides:
                # Fail fast: validate the overrides against every matched
                # experiment *before* running any, so a glob run cannot
                # burn minutes and then die mid-loop on the first
                # experiment lacking an overridden axis.  Same check the
                # runner applies per experiment.
                from repro.experiments.runner import validate_overrides

                for name in matched:
                    validate_overrides(name, overrides, quick=args.quick)
            from contextlib import ExitStack

            with ExitStack() as stack:
                window = None
                if args.trace_out:
                    from repro.obs import capture_traces

                    window = stack.enter_context(
                        capture_traces(capacity=args.trace_capacity)
                    )
                for name in matched:
                    if args.profile:
                        import cProfile
                        import pstats
                        from pathlib import Path

                        profile_dir = Path(args.results_dir) / "profiles"
                        profile_dir.mkdir(parents=True, exist_ok=True)
                        pstats_path = profile_dir / f"{name}.pstats"
                        prof = cProfile.Profile()
                        prof.enable()
                        try:
                            artifact, path = run_experiment(
                                name,
                                quick=args.quick,
                                overrides=overrides or None,
                                results_dir=args.results_dir,
                            )
                        finally:
                            prof.disable()
                            prof.dump_stats(str(pstats_path))
                            stats = pstats.Stats(prof, stream=sys.stderr)
                            stats.sort_stats("cumulative").print_stats(20)
                            _log.info("profile: %s", pstats_path)
                    else:
                        artifact, path = run_experiment(
                            name,
                            quick=args.quick,
                            overrides=overrides or None,
                            results_dir=args.results_dir,
                        )
                    _print_artifact_summary(artifact)
                    print(f"\nartifact: {path}")
            if window is not None:
                from repro.obs import write_chrome_trace

                if not window.traces:
                    _log.warning(
                        "no program runs were captured; %s not written",
                        args.trace_out,
                    )
                else:
                    label, tr = window.traces[-1]
                    write_chrome_trace(
                        args.trace_out,
                        tr,
                        metadata={"command": "bench", "run": label},
                    )
                    print(f"trace: {args.trace_out} ({label}, "
                          f"{len(tr)} event(s))")
            return 0

        if args.bench_command == "sweep":
            from repro.experiments import run_sweep

            artifact, path = run_sweep(args.grid, results_dir=args.results_dir)
            _print_artifact_summary(artifact)
            print(f"\nartifact: {path}")
            return 0

        if args.bench_command == "report":
            from repro.experiments import compare_files

            comparison = compare_files(
                args.old, args.new, threshold=args.threshold
            )
            text = comparison.to_markdown()
            print(text)
            if args.output:
                from pathlib import Path

                out = Path(args.output)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(text, encoding="utf-8")
            if args.fail_on_regression and comparison.num_regressions:
                return 1
            return 0
    except ReproError as exc:
        _log.error("error: %s", exc)
        return 2
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs import load_chrome_trace, phase_table, write_chrome_trace

    try:
        trace = load_chrome_trace(args.input)
        if args.trace_command == "summary":
            print(phase_table(trace))
            return 0
        if args.trace_command == "export":
            write_chrome_trace(
                args.output,
                trace,
                timebase=args.timebase,
                include_wall=not args.no_wall,
                metadata={"command": "trace export", "source": args.input},
            )
            print(f"trace: {args.output} ({len(trace)} event(s))")
            return 0
    except BrokenPipeError:
        raise  # main() handles a consumer that closed early (e.g. head)
    except OSError as exc:
        _log.error("error: cannot read trace: %s", exc)
        return 2
    except ReproError as exc:
        _log.error("error: %s", exc)
        return 2
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _print_artifact_summary(artifact: dict) -> None:
    """One row per configuration: parameters, host wall time, metrics."""
    from repro.utils import format_table

    rows = []
    for run in artifact["runs"]:
        params = ", ".join(f"{k}={v}" for k, v in run["params"].items())
        metrics = ", ".join(
            f"{k}={v:.4g}" for k, v in run["metrics"].items()
        )
        rows.append([params, run["wall_s"], metrics])
    print(
        format_table(
            ["configuration", "wall (s)", "metrics"],
            rows,
            title=f"{artifact['experiment']} — {artifact['title']} "
                  f"({artifact['paper_anchor']})",
            float_fmt="{:.3g}",
        )
    )


def _configure_logging(args: argparse.Namespace) -> None:
    import os

    from repro.obs.logconf import LEVEL_ENV, configure_logging

    if args.log_level:
        # Real-world workers are separate processes; the env var is how
        # they inherit the chosen level.
        os.environ[LEVEL_ENV] = args.log_level
    configure_logging(args.log_level)


def main(argv: Sequence[str] | None = None) -> int:
    try:
        args = build_parser().parse_args(argv)
        _configure_logging(args)
        return _dispatch(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. `head`);
        # that is not an error in us.  Detach stdout so interpreter teardown
        # does not print a second traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "orderings":
        return _cmd_orderings(args)
    if args.command == "mcr":
        return _cmd_mcr(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
