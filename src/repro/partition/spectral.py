"""Recursive spectral bisection (RSB) indexing (Sec. 3.1's spectral methods).

The paper's mesh experiments use "Recursive Spectral Bisection-based
indexing [19]": recursively split the graph at the median of the Fiedler
vector (second-smallest Laplacian eigenvector), ordering the halves
consecutively.  Unlike RCB/inertial this uses explicit edge information, so
it works for abstract graphs and usually gives the best edge cuts.

The Fiedler vector is computed with LOBPCG constrained against the constant
vector, preconditioned by the inverse degree diagonal; small subproblems use
dense ``eigh``.  Disconnected subgraphs (which arise during recursion) are
ordered component by component.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import lobpcg

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_scipy
from repro.partition.ordering import positions_from_order
from repro.utils.rng import SeedLike, as_generator

__all__ = ["SpectralOrdering", "rsb_order", "fiedler_vector", "spectral_order_flat"]

_DENSE_CUTOFF = 128


def _laplacian(adj: sp.csr_matrix) -> sp.csr_matrix:
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return (sp.diags(deg) - adj).tocsr()


def _fiedler_dense(lap: np.ndarray) -> np.ndarray:
    vals, vecs = np.linalg.eigh(lap)
    # Column 0 is (numerically) the constant vector; column 1 is Fiedler.
    return vecs[:, 1]


def fiedler_vector(
    adj: sp.csr_matrix,
    *,
    rng: np.random.Generator,
    tol: float = 1e-6,
    maxiter: int = 200,
) -> np.ndarray:
    """Fiedler vector of a *connected* graph given its adjacency matrix."""
    n = adj.shape[0]
    if n < 2:
        raise OrderingError("fiedler_vector needs at least 2 vertices")
    lap = _laplacian(adj)
    if n <= _DENSE_CUTOFF:
        return _fiedler_dense(lap.toarray())
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_deg = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 1.0)
    precond = sp.diags(inv_deg).tocsr()
    x0 = rng.standard_normal((n, 1))
    ones = np.ones((n, 1)) / np.sqrt(n)
    x0 -= ones @ (ones.T @ x0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            _, vecs = lobpcg(
                lap, x0, M=precond, Y=ones, tol=tol, maxiter=maxiter, largest=False
            )
            vec = vecs[:, 0]
            if np.all(np.isfinite(vec)) and np.ptp(vec) > 0:
                return vec
        except Exception:
            pass
    # LOBPCG failed to converge usefully: dense fallback for moderate n,
    # else give up on spectral information for this box and use degrees
    # (callers still get a valid, just lower-quality, split key).
    if n <= 4096:
        return _fiedler_dense(lap.toarray())
    return deg.astype(np.float64) + rng.uniform(0, 1e-6, n)


def _order_recursive(
    adj: sp.csr_matrix,
    idx: np.ndarray,
    out: list[np.ndarray],
    rng: np.random.Generator,
    leaf_size: int,
    tol: float,
) -> None:
    n = idx.size
    if n <= 2:
        out.append(np.sort(idx))
        return
    n_comp, labels = sp.csgraph.connected_components(adj, directed=False)
    if n_comp > 1:
        # Order components one after another (smallest leading vertex first
        # for determinism); recurse into each.
        for comp in _component_order(labels, n_comp):
            mask = labels == comp
            sub = adj[mask][:, mask].tocsr()
            _order_recursive(sub, idx[mask], out, rng, leaf_size, tol)
        return
    vec = fiedler_vector(adj, rng=rng, tol=tol)
    if n <= leaf_size:
        # Leaf: a full sort by Fiedler value is the 1-D spectral sequence.
        tie = rng.uniform(0, 1e-9, n)
        out.append(idx[np.argsort(vec + tie, kind="stable")])
        return
    half = n // 2
    tie = rng.uniform(0, 1e-9, n)
    part = np.argpartition(vec + tie, half - 1)
    lo_mask = np.zeros(n, dtype=bool)
    lo_mask[part[:half]] = True
    for mask in (lo_mask, ~lo_mask):
        sub = adj[mask][:, mask].tocsr()
        _order_recursive(sub, idx[mask], out, rng, leaf_size, tol)


def _component_order(labels: np.ndarray, n_comp: int) -> list[int]:
    first_vertex = np.full(n_comp, np.iinfo(np.intp).max, dtype=np.intp)
    for v, c in enumerate(labels):
        if v < first_vertex[c]:
            first_vertex[c] = v
    return list(np.argsort(first_vertex))


def rsb_order(
    graph: CSRGraph,
    *,
    leaf_size: int = 64,
    tol: float = 1e-6,
    seed: SeedLike = 0,
) -> np.ndarray:
    """RSB visit order: vertex ids in 1-D sequence."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if leaf_size < 2:
        raise OrderingError(f"leaf_size must be >= 2, got {leaf_size}")
    rng = as_generator(seed)
    adj = to_scipy(graph)
    out: list[np.ndarray] = []
    _order_recursive(adj, np.arange(n, dtype=np.intp), out, rng, leaf_size, tol)
    order = np.concatenate(out) if out else np.empty(0, dtype=np.intp)
    if order.size != n:
        raise OrderingError(f"RSB emitted {order.size} of {n} vertices")
    return order


def spectral_order_flat(graph: CSRGraph, *, seed: SeedLike = 0) -> np.ndarray:
    """Single global Fiedler sort (no recursion) — the cheap variant.

    Good enough for one split level; the recursive version wins when many
    partition sizes must be served by one ordering.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if n == 1:
        return np.zeros(1, dtype=np.intp)
    rng = as_generator(seed)
    adj = to_scipy(graph)
    n_comp, labels = sp.csgraph.connected_components(adj, directed=False)
    pieces: list[np.ndarray] = []
    idx = np.arange(n, dtype=np.intp)
    for comp in _component_order(labels, n_comp):
        mask = labels == comp
        sub_idx = idx[mask]
        if sub_idx.size == 1:
            pieces.append(sub_idx)
            continue
        vec = fiedler_vector(adj[mask][:, mask].tocsr(), rng=rng)
        pieces.append(sub_idx[np.argsort(vec, kind="stable")])
    return np.concatenate(pieces)


@dataclass(frozen=True)
class SpectralOrdering:
    """Recursive spectral bisection as an :class:`OrderingMethod`."""

    leaf_size: int = 64
    tol: float = 1e-6
    seed: SeedLike = 0
    recursive: bool = True
    name: str = "rsb"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        if self.recursive:
            order = rsb_order(
                graph, leaf_size=self.leaf_size, tol=self.tol, seed=self.seed
            )
        else:
            order = spectral_order_flat(graph, seed=self.seed)
        return positions_from_order(order)
