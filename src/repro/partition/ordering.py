"""One-dimensional locality-improving transformations (paper Sec. 3.1).

An *ordering* is the architecture-independent permutation
``T : V -> {0, .., n-1}`` that lays the computational graph out on a line so
that any contiguous split is a good partition.  All concrete methods
(:mod:`~repro.partition.rcb`, :mod:`~repro.partition.inertial`,
:mod:`~repro.partition.spectral`, :mod:`~repro.partition.sfc`) implement
:class:`OrderingMethod`; this module holds the interface, the trivial
baselines, and shared helpers.

Conventions: ``perm[v]`` is the 1-D position of vertex ``v`` (the paper's
T); ``inverse(perm)[i]`` is the vertex at position ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_permutation

__all__ = [
    "OrderingMethod",
    "IdentityOrdering",
    "RandomOrdering",
    "inverse",
    "positions_from_order",
    "require_coords",
]


class OrderingMethod(Protocol):
    """The interface every 1-D transformation implements."""

    #: Human-readable name used in benchmark tables.
    name: str

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        """Return ``perm`` with ``perm[v]`` = 1-D position of vertex v."""
        ...


def inverse(perm: np.ndarray) -> np.ndarray:
    """The inverse permutation: ``inverse(perm)[position] = vertex``."""
    perm = check_permutation(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inv


def positions_from_order(order: np.ndarray) -> np.ndarray:
    """Convert a visit order (vertex ids in 1-D sequence) into ``perm``.

    Partitioner internals naturally produce "the i-th vertex on the line is
    ``order[i]``"; the public convention is the inverse of that.
    """
    return inverse(np.asarray(order, dtype=np.intp))


def require_coords(graph: CSRGraph, method: str) -> np.ndarray:
    """Fetch coordinates or raise a descriptive error.

    Coordinate-based methods (RCB, inertial, SFC) need the physical
    embedding the paper assumes for graphs "from the physical domain".
    """
    if graph.coords is None:
        raise OrderingError(
            f"{method} requires vertex coordinates; this graph has none "
            f"(use spectral ordering for abstract graphs)"
        )
    return graph.coords


@dataclass(frozen=True)
class IdentityOrdering:
    """The do-nothing baseline: keep the input numbering."""

    name: str = "identity"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.intp)


@dataclass(frozen=True)
class RandomOrdering:
    """The worst-case baseline: a random permutation destroys locality."""

    seed: SeedLike = 0
    name: str = "random"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        rng = as_generator(self.seed)
        return rng.permutation(graph.num_vertices).astype(np.intp)
