"""Recursive coordinate bisection (RCB) indexing — paper Fig. 2.

RCB repeatedly splits the point set at the median of its widest coordinate
axis.  Used here not to produce p parts directly but to produce the full
1-D *ordering*: recursing to singletons yields a permutation in which
physically proximate vertices get nearby indices, so "partitioning is
equivalent to assigning contiguous blocks" (Sec. 3.1) for any p.

The recursion is implemented iteratively with an explicit stack and
vectorized ``argpartition`` median splits, so it handles the paper's 30k
vertex mesh in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.partition.ordering import positions_from_order, require_coords
from repro.utils.rng import SeedLike, as_generator

__all__ = ["RCBOrdering", "rcb_order", "rcb_labels"]


def _split_axis(coords: np.ndarray, idx: np.ndarray, axis: int | None) -> int:
    """Choose the axis to split: widest extent, or the given axis."""
    if axis is not None:
        return axis
    sub = coords[idx]
    extents = sub.max(axis=0) - sub.min(axis=0)
    return int(np.argmax(extents))


def _median_split(
    coords: np.ndarray,
    idx: np.ndarray,
    axis: int,
    jitter: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split *idx* at the median of coordinate *axis*, sizes n//2 / n-n//2.

    ``jitter`` (a tiny per-vertex tiebreak) makes the split deterministic
    even with exactly-equal coordinates (structured grids).
    """
    keys = coords[idx, axis]
    if jitter is not None:
        keys = keys + jitter[idx]
    half = idx.size // 2
    part = np.argpartition(keys, half - 1) if half > 0 else np.arange(idx.size)
    lo = idx[part[:half]]
    hi = idx[part[half:]]
    return lo, hi


def rcb_order(
    graph: CSRGraph,
    *,
    alternate_axes: bool = False,
    seed: SeedLike = 0,
) -> np.ndarray:
    """RCB visit order: vertex ids in 1-D sequence.

    ``alternate_axes=True`` cycles the split axis x, y, x, ... (the textbook
    variant); the default picks the widest axis per box, which adapts to
    anisotropic domains like the airfoil channel.
    """
    coords = require_coords(graph, "RCB")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.intp)
    rng = as_generator(seed)
    # Tiny deterministic jitter (1e-9 of the domain size) breaks coordinate
    # ties without perturbing real orderings.
    scale = max(float(np.ptp(coords)) if coords.size else 1.0, 1e-30)
    jitter = rng.uniform(-1e-9, 1e-9, size=n) * scale
    order = np.empty(n, dtype=np.intp)
    out = 0
    # Stack of (index array, depth); children pushed hi-first so lo side is
    # emitted first, giving a left-to-right sweep like the paper's Fig. 2.
    stack: list[tuple[np.ndarray, int]] = [(np.arange(n, dtype=np.intp), 0)]
    while stack:
        idx, depth = stack.pop()
        if idx.size <= 1:
            order[out : out + idx.size] = idx
            out += idx.size
            continue
        axis = _split_axis(
            coords, idx, depth % coords.shape[1] if alternate_axes else None
        )
        lo, hi = _median_split(coords, idx, axis, jitter)
        stack.append((hi, depth + 1))
        stack.append((lo, depth + 1))
    if out != n:
        raise OrderingError(f"RCB emitted {out} of {n} vertices (internal bug)")
    return order


def rcb_labels(
    graph: CSRGraph, num_parts: int, *, seed: SeedLike = 0
) -> np.ndarray:
    """Direct RCB partition labels for *num_parts* equal parts.

    Convenience wrapper: contiguous blocks of the RCB order.  Kept for
    comparison against contiguous-interval partitioning of the ordering
    (they coincide when num_parts is a power of two).
    """
    if num_parts < 1:
        raise OrderingError(f"num_parts must be >= 1, got {num_parts}")
    order = rcb_order(graph, seed=seed)
    labels = np.empty(graph.num_vertices, dtype=np.intp)
    bounds = np.linspace(0, graph.num_vertices, num_parts + 1).astype(np.intp)
    for part in range(num_parts):
        labels[order[bounds[part] : bounds[part + 1]]] = part
    return labels


@dataclass(frozen=True)
class RCBOrdering:
    """Recursive coordinate bisection as an :class:`OrderingMethod`."""

    alternate_axes: bool = False
    seed: SeedLike = 0
    name: str = "rcb"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return positions_from_order(
            rcb_order(graph, alternate_axes=self.alternate_axes, seed=self.seed)
        )
