"""Inertial bisection indexing (paper Sec. 3.1's heuristic list).

Like RCB, but each box is split perpendicular to its *principal inertial
axis* (the direction of maximum spread found by PCA of the coordinates)
instead of a coordinate axis.  This adapts to domains not aligned with the
axes — e.g. a rotated channel — at the cost of a small eigen-solve per box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.partition.ordering import positions_from_order, require_coords
from repro.utils.rng import SeedLike, as_generator

__all__ = ["InertialOrdering", "inertial_order", "principal_axis"]


def principal_axis(points: np.ndarray) -> np.ndarray:
    """Unit vector of maximum spread (largest-eigenvalue covariance axis).

    Degenerate point sets (all coincident) fall back to the x axis.
    """
    centered = points - points.mean(axis=0)
    cov = centered.T @ centered
    if not np.all(np.isfinite(cov)) or np.allclose(cov, 0):
        axis = np.zeros(points.shape[1])
        axis[0] = 1.0
        return axis
    eigvals, eigvecs = np.linalg.eigh(cov)
    axis = eigvecs[:, -1]
    # Fix the sign so orderings are deterministic across LAPACK builds.
    lead = np.flatnonzero(np.abs(axis) > 1e-12)
    if lead.size and axis[lead[0]] < 0:
        axis = -axis
    return axis


def inertial_order(graph: CSRGraph, *, seed: SeedLike = 0) -> np.ndarray:
    """Inertial bisection visit order (vertex ids in 1-D sequence)."""
    coords = require_coords(graph, "inertial bisection")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.intp)
    rng = as_generator(seed)
    scale = max(float(np.ptp(coords)) if coords.size else 1.0, 1e-30)
    jitter = rng.uniform(-1e-9, 1e-9, size=n) * scale
    order = np.empty(n, dtype=np.intp)
    out = 0
    stack: list[np.ndarray] = [np.arange(n, dtype=np.intp)]
    while stack:
        idx = stack.pop()
        if idx.size <= 2:
            # Sort tiny boxes by projection on x for determinism.
            if idx.size == 2:
                keys = coords[idx, 0] + jitter[idx]
                idx = idx[np.argsort(keys)]
            order[out : out + idx.size] = idx
            out += idx.size
            continue
        axis = principal_axis(coords[idx])
        keys = coords[idx] @ axis + jitter[idx]
        half = idx.size // 2
        part = np.argpartition(keys, half - 1)
        lo, hi = idx[part[:half]], idx[part[half:]]
        stack.append(hi)
        stack.append(lo)
    if out != n:
        raise OrderingError(
            f"inertial bisection emitted {out} of {n} vertices (internal bug)"
        )
    return order


@dataclass(frozen=True)
class InertialOrdering:
    """Inertial bisection as an :class:`OrderingMethod`."""

    seed: SeedLike = 0
    name: str = "inertial"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return positions_from_order(inertial_order(graph, seed=self.seed))
