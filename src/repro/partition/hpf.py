"""HPF-style regular distributions and redistribution between them.

Sec. 1 situates the paper against High-Performance Fortran's data
distributions; the era's canonical mechanism (HPF's ``DISTRIBUTE`` /
``REDISTRIBUTE``) moved arrays between BLOCK, CYCLIC and CYCLIC(b) layouts.
This module implements those layouts over the same 1-D element space the
STANCE interval partitions use, plus the transfer-plan computation and an
executor, so the two families can be compared head to head (see
``benchmarks/bench_ext_hpf_redistribution.py``):

* a STANCE interval partition *is* a generalized (weighted) BLOCK
  distribution, so remapping between two of them moves only boundary slabs;
* BLOCK <-> CYCLIC is the worst case: almost every element moves and every
  processor pair exchanges a message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import PartitionError
from repro.net.message import Tags

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "HPFDistribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "hpf_transfer_summary",
    "redistribute_hpf",
]


@dataclass(frozen=True)
class HPFDistribution:
    """A regular 1-D distribution of ``n`` elements over ``p`` processors."""

    n: int
    p: int

    def __post_init__(self) -> None:
        if self.n < 0 or self.p < 1:
            raise PartitionError(
                f"need n >= 0 and p >= 1, got n={self.n} p={self.p}"
            )

    # -- interface -------------------------------------------------------

    def owner_of(self, gi: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def local_index(self, gi: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def global_indices(self, rank: int) -> np.ndarray:
        """All global indices owned by *rank*, in local-index order."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def _check(self, gi: np.ndarray) -> np.ndarray:
        gi = np.asarray(gi, dtype=np.intp)
        if gi.size and (gi.min() < 0 or gi.max() >= self.n):
            raise PartitionError(f"global index out of range [0, {self.n})")
        return gi

    def _check_rank(self, rank: int) -> int:
        if not (0 <= rank < self.p):
            raise PartitionError(f"rank {rank} out of range [0, {self.p})")
        return rank

    def local_size(self, rank: int) -> int:
        return int(self.global_indices(rank).size)


@dataclass(frozen=True)
class BlockDistribution(HPFDistribution):
    """HPF BLOCK: contiguous chunks of ceil(n/p) elements."""

    @property
    def block(self) -> int:
        return -(-self.n // self.p) if self.n else 1

    def owner_of(self, gi: np.ndarray) -> np.ndarray:
        gi = self._check(gi)
        return np.minimum(gi // self.block, self.p - 1)

    def local_index(self, gi: np.ndarray) -> np.ndarray:
        gi = self._check(gi)
        return gi - self.owner_of(gi) * self.block

    def global_indices(self, rank: int) -> np.ndarray:
        rank = self._check_rank(rank)
        lo = min(rank * self.block, self.n)
        hi = min(lo + self.block, self.n)
        return np.arange(lo, hi, dtype=np.intp)


@dataclass(frozen=True)
class CyclicDistribution(HPFDistribution):
    """HPF CYCLIC: element i lives on processor i mod p."""

    def owner_of(self, gi: np.ndarray) -> np.ndarray:
        return self._check(gi) % self.p

    def local_index(self, gi: np.ndarray) -> np.ndarray:
        return self._check(gi) // self.p

    def global_indices(self, rank: int) -> np.ndarray:
        rank = self._check_rank(rank)
        return np.arange(rank, self.n, self.p, dtype=np.intp)


@dataclass(frozen=True)
class BlockCyclicDistribution(HPFDistribution):
    """HPF CYCLIC(b): blocks of b elements dealt round-robin."""

    b: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.b < 1:
            raise PartitionError(f"block size must be >= 1, got {self.b}")

    def owner_of(self, gi: np.ndarray) -> np.ndarray:
        return (self._check(gi) // self.b) % self.p

    def local_index(self, gi: np.ndarray) -> np.ndarray:
        gi = self._check(gi)
        round_ = gi // (self.b * self.p)
        return round_ * self.b + gi % self.b

    def global_indices(self, rank: int) -> np.ndarray:
        rank = self._check_rank(rank)
        gi = np.arange(self.n, dtype=np.intp)
        return gi[self.owner_of(gi) == rank]


def _compatible(old: HPFDistribution, new: HPFDistribution) -> None:
    if old.n != new.n:
        raise PartitionError(
            f"distributions cover different arrays: {old.n} vs {new.n}"
        )
    if old.p != new.p:
        raise PartitionError(
            f"distributions use different processor counts: {old.p} vs {new.p}"
        )


def hpf_transfer_summary(
    old: HPFDistribution, new: HPFDistribution
) -> dict[str, int]:
    """Moved-element count and message count for old -> new.

    One message per (source, dest) pair that exchanges at least one
    element, matching HPF runtime practice of packing per-destination.
    """
    _compatible(old, new)
    gi = np.arange(old.n, dtype=np.intp)
    src = old.owner_of(gi)
    dst = new.owner_of(gi)
    moved = src != dst
    pairs = np.unique(src[moved] * np.intp(old.p) + dst[moved]).size
    return {
        "moved_elements": int(moved.sum()),
        "messages": int(pairs),
        "stationary_elements": int(old.n - moved.sum()),
    }


def redistribute_hpf(
    ctx: "RankContext",
    old: HPFDistribution,
    new: HPFDistribution,
    local_data: np.ndarray,
    *,
    tag: int = Tags.REDISTRIBUTE,
) -> np.ndarray:
    """Move this rank's elements from *old* to *new* (SPMD collective).

    Both layouts are closed-form, so every rank derives the full pattern
    locally (no pattern-discovery round — the same property the paper's
    interval list provides for irregular partitions).
    """
    _compatible(old, new)
    local_data = np.asarray(local_data)
    mine_old = old.global_indices(ctx.rank)
    if local_data.shape[0] != mine_old.size:
        raise PartitionError(
            f"rank {ctx.rank}: data has {local_data.shape[0]} elements, old "
            f"distribution assigns {mine_old.size}"
        )
    dst = new.owner_of(mine_old)
    outgoing: dict[int, np.ndarray] = {}
    for d in np.unique(dst):
        d = int(d)
        if d == ctx.rank:
            continue
        sel = dst == d
        # Ship (global index order is implied: both sides enumerate the
        # same sorted set), so only values travel.
        outgoing[d] = np.ascontiguousarray(local_data[sel])

    mine_new = new.global_indices(ctx.rank)
    src = old.owner_of(mine_new)
    recv_from = [int(s) for s in np.unique(src) if s != ctx.rank]
    received = ctx.alltoallv(outgoing, recv_from, tag=tag)

    out = np.empty((mine_new.size,) + local_data.shape[1:],
                   dtype=local_data.dtype)
    # Elements staying local.
    stay_new = src == ctx.rank
    if np.any(stay_new):
        stay_old_pos = np.searchsorted(mine_old, mine_new[stay_new])
        out[stay_new] = local_data[stay_old_pos]
    # Incoming: source s sends its owned elements destined here, in its
    # global order, which equals our global order for the same set.
    for s in recv_from:
        sel = src == s
        payload = np.asarray(received[s])
        if payload.shape[0] != int(sel.sum()):
            raise PartitionError(
                f"rank {ctx.rank}: payload from {s} has {payload.shape[0]} "
                f"elements, expected {int(sel.sum())}"
            )
        out[sel] = payload
    return out
