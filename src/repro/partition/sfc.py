"""Space-filling-curve (index-based) orderings — Sec. 3.1's "index-based
partitioners".

Vertices are snapped to a 2^bits grid and sorted by their Hilbert or Morton
(Z-order) key.  Hilbert keys guarantee that consecutive 1-D positions are
adjacent grid cells, giving RCB-quality locality at sort cost; Morton is
cheaper but has long jumps at quadrant boundaries — a nice ablation pair.

The Hilbert encoding is the classic Butz/Lam-Shapiro bit-manipulation
algorithm, vectorized over all points at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.partition.ordering import positions_from_order, require_coords
from repro.utils.rng import SeedLike

__all__ = [
    "HilbertOrdering",
    "MortonOrdering",
    "hilbert_keys_2d",
    "morton_keys",
    "quantize_coords",
    "sfc_order",
]


def quantize_coords(coords: np.ndarray, bits: int) -> np.ndarray:
    """Snap float coordinates to the integer lattice [0, 2^bits)."""
    if not (1 <= bits <= 21):
        raise OrderingError(f"bits must be in 1..21, got {bits}")
    lo = coords.min(axis=0)
    span = coords.max(axis=0) - lo
    span = np.where(span > 0, span, 1.0)
    scale = (2**bits - 1) / span
    q = np.floor((coords - lo) * scale + 0.5).astype(np.uint64)
    return np.minimum(q, np.uint64(2**bits - 1))


def _interleave2(x: np.ndarray, y: np.ndarray, bits: int) -> np.ndarray:
    """Bit-interleave two coordinate arrays into Morton keys."""
    key = np.zeros_like(x, dtype=np.uint64)
    for b in range(bits):
        bit = np.uint64(1) << np.uint64(b)
        key |= ((x & bit) != 0).astype(np.uint64) << np.uint64(2 * b)
        key |= ((y & bit) != 0).astype(np.uint64) << np.uint64(2 * b + 1)
    return key


def _interleave3(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int
) -> np.ndarray:
    key = np.zeros_like(x, dtype=np.uint64)
    for b in range(bits):
        bit = np.uint64(1) << np.uint64(b)
        key |= ((x & bit) != 0).astype(np.uint64) << np.uint64(3 * b)
        key |= ((y & bit) != 0).astype(np.uint64) << np.uint64(3 * b + 1)
        key |= ((z & bit) != 0).astype(np.uint64) << np.uint64(3 * b + 2)
    return key


def morton_keys(coords: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """Morton (Z-order) keys for 2-D or 3-D coordinates."""
    q = quantize_coords(coords, bits)
    if coords.shape[1] == 2:
        return _interleave2(q[:, 0], q[:, 1], bits)
    if coords.shape[1] == 3:
        return _interleave3(q[:, 0], q[:, 1], q[:, 2], bits)
    raise OrderingError(f"Morton keys support 2-D/3-D, got {coords.shape[1]}-D")


def hilbert_keys_2d(coords: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """2-D Hilbert-curve keys (vectorized Lam-Shapiro rotation walk)."""
    if coords.shape[1] != 2:
        raise OrderingError("hilbert_keys_2d needs 2-D coordinates")
    q = quantize_coords(coords, bits)
    x = q[:, 0].astype(np.int64)
    y = q[:, 1].astype(np.int64)
    d = np.zeros(x.shape[0], dtype=np.int64)
    s = np.int64(1) << np.int64(bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant (vectorized over all points).
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d.astype(np.uint64)


def sfc_order(
    graph: CSRGraph, *, curve: str = "hilbert", bits: int = 16
) -> np.ndarray:
    """SFC visit order (vertex ids in 1-D sequence) for 2-D/3-D graphs."""
    coords = require_coords(graph, f"{curve} ordering")
    if curve == "hilbert":
        if coords.shape[1] != 2:
            # 3-D Hilbert degenerates to Morton here; good enough in
            # practice and keeps the implementation honest about scope.
            keys = morton_keys(coords, bits=bits)
        else:
            keys = hilbert_keys_2d(coords, bits=bits)
    elif curve == "morton":
        keys = morton_keys(coords, bits=bits)
    else:
        raise OrderingError(f"unknown curve {curve!r}; use 'hilbert' or 'morton'")
    # Stable sort: vertices in the same grid cell keep input order.
    return np.argsort(keys, kind="stable").astype(np.intp)


@dataclass(frozen=True)
class HilbertOrdering:
    """Hilbert space-filling-curve indexing as an :class:`OrderingMethod`."""

    bits: int = 16
    seed: SeedLike = 0  # unused; kept for interface symmetry
    name: str = "hilbert"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return positions_from_order(sfc_order(graph, curve="hilbert", bits=self.bits))


@dataclass(frozen=True)
class MortonOrdering:
    """Morton (Z-order) indexing as an :class:`OrderingMethod`."""

    bits: int = 16
    seed: SeedLike = 0  # unused; kept for interface symmetry
    name: str = "morton"

    def __call__(self, graph: CSRGraph) -> np.ndarray:
        return positions_from_order(sfc_order(graph, curve="morton", bits=self.bits))
