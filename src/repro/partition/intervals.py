"""Contiguous interval partitions of the one-dimensional list.

After the Sec. 3.1 transformation, "partitioning is equivalent to assigning
contiguous blocks of vertices to each partition.  The size of each block is
proportional to the weight of the partition."  An :class:`IntervalPartition`
is that assignment: ``p`` consecutive blocks of ``[0, n)`` plus the
*arrangement* — which processor owns which block position (Sec. 3.4).

The bounds list doubles as the paper's replicated translation table
(Fig. 3): storing first/last element per processor is all any rank needs to
dereference a global index locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.utils.validation import check_permutation, check_probability_vector

__all__ = [
    "IntervalPartition",
    "proportional_sizes",
    "partition_list",
]


def proportional_sizes(n: int, capabilities: np.ndarray | Sequence[float]) -> np.ndarray:
    """Split *n* items into blocks proportional to *capabilities*.

    Largest-remainder (Hamilton) apportionment: sizes sum to exactly *n*,
    each within one item of the exact proportional share.  Ties go to the
    lower index, so results are deterministic.
    """
    cap = check_probability_vector("capabilities", capabilities)
    if n < 0:
        raise PartitionError(f"cannot partition {n} items")
    exact = n * cap / cap.sum()
    base = np.floor(exact).astype(np.intp)
    remainder = n - int(base.sum())
    if remainder:
        frac = exact - base
        # argsort ascending on (-frac, index) -> largest fractions first,
        # ties broken toward lower index.
        order = np.lexsort((np.arange(cap.size), -frac))
        base[order[:remainder]] += 1
    return base


@dataclass(frozen=True)
class IntervalPartition:
    """``p`` contiguous blocks of ``[0, n)`` with an owner per block.

    ``bounds`` has length p+1 with ``bounds[0] == 0`` and ``bounds[p] == n``;
    block ``b`` is ``[bounds[b], bounds[b+1])`` and is owned by processor
    ``owners[b]``.  ``owners`` is the paper's *arrangement*: a permutation of
    ``0..p-1``.
    """

    bounds: np.ndarray
    owners: np.ndarray

    def __post_init__(self) -> None:
        bounds = np.ascontiguousarray(self.bounds, dtype=np.intp)
        owners = check_permutation(self.owners)
        object.__setattr__(self, "bounds", bounds)
        object.__setattr__(self, "owners", owners)
        if bounds.ndim != 1 or bounds.size != owners.size + 1:
            raise PartitionError(
                f"bounds length {bounds.size} must be owners length "
                f"{owners.size} + 1"
            )
        if bounds[0] != 0:
            raise PartitionError("bounds must start at 0")
        if np.any(np.diff(bounds) < 0):
            raise PartitionError("bounds must be non-decreasing")

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def num_processors(self) -> int:
        return self.owners.size

    @property
    def num_elements(self) -> int:
        return int(self.bounds[-1])

    @cached_property
    def _block_of_owner(self) -> np.ndarray:
        blk = np.empty(self.num_processors, dtype=np.intp)
        blk[self.owners] = np.arange(self.num_processors, dtype=np.intp)
        return blk

    def block_of(self, rank: int) -> int:
        """Which block position processor *rank* occupies in the arrangement."""
        if not (0 <= rank < self.num_processors):
            raise PartitionError(f"rank {rank} out of range")
        return int(self._block_of_owner[rank])

    def interval(self, rank: int) -> tuple[int, int]:
        """Processor *rank*'s half-open interval [first, last+1) of the list."""
        b = self.block_of(rank)
        return int(self.bounds[b]), int(self.bounds[b + 1])

    def size(self, rank: int) -> int:
        lo, hi = self.interval(rank)
        return hi - lo

    def sizes(self) -> np.ndarray:
        """Elements per processor, indexed by rank."""
        block_sizes = np.diff(self.bounds)
        out = np.empty(self.num_processors, dtype=np.intp)
        out[self.owners] = block_sizes
        return out

    # ------------------------------------------------------------------ #
    # dereferencing (the Fig. 3 translation table)
    # ------------------------------------------------------------------ #

    def owner_of(self, global_index: np.ndarray | int) -> np.ndarray | int:
        """Home processor of one index or an index array (vectorized).

        This is the paper's replicated-list dereference: binary search of
        the bounds, O(log p) per index, no communication.
        """
        gi = np.asarray(global_index, dtype=np.intp)
        scalar = gi.ndim == 0
        gi_arr = np.atleast_1d(gi)
        if gi_arr.size and (gi_arr.min() < 0 or gi_arr.max() >= self.num_elements):
            raise PartitionError(
                f"global index out of range [0, {self.num_elements})"
            )
        block = np.searchsorted(self.bounds, gi_arr, side="right") - 1
        # Indices landing on an empty block's shared boundary resolve to the
        # non-empty block that actually contains them; searchsorted 'right'
        # already guarantees bounds[block] <= gi < bounds[block+1] for
        # non-empty blocks.
        owner = self.owners[block]
        return int(owner[0]) if scalar else owner

    def local_index(self, global_index: np.ndarray | int) -> np.ndarray | int:
        """Offset of a global index within its home processor's interval."""
        gi = np.asarray(global_index, dtype=np.intp)
        scalar = gi.ndim == 0
        gi_arr = np.atleast_1d(gi)
        block = np.searchsorted(self.bounds, gi_arr, side="right") - 1
        local = gi_arr - self.bounds[block]
        return int(local[0]) if scalar else local

    def dereference(
        self, global_index: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(home processor, local index) for an array of global indices."""
        gi = np.asarray(global_index, dtype=np.intp)
        if gi.size and (gi.min() < 0 or gi.max() >= self.num_elements):
            raise PartitionError(
                f"global index out of range [0, {self.num_elements})"
            )
        block = np.searchsorted(self.bounds, gi, side="right") - 1
        return self.owners[block], gi - self.bounds[block]

    def to_labels(self) -> np.ndarray:
        """Per-element owner array of length n (for metrics/plotting)."""
        return np.repeat(self.owners, np.diff(self.bounds))

    def first_last(self) -> list[tuple[int, int]]:
        """The replicated translation list: (first, last) per rank, inclusive.

        ``last == first - 1`` marks an empty interval.  Matches the paper's
        Fig. 3 storage ("the first and last elements belonging to every
        processor").
        """
        out = []
        for rank in range(self.num_processors):
            lo, hi = self.interval(rank)
            out.append((lo, hi - 1))
        return out

    def __repr__(self) -> str:
        return (
            f"IntervalPartition(n={self.num_elements}, p={self.num_processors}, "
            f"owners={self.owners.tolist()}, bounds={self.bounds.tolist()})"
        )


def partition_list(
    n: int,
    capabilities: np.ndarray | Sequence[float],
    arrangement: np.ndarray | Sequence[int] | None = None,
) -> IntervalPartition:
    """Partition ``[0, n)`` proportionally to *capabilities* under an
    *arrangement* (paper Sec. 3.4).

    ``arrangement[b]`` is the processor occupying block position ``b``; the
    default is the identity arrangement (P0, P1, ..., Pp-1).  Block ``b``'s
    size is proportional to the capability of the processor placed there.
    """
    cap = check_probability_vector("capabilities", capabilities)
    p = cap.size
    if arrangement is None:
        arrangement = np.arange(p, dtype=np.intp)
    owners = check_permutation(arrangement, p)
    block_caps = cap[owners]
    sizes = proportional_sizes(n, block_caps)
    bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(np.intp)
    return IntervalPartition(bounds=bounds, owners=owners)
