"""Ordering-quality sweeps (supports the Fig. 2 theme).

The point of the 1-D transformation is "good partitioning for a wide range
of partitions" from one permutation.  :func:`compare_orderings` evaluates a
set of ordering methods on one graph across many partition counts and
capability vectors, producing the rows the Fig. 2 benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.metrics import edge_cut, mean_edge_span, ordering_bandwidth
from repro.partition.intervals import partition_list
from repro.partition.ordering import OrderingMethod

__all__ = ["OrderingReport", "evaluate_ordering", "compare_orderings"]


@dataclass
class OrderingReport:
    """Quality of one ordering on one graph."""

    name: str
    mean_span: float
    bandwidth: int
    cuts: dict[int, int] = field(default_factory=dict)

    def as_row(self, part_counts: Sequence[int]) -> list[object]:
        return [self.name, self.mean_span, self.bandwidth] + [
            self.cuts[p] for p in part_counts
        ]


def evaluate_ordering(
    graph: CSRGraph,
    method: OrderingMethod,
    part_counts: Sequence[int] = (2, 4, 8, 16),
    capabilities: np.ndarray | None = None,
) -> OrderingReport:
    """Edge cuts of contiguous splits of one ordering.

    If *capabilities* is given (length must equal each part count is not
    required — the vector is truncated/normalized per count), the splits are
    proportional rather than equal, exercising the nonuniform case.
    """
    perm = method(graph)
    report = OrderingReport(
        name=getattr(method, "name", type(method).__name__),
        mean_span=mean_edge_span(graph, perm),
        bandwidth=ordering_bandwidth(graph, perm),
    )
    n = graph.num_vertices
    for p in part_counts:
        if capabilities is None:
            caps = np.ones(p)
        else:
            caps = np.resize(np.asarray(capabilities, dtype=float), p)
        part = partition_list(n, caps)
        labels = part.to_labels()[perm]  # element at 1-D position perm[v]
        report.cuts[int(p)] = edge_cut(graph, labels)
    return report


def compare_orderings(
    graph: CSRGraph,
    methods: Iterable[OrderingMethod],
    part_counts: Sequence[int] = (2, 4, 8, 16),
    capabilities: np.ndarray | None = None,
) -> list[OrderingReport]:
    """Evaluate several ordering methods on the same graph."""
    return [
        evaluate_ordering(graph, m, part_counts, capabilities) for m in methods
    ]
