"""Arrangement optimization: MinimizeCostRedistribution (paper Sec. 3.4).

When capabilities adapt, the list must be re-split.  Any of the p!
*arrangements* (orders of processors along the list) gives a valid
proportional split, but they differ wildly in how much data crosses the
network: the paper's example (Fig. 5) keeps 29/100 elements in place under
the original arrangement and 65/100 under a better one, with 5 vs 3
messages.

This module implements:

* :func:`overlap_elements` / :func:`transfer_matrix` — exact data-movement
  accounting between two interval partitions;
* :func:`move` — the MOVE list-rearrangement primitive (Fig. 7);
* :func:`minimize_cost_redistribution` — the greedy O(p^3) MCR algorithm
  (Fig. 6);
* :func:`brute_force_arrangement` — exhaustive optimum for small p (the
  "trying out all cases is feasible only for a small number of processors"
  baseline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.partition.intervals import IntervalPartition, partition_list
from repro.utils.validation import check_permutation, check_probability_vector

__all__ = [
    "RedistributionCostModel",
    "Transfer",
    "overlap_elements",
    "transfer_matrix",
    "message_count",
    "redistribution_gain",
    "move",
    "minimize_cost_redistribution",
    "brute_force_arrangement",
]


@dataclass(frozen=True)
class RedistributionCostModel:
    """Weights for the two factors of Sec. 3.4.

    "The two factors contributing to data redistribution time are the
    amount of data to be transferred and the number of messages generated."
    ``message_weight`` expresses one message's fixed cost in units of
    per-element transfer cost (latency/bandwidth trade-off); 0 reproduces a
    pure max-overlap objective.
    """

    element_weight: float = 1.0
    message_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.element_weight < 0 or self.message_weight < 0:
            raise PartitionError("cost-model weights must be non-negative")

    @classmethod
    def from_network(cls, network: object, element_nbytes: int) -> "RedistributionCostModel":
        """Derive weights from a network model's actual cost parameters.

        One element costs its serialization time; one message costs the
        fixed overhead + latency.  Any object with ``latency``,
        ``bandwidth`` and ``per_message_overhead`` attributes works.
        """
        bandwidth = float(getattr(network, "bandwidth"))
        latency = float(getattr(network, "latency"))
        overhead = float(getattr(network, "per_message_overhead", 0.0))
        elem = element_nbytes / bandwidth
        return cls(element_weight=elem, message_weight=latency + overhead)


@dataclass(frozen=True)
class Transfer:
    """One contiguous slab of the 1-D list moving between processors."""

    source: int
    dest: int
    lo: int
    hi: int  # half-open

    @property
    def count(self) -> int:
        return self.hi - self.lo


def _segments(
    old: IntervalPartition, new: IntervalPartition
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Elementary segments of the list with (old owner, new owner) each.

    Returns (boundaries, old_owner_per_segment, new_owner_per_segment) where
    segment i is [boundaries[i], boundaries[i+1]).
    """
    if old.num_elements != new.num_elements:
        raise PartitionError(
            f"partitions cover different lists: {old.num_elements} vs "
            f"{new.num_elements} elements"
        )
    if old.num_processors != new.num_processors:
        raise PartitionError(
            f"partitions have different processor counts: "
            f"{old.num_processors} vs {new.num_processors}"
        )
    cuts = np.union1d(old.bounds, new.bounds)
    if cuts.size < 2:
        return cuts, np.empty(0, np.intp), np.empty(0, np.intp)
    mids = cuts[:-1]  # left endpoint identifies each non-empty segment
    widths = np.diff(cuts)
    keep = widths > 0
    mids = mids[keep]
    cuts = np.concatenate([mids, [cuts[-1]]])
    old_block = np.searchsorted(old.bounds, mids, side="right") - 1
    new_block = np.searchsorted(new.bounds, mids, side="right") - 1
    return cuts, old.owners[old_block], new.owners[new_block]


def overlap_elements(old: IntervalPartition, new: IntervalPartition) -> int:
    """Elements whose home processor is unchanged (they need not move)."""
    cuts, old_own, new_own = _segments(old, new)
    if old_own.size == 0:
        return 0
    widths = np.diff(cuts)
    return int(widths[old_own == new_own].sum())


def transfer_matrix(
    old: IntervalPartition, new: IntervalPartition
) -> list[Transfer]:
    """All slabs that must move, as (source, dest, lo, hi) transfers.

    Adjacent segments with the same (source, dest) pair are coalesced, so
    the number of transfers equals the number of network messages the
    redistribution generates (paper's second cost factor).
    """
    cuts, old_own, new_own = _segments(old, new)
    transfers: list[Transfer] = []
    for i in range(old_own.size):
        if old_own[i] == new_own[i]:
            continue
        lo, hi = int(cuts[i]), int(cuts[i + 1])
        if (
            transfers
            and transfers[-1].source == old_own[i]
            and transfers[-1].dest == new_own[i]
            and transfers[-1].hi == lo
        ):
            prev = transfers.pop()
            transfers.append(Transfer(prev.source, prev.dest, prev.lo, hi))
        else:
            transfers.append(Transfer(int(old_own[i]), int(new_own[i]), lo, hi))
    return transfers


def message_count(old: IntervalPartition, new: IntervalPartition) -> int:
    """Number of point-to-point messages the redistribution generates."""
    return len(transfer_matrix(old, new))


def redistribution_gain(
    old: IntervalPartition,
    new: IntervalPartition,
    cost_model: RedistributionCostModel = RedistributionCostModel(),
) -> float:
    """The COST function of Fig. 6 (higher is better).

    Rewards kept-in-place elements and penalizes message count:
    ``element_weight * overlap - message_weight * messages``.
    """
    return cost_model.element_weight * overlap_elements(
        old, new
    ) - cost_model.message_weight * message_count(old, new)


def move(arrangement: Sequence[int] | np.ndarray, element: int, location: int) -> np.ndarray:
    """The MOVE primitive (paper Fig. 7).

    Relocate *element* (a processor id currently somewhere in the
    arrangement) to index *location*, shifting the intervening elements.
    The paper's example: ``MOVE([1,3,5,4,6], 5, 0) == [5,1,3,4,6]``.
    """
    arr = list(np.asarray(arrangement, dtype=np.intp))
    try:
        x = arr.index(element)
    except ValueError:
        raise PartitionError(
            f"element {element} not present in arrangement {arr}"
        ) from None
    if not (0 <= location < len(arr)):
        raise PartitionError(
            f"location {location} out of range for arrangement of size {len(arr)}"
        )
    arr.pop(x)
    arr.insert(location, element)
    return np.asarray(arr, dtype=np.intp)


def minimize_cost_redistribution(
    old_arrangement: Sequence[int] | np.ndarray,
    old_capabilities: Sequence[float] | np.ndarray,
    new_capabilities: Sequence[float] | np.ndarray,
    n_elements: int,
    *,
    cost_model: RedistributionCostModel = RedistributionCostModel(),
) -> np.ndarray:
    """The MCR greedy algorithm (paper Fig. 6), O(p^3).

    Starting from the old arrangement, each processor ``LIST[i]`` in turn is
    tried at every location ``j`` of the working arrangement; it is left at
    the location maximizing the COST (gain) of redistributing from the old
    partition (old arrangement + old capabilities) to the candidate
    partition (candidate arrangement + new capabilities).  Ties keep the
    element at its current location (no gratuitous moves) — with this
    tie-break the greedy recovers the paper's Fig. 5 arrangement
    (P0, P3, P1, P2, P4) on the paper's example.

    Returns the chosen new arrangement.  The resulting partition is obtained
    with ``partition_list(n, new_capabilities, arrangement)``.
    """
    old_arr = check_permutation(old_arrangement)
    p = old_arr.size
    old_cap = check_probability_vector("old_capabilities", old_capabilities)
    new_cap = check_probability_vector("new_capabilities", new_capabilities)
    if old_cap.size != p or new_cap.size != p:
        raise PartitionError(
            "capability vectors must match the arrangement length"
        )
    if n_elements < 0:
        raise PartitionError(f"n_elements must be >= 0, got {n_elements}")
    old_part = partition_list(n_elements, old_cap, old_arr)

    def gain_of(candidate_arr: np.ndarray) -> float:
        candidate = partition_list(n_elements, new_cap, candidate_arr)
        return redistribution_gain(old_part, candidate, cost_model)

    list_out = old_arr.copy()
    for i in range(p):
        element = int(old_arr[i])
        current = int(np.flatnonzero(list_out == element)[0])
        best_j = current
        best_gain = gain_of(list_out)
        for j in range(p):
            if j == current:
                continue
            gain = gain_of(move(list_out, element, j))
            if gain > best_gain:
                best_gain = gain
                best_j = j
        if best_j != current:
            list_out = move(list_out, element, best_j)
    return list_out


def brute_force_arrangement(
    old_arrangement: Sequence[int] | np.ndarray,
    old_capabilities: Sequence[float] | np.ndarray,
    new_capabilities: Sequence[float] | np.ndarray,
    n_elements: int,
    *,
    cost_model: RedistributionCostModel = RedistributionCostModel(),
) -> tuple[np.ndarray, float]:
    """Exhaustive search over all p! arrangements (small p only).

    Returns (best arrangement, its gain).  Used to measure the MCR greedy's
    optimality gap in the ablation benchmarks.
    """
    old_arr = check_permutation(old_arrangement)
    p = old_arr.size
    if p > 9:
        raise PartitionError(
            f"brute force over {p}! arrangements is infeasible (p <= 9)"
        )
    old_cap = check_probability_vector("old_capabilities", old_capabilities)
    new_cap = check_probability_vector("new_capabilities", new_capabilities)
    old_part = partition_list(n_elements, old_cap, old_arr)
    best: tuple[float, tuple[int, ...]] | None = None
    for perm in itertools.permutations(range(p)):
        candidate = partition_list(n_elements, new_cap, np.array(perm))
        gain = redistribution_gain(old_part, candidate, cost_model)
        if best is None or gain > best[0]:
            best = (gain, perm)
    assert best is not None
    return np.asarray(best[1], dtype=np.intp), float(best[0])
