"""Weighted contiguous partitioning of the one-dimensional list.

Sec. 3.1's full statement is that "each processor is assigned nodes with
computational *weight* proportional to the computational capabilities of
that processor".  :func:`partition_list` handles the uniform-weight case
(block size proportional to capability); this module handles nonuniform
per-element weights — needed for adaptive *applications* (paper footnote 1)
where refinement concentrates work in parts of the mesh.

Given weights w[0..n-1] laid out in 1-D order and capabilities c[0..p-1]
under an arrangement, :func:`partition_weighted_list` picks the block
boundaries so that each block's total weight is as close as possible to its
processor's proportional share, scanning the prefix-sum once (O(n + p log n)).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.partition.intervals import IntervalPartition
from repro.utils.validation import check_permutation, check_probability_vector

__all__ = ["partition_weighted_list", "weighted_imbalance"]


def partition_weighted_list(
    weights: np.ndarray | Sequence[float],
    capabilities: np.ndarray | Sequence[float],
    arrangement: np.ndarray | Sequence[int] | None = None,
) -> IntervalPartition:
    """Contiguous blocks whose *weights* are proportional to capability.

    Boundary b_k is placed where the weight prefix sum first reaches the
    cumulative capability share of the first k blocks — the natural
    generalization of Hamilton apportionment to weighted elements.  Zero
    total weight degenerates to count-proportional blocks.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise PartitionError(f"weights must be 1-D, got shape {w.shape}")
    if w.size and w.min() < 0:
        raise PartitionError("element weights must be non-negative")
    cap = check_probability_vector("capabilities", capabilities)
    p = cap.size
    if arrangement is None:
        arrangement = np.arange(p, dtype=np.intp)
    owners = check_permutation(arrangement, p)
    n = w.size
    total = float(w.sum())
    if total <= 0:
        # No weight information: fall back to count-proportional blocks.
        from repro.partition.intervals import partition_list

        return partition_list(n, cap, owners)
    block_caps = cap[owners]
    shares = np.cumsum(block_caps / block_caps.sum())[:-1] * total
    prefix = np.cumsum(w)
    # Boundary after the element where the prefix first reaches the share.
    bounds = np.concatenate(
        [[0], np.searchsorted(prefix, shares, side="left") + 1, [n]]
    ).astype(np.intp)
    # Monotonicity can break when one huge element spans several shares;
    # clamp so bounds stay sorted (later blocks may then be empty).
    np.maximum.accumulate(bounds, out=bounds)
    bounds = np.minimum(bounds, n)
    return IntervalPartition(bounds=bounds, owners=owners)


def weighted_imbalance(
    partition: IntervalPartition,
    weights: np.ndarray | Sequence[float],
    capabilities: np.ndarray | Sequence[float],
) -> float:
    """max over ranks of (weight share / capability share); 1.0 is perfect.

    The weighted counterpart of
    :func:`repro.graph.metrics.load_imbalance` for interval partitions.
    """
    w = np.asarray(weights, dtype=np.float64)
    cap = check_probability_vector("capabilities", capabilities)
    if w.shape != (partition.num_elements,):
        raise PartitionError(
            f"weights length {w.size} != list length {partition.num_elements}"
        )
    if cap.size != partition.num_processors:
        raise PartitionError("capabilities length != processor count")
    total = float(w.sum())
    if total <= 0:
        raise PartitionError("total weight must be positive")
    fair = cap / cap.sum()
    worst = 0.0
    for r in range(partition.num_processors):
        lo, hi = partition.interval(r)
        share = float(w[lo:hi].sum()) / total
        worst = max(worst, share / fair[r])
    return worst
