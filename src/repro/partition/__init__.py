"""Phase A of the paper's Fig. 1 runtime: 1-D locality transformations
(Sec. 3.1), interval partitioning (Fig. 3), MCR arrangement (Sec. 3.4)."""

from repro.partition.arrangement import (
    RedistributionCostModel,
    Transfer,
    brute_force_arrangement,
    message_count,
    minimize_cost_redistribution,
    move,
    overlap_elements,
    redistribution_gain,
    transfer_matrix,
)
from repro.partition.hpf import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    HPFDistribution,
    hpf_transfer_summary,
    redistribute_hpf,
)
from repro.partition.inertial import InertialOrdering, inertial_order
from repro.partition.intervals import (
    IntervalPartition,
    partition_list,
    proportional_sizes,
)
from repro.partition.ordering import (
    IdentityOrdering,
    OrderingMethod,
    RandomOrdering,
    inverse,
    positions_from_order,
)
from repro.partition.quality import (
    OrderingReport,
    compare_orderings,
    evaluate_ordering,
)
from repro.partition.rcb import RCBOrdering, rcb_labels, rcb_order
from repro.partition.sfc import (
    HilbertOrdering,
    MortonOrdering,
    hilbert_keys_2d,
    morton_keys,
    sfc_order,
)
from repro.partition.spectral import (
    SpectralOrdering,
    fiedler_vector,
    rsb_order,
    spectral_order_flat,
)
from repro.partition.weighted import partition_weighted_list, weighted_imbalance

__all__ = [
    "BlockCyclicDistribution",
    "BlockDistribution",
    "CyclicDistribution",
    "HPFDistribution",
    "hpf_transfer_summary",
    "partition_weighted_list",
    "redistribute_hpf",
    "weighted_imbalance",
    "HilbertOrdering",
    "IdentityOrdering",
    "InertialOrdering",
    "IntervalPartition",
    "MortonOrdering",
    "OrderingMethod",
    "OrderingReport",
    "RCBOrdering",
    "RandomOrdering",
    "RedistributionCostModel",
    "SpectralOrdering",
    "Transfer",
    "brute_force_arrangement",
    "compare_orderings",
    "evaluate_ordering",
    "fiedler_vector",
    "hilbert_keys_2d",
    "inertial_order",
    "inverse",
    "message_count",
    "minimize_cost_redistribution",
    "morton_keys",
    "move",
    "overlap_elements",
    "partition_list",
    "positions_from_order",
    "proportional_sizes",
    "rcb_labels",
    "rcb_order",
    "redistribution_gain",
    "rsb_order",
    "sfc_order",
    "spectral_order_flat",
    "transfer_matrix",
]
