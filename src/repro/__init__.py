"""STANCE reproduction: runtime support for data-parallel applications on
adaptive and nonuniform computational environments.

Reproduction of Kaddoura & Ranka (HPDC 1996).  Subpackages:

* :mod:`repro.net` -- simulated heterogeneous cluster (processors, load
  traces, network models, SPMD runner);
* :mod:`repro.graph` -- computational graphs, unstructured meshes, metrics;
* :mod:`repro.partition` -- 1-D locality orderings, interval partitioning,
  the MinimizeCostRedistribution arrangement optimizer;
* :mod:`repro.runtime` -- inspector/executor, translation tables,
  communication schedules, redistribution, adaptive load balancing;
* :mod:`repro.apps` -- example applications built on the public API.

Quickstart::

    from repro.graph import paper_mesh
    from repro.net import sun4_cluster
    from repro.runtime import ProgramConfig, run_program

    report = run_program(paper_mesh(2000), sun4_cluster(4),
                         ProgramConfig(iterations=50))
    print(report.makespan)
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
