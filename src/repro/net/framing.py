"""Length-prefixed socket framing for the real-process execution world.

The sim world hands payload *objects* between threads; the real world
(:mod:`repro.runtime.procs`) must put them on a byte stream.  This module
defines that stream format.  :class:`~repro.net.message.PackedArrays` is
already the runtime's serialization boundary (the executor and checkpoint
layers coalesce arrays into one contiguous buffer per peer), so it maps
directly onto a wire frame: the segment index travels in the frame header
area and the buffer bytes travel verbatim, with no per-element encoding.

Frame layout (all little-endian)::

    magic    u32   sanity check against stream desync
    source   i32   sending rank
    tag      i32   message tag (>= 0; control frames use kind instead)
    kind     i32   payload encoding, one of KIND_*
    meta_len u32   length of the pickled metadata section
    body_len u64   length of the raw body section
    meta     meta_len bytes
    body     body_len bytes

Payload encodings:

``KIND_PACKED``
    body = ``PackedArrays.buffer`` bytes, meta = pickled segment index.
``KIND_ARRAY``
    body = raw ndarray bytes, meta = pickled ``(dtype_str, shape)``.
``KIND_PICKLE``
    body = pickled object, meta empty (fallback for scalars, dicts, ...).
``KIND_SHUTDOWN``
    control frame: the peer is leaving.  meta = pickled bool, True for a
    clean exit (receiver just stops reading this peer) and False for an
    error exit (receiver closes its mailbox so blocked receives wake with
    :class:`~repro.errors.MailboxClosedError`, mirroring the sim world's
    failure cascade).

Array bodies are received into fresh writable memory (``recv_into`` on a
``bytearray``), so decoded arrays behave like the sim world's payloads.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

import numpy as np

from repro.errors import CommunicationError
from repro.net.message import PackedArrays

__all__ = [
    "KIND_PICKLE",
    "KIND_ARRAY",
    "KIND_PACKED",
    "KIND_SHUTDOWN",
    "Frame",
    "encode_payload",
    "decode_payload",
    "send_frame",
    "recv_frame",
]

_MAGIC = 0x5250524F  # "RPRO"
_HEADER = struct.Struct("<IiiiIQ")

KIND_PICKLE = 0
KIND_ARRAY = 1
KIND_PACKED = 2
KIND_SHUTDOWN = 3


class Frame:
    """One decoded wire frame."""

    __slots__ = ("source", "tag", "kind", "meta", "body")

    def __init__(self, source: int, tag: int, kind: int, meta: bytes, body: bytes):
        self.source = source
        self.tag = tag
        self.kind = kind
        self.meta = meta
        self.body = body

    @property
    def nbytes(self) -> int:
        """Wire size of this frame (header + sections)."""
        return _HEADER.size + len(self.meta) + len(self.body)


def encode_payload(payload: Any) -> tuple[int, bytes, Any]:
    """Return ``(kind, meta, body)`` for *payload*.

    ``body`` is a bytes-like object (possibly a memoryview over the
    payload's own buffer — callers must send it before mutating the
    payload, which the runtime's buffered-send semantics guarantee).
    """
    if isinstance(payload, PackedArrays):
        buf = np.ascontiguousarray(payload.buffer)
        return KIND_PACKED, pickle.dumps(payload.index), memoryview(buf).cast("B")
    if isinstance(payload, np.ndarray):
        a = np.ascontiguousarray(payload)
        meta = pickle.dumps((a.dtype.str, payload.shape))
        return KIND_ARRAY, meta, memoryview(a.reshape(-1).view(np.uint8)).cast("B")
    return KIND_PICKLE, b"", pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_payload(kind: int, meta: bytes, body: bytes | bytearray) -> Any:
    """Inverse of :func:`encode_payload`."""
    if kind == KIND_PACKED:
        index = pickle.loads(meta)
        buffer = np.frombuffer(body, dtype=np.uint8)
        return PackedArrays(buffer=buffer, index=index)
    if kind == KIND_ARRAY:
        dtype_str, shape = pickle.loads(meta)
        return np.frombuffer(body, dtype=np.dtype(dtype_str)).reshape(shape)
    if kind == KIND_PICKLE:
        return pickle.loads(bytes(body))
    raise CommunicationError(f"cannot decode payload frame of kind {kind}")


def send_frame(
    sock: socket.socket,
    source: int,
    tag: int,
    kind: int,
    meta: bytes,
    body: Any,
) -> int:
    """Write one frame to *sock*; returns the wire size in bytes.

    Each socket direction has exactly one writer (the owning rank's main
    thread), so no locking is needed here.
    """
    header = _HEADER.pack(_MAGIC, source, tag, kind, len(meta), len(body))
    sock.sendall(header + meta)
    if len(body):
        sock.sendall(body)
    return _HEADER.size + len(meta) + len(body)


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly *n* bytes into fresh writable memory; raises EOFError."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            raise EOFError(f"socket closed after {got}/{n} bytes")
        got += k
    return buf


def recv_frame(sock: socket.socket) -> Frame | None:
    """Read one frame from *sock*; ``None`` on clean EOF at a frame edge."""
    try:
        header = _recv_exact(sock, _HEADER.size)
    except EOFError as exc:
        if "0/" in str(exc):
            return None  # EOF between frames: the peer closed its socket
        raise
    magic, source, tag, kind, meta_len, body_len = _HEADER.unpack(bytes(header))
    if magic != _MAGIC:
        raise CommunicationError(
            f"bad frame magic 0x{magic:08x}: socket stream desynchronized"
        )
    meta = bytes(_recv_exact(sock, meta_len)) if meta_len else b""
    body = _recv_exact(sock, body_len) if body_len else bytearray()
    return Frame(source, tag, kind, meta, body)
