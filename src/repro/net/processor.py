"""Virtual processor specifications.

The paper's testbed is a pool of SUN4 workstations with *nonuniform*
computational capabilities.  A :class:`ProcessorSpec` captures what the
runtime needs to know about one machine: a relative speed (work units per
virtual second at no competing load) and a competing-load trace describing
how the machine's availability adapts over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.net.loadmodel import LoadTrace, NoLoad, advance_clock, work_done_in
from repro.utils.validation import check_positive

__all__ = ["ProcessorSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """One simulated workstation.

    Parameters
    ----------
    speed:
        Relative computational capability; a speed-2.0 machine finishes the
        same work in half the virtual time of a speed-1.0 machine (at equal
        competing load).
    load:
        Competing-load trace (defaults to a dedicated machine).
    name:
        Human-readable label used in reports.
    """

    speed: float = 1.0
    load: LoadTrace = field(default_factory=NoLoad)
    name: str = "ws"

    def __post_init__(self) -> None:
        check_positive("speed", self.speed)

    def with_load(self, load: LoadTrace) -> "ProcessorSpec":
        """A copy of this spec with a different competing-load trace."""
        return replace(self, load=load)

    def effective_speed(self, t: float) -> float:
        """Instantaneous application-visible speed at virtual time *t*."""
        return self.speed / (1.0 + self.load.load_at(t))

    def finish_time(self, t0: float, work_seconds: float) -> float:
        """Virtual time when *work_seconds* of unit-speed work completes."""
        return advance_clock(t0, work_seconds, self.speed, self.load)

    def capacity(self, t0: float, t1: float) -> float:
        """Unit-speed work this processor can complete during [t0, t1]."""
        return work_done_in(t0, t1, self.speed, self.load)
