"""Network cost models for the simulated cluster.

Three models, matching the environments the paper discusses:

* :class:`PointToPointNetwork` — contention-free store-and-forward links;
  fully deterministic, the default for unit tests.
* :class:`SharedEthernet` — a single shared medium (10 Mbit/s Ethernet in
  the paper): only one frame in flight at a time, with **hardware
  multicast** (Sec. 3.6) so one frame reaches any number of destinations.
* :class:`SwitchedNetwork` — an ATM-like switched fabric with per-port
  serialization; multicast is replicated at the switch so the sender pays
  for one injection.

All times are virtual seconds.  The models are thread-safe: the SPMD runner
calls into them concurrently from one thread per rank.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import check_positive

__all__ = [
    "NetworkModel",
    "PointToPointNetwork",
    "SharedEthernet",
    "SwitchedNetwork",
    "ETHERNET_10MBIT",
    "ETHERNET_100MBIT",
]


class NetworkModel:
    """Base class: maps (send time, size, destinations) -> arrival time."""

    #: True if a single transmission can reach several destinations at once.
    supports_multicast: bool = False

    def send(self, source: int, dest: int, nbytes: int, t_send: float) -> float:
        """Arrival time of a point-to-point message issued at *t_send*."""
        raise NotImplementedError

    def multicast(
        self, source: int, dests: Sequence[int], nbytes: int, t_send: float
    ) -> list[float]:
        """Arrival times for a one-to-many transmission.

        The default falls back to sequential unicasts (what a sender must do
        when the network has no multicast support, as Sec. 3.6 notes).
        """
        arrivals = []
        t = t_send
        for d in dests:
            arrival = self.send(source, d, nbytes, t)
            arrivals.append(arrival)
            # Sequential unicast: the sender can inject the next copy only
            # after the previous frame left its interface.
            t = max(t, self.injection_done(source, d, nbytes, t))
        return arrivals

    def injection_done(
        self, source: int, dest: int, nbytes: int, t_send: float
    ) -> float:
        """Virtual time at which the sender's interface is free again.

        Defaults to the serialization time of the frame; models override if
        contention delays injection.
        """
        return t_send + self.serialization_time(nbytes)

    def serialization_time(self, nbytes: int) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget contention state (start of a new SPMD run)."""


@dataclass
class _LinkParams:
    latency: float
    bandwidth: float  # bytes / second
    per_message_overhead: float

    def __post_init__(self) -> None:
        check_positive("latency", self.latency, strict=False)
        check_positive("bandwidth", self.bandwidth)
        check_positive("per_message_overhead", self.per_message_overhead, strict=False)


class PointToPointNetwork(NetworkModel):
    """Contention-free network: cost = overhead + latency + nbytes/bandwidth.

    Deterministic regardless of thread interleaving, hence the default model
    for tests.  ``latency`` covers propagation plus protocol processing;
    ``per_message_overhead`` is the sender-side software cost (the dominant
    term for the many small messages the "simple" schedule strategy sends,
    which is what makes it lose to the sorting strategies in Table 3).
    """

    def __init__(
        self,
        *,
        latency: float = 1e-3,
        bandwidth: float = 1.25e6,
        per_message_overhead: float = 5e-4,
    ):
        self._p = _LinkParams(latency, bandwidth, per_message_overhead)

    @property
    def latency(self) -> float:
        return self._p.latency

    @property
    def bandwidth(self) -> float:
        return self._p.bandwidth

    @property
    def per_message_overhead(self) -> float:
        return self._p.per_message_overhead

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self._p.bandwidth

    def send(self, source: int, dest: int, nbytes: int, t_send: float) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self._p
        return t_send + p.per_message_overhead + p.latency + nbytes / p.bandwidth

    def message_cost(self, nbytes: int) -> float:
        """Total end-to-end cost of one message (used by cost estimators)."""
        p = self._p
        return p.per_message_overhead + p.latency + nbytes / p.bandwidth

    def injection_done(
        self, source: int, dest: int, nbytes: int, t_send: float
    ) -> float:
        # The sending CPU is busy for the software overhead plus the copy
        # onto the wire (workstation NICs of the era were CPU-driven).
        return t_send + self._p.per_message_overhead + self.serialization_time(nbytes)


class SharedEthernet(PointToPointNetwork):
    """A single shared medium: one frame in flight cluster-wide.

    A transmission issued at ``t_send`` waits for the medium to free, holds
    it for the frame's serialization time, and arrives ``latency`` after the
    frame finishes.  Hardware multicast sends one frame to all destinations
    (Sec. 3.6: "our library has the ability to use multicast ... if the
    network supports multicast (e.g., Ethernet)").

    Contention ordering follows the (real) order in which rank threads call
    :meth:`send`, so virtual times under contention can vary run to run by
    up to the contention delay; benchmark assertions use shapes, not exact
    values.
    """

    supports_multicast = True

    def __init__(
        self,
        *,
        latency: float = 1e-3,
        bandwidth: float = 1.25e6,
        per_message_overhead: float = 5e-4,
    ):
        super().__init__(
            latency=latency,
            bandwidth=bandwidth,
            per_message_overhead=per_message_overhead,
        )
        self._lock = threading.Lock()
        self._medium_free = 0.0
        # Last granted reservation per source rank: (dest, nbytes, t_send,
        # sender_free).  What lets injection_done report the *granted* slot
        # instead of a contention-free guess.
        self._grants: dict[int, tuple[int, int, float, float]] = {}

    def reset(self) -> None:
        with self._lock:
            self._medium_free = 0.0
            self._grants.clear()

    def _acquire_medium(
        self,
        t_ready: float,
        hold: float,
        *,
        grant_key: tuple[int, int, int, float] | None = None,
    ) -> float:
        """Reserve the medium from max(t_ready, free); return start time.

        With *grant_key* = (source, dest, nbytes, t_send), the reservation
        is also recorded so a matching :meth:`injection_done` query can
        report when the sender's frame actually left the medium.
        """
        with self._lock:
            start = max(t_ready, self._medium_free)
            self._medium_free = start + hold
            if grant_key is not None:
                source, dest, nbytes, t_send = grant_key
                self._grants[source] = (dest, nbytes, t_send, start + hold)
            return start

    def send(self, source: int, dest: int, nbytes: int, t_send: float) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self._p
        frame = nbytes / p.bandwidth
        start = self._acquire_medium(
            t_send + p.per_message_overhead,
            frame,
            grant_key=(source, dest, nbytes, t_send),
        )
        return start + frame + p.latency

    def injection_done(
        self, source: int, dest: int, nbytes: int, t_send: float
    ) -> float:
        # The sender is busy until its frame has left the shared medium.
        # When the query matches the source's last granted reservation (the
        # send/injection_done pairing every caller uses), report the granted
        # slot: under contention the frame may have held the medium much
        # later than t_send, and injecting the next frame before then would
        # let a sequential-unicast fallback overlap its own frames.
        with self._lock:
            grant = self._grants.get(source)
            if grant is not None and grant[:3] == (dest, nbytes, t_send):
                return grant[3]
        # No recorded reservation (a cost estimator probing, or a query for
        # a transmission this model never granted): contention-free bound.
        return t_send + self._p.per_message_overhead + self.serialization_time(nbytes)

    def multicast(
        self, source: int, dests: Sequence[int], nbytes: int, t_send: float
    ) -> list[float]:
        if not dests:
            return []
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self._p
        frame = nbytes / p.bandwidth
        # Recorded under the first destination: the comm layer queries
        # injection_done with dests[0] after a multicast.
        start = self._acquire_medium(
            t_send + p.per_message_overhead,
            frame,
            grant_key=(source, int(dests[0]), nbytes, t_send),
        )
        arrival = start + frame + p.latency
        return [arrival] * len(dests)


class SwitchedNetwork(NetworkModel):
    """ATM-like switched fabric: serialization per destination input port.

    Each destination's ingress port is a resource; concurrent senders to
    different destinations do not contend.  Multicast is replicated by the
    switch: the sender injects once, and each destination port delivers a
    copy (so multicast costs the sender one injection but each receiver
    still pays port serialization).
    """

    supports_multicast = True

    def __init__(
        self,
        *,
        latency: float = 5e-4,
        bandwidth: float = 1.9375e7,  # ~155 Mbit/s OC-3 ATM
        per_message_overhead: float = 3e-4,
    ):
        self._p = _LinkParams(latency, bandwidth, per_message_overhead)
        self._lock = threading.Lock()
        self._port_free: dict[int, float] = {}

    @property
    def latency(self) -> float:
        return self._p.latency

    @property
    def bandwidth(self) -> float:
        return self._p.bandwidth

    @property
    def per_message_overhead(self) -> float:
        return self._p.per_message_overhead

    def reset(self) -> None:
        with self._lock:
            self._port_free.clear()

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self._p.bandwidth

    def message_cost(self, nbytes: int) -> float:
        p = self._p
        return p.per_message_overhead + p.latency + nbytes / p.bandwidth

    def _deliver(self, dest: int, t_ready: float, hold: float) -> float:
        with self._lock:
            start = max(t_ready, self._port_free.get(dest, 0.0))
            self._port_free[dest] = start + hold
            return start + hold

    def send(self, source: int, dest: int, nbytes: int, t_send: float) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self._p
        hold = nbytes / p.bandwidth
        done = self._deliver(dest, t_send + p.per_message_overhead, hold)
        return done + p.latency

    def injection_done(
        self, source: int, dest: int, nbytes: int, t_send: float
    ) -> float:
        return t_send + self._p.per_message_overhead + self.serialization_time(nbytes)

    def multicast(
        self, source: int, dests: Sequence[int], nbytes: int, t_send: float
    ) -> list[float]:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self._p
        hold = nbytes / p.bandwidth
        t_ready = t_send + p.per_message_overhead
        return [self._deliver(d, t_ready, hold) + p.latency for d in dests]


def ETHERNET_10MBIT() -> SharedEthernet:
    """The paper's network: 10 Mbit/s shared Ethernet, ~1 ms latency."""
    return SharedEthernet(latency=1e-3, bandwidth=1.25e6, per_message_overhead=5e-4)


def ETHERNET_100MBIT() -> SharedEthernet:
    """A faster shared Ethernet for sensitivity studies."""
    return SharedEthernet(latency=2e-4, bandwidth=1.25e7, per_message_overhead=2e-4)
