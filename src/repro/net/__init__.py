"""Simulated cluster substrate: processors, load traces, networks, SPMD.

This package replaces the paper's physical testbed (SUN4 workstations + P4
over Ethernet, Sec. 4) with a virtual-time simulation; see
docs/architecture.md for the substitution argument.
"""

from repro.net.cluster import (
    SUN4_SPEEDS,
    ClusterSpec,
    adaptive_cluster,
    heterogeneous_cluster,
    sun4_cluster,
    uniform_cluster,
)
from repro.net.comm import Communicator, RankContext, resolve_recv_timeout
from repro.net.loadmodel import (
    CompositeLoad,
    ConstantLoad,
    LoadTrace,
    MembershipEvent,
    MembershipTrace,
    NoLoad,
    RampLoad,
    RandomWalkLoad,
    StepLoad,
    advance_clock,
    work_done_in,
)
from repro.net.message import ANY_SOURCE, ANY_TAG, Message, Tags, payload_nbytes
from repro.net.network import (
    ETHERNET_10MBIT,
    ETHERNET_100MBIT,
    NetworkModel,
    PointToPointNetwork,
    SharedEthernet,
    SwitchedNetwork,
)
from repro.net.processor import ProcessorSpec
from repro.net.report import (
    RankBreakdown,
    UtilizationReport,
    analyze_trace,
    render_timeline,
)
from repro.net.spmd import WORLDS, SPMDResult, SPMDRunner, run_spmd
from repro.net.trace import TraceEvent, TraceLog

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ClusterSpec",
    "Communicator",
    "CompositeLoad",
    "ConstantLoad",
    "ETHERNET_100MBIT",
    "ETHERNET_10MBIT",
    "LoadTrace",
    "MembershipEvent",
    "MembershipTrace",
    "Message",
    "NetworkModel",
    "NoLoad",
    "PointToPointNetwork",
    "ProcessorSpec",
    "RampLoad",
    "RankBreakdown",
    "UtilizationReport",
    "analyze_trace",
    "render_timeline",
    "RandomWalkLoad",
    "RankContext",
    "SPMDResult",
    "SPMDRunner",
    "SUN4_SPEEDS",
    "SharedEthernet",
    "StepLoad",
    "SwitchedNetwork",
    "Tags",
    "TraceEvent",
    "TraceLog",
    "WORLDS",
    "adaptive_cluster",
    "advance_clock",
    "heterogeneous_cluster",
    "payload_nbytes",
    "resolve_recv_timeout",
    "run_spmd",
    "sun4_cluster",
    "uniform_cluster",
    "work_done_in",
]
