"""The SPMD runner: execute one function on every rank of a simulated cluster.

This is the substitute for ``mpiexec -n p python app.py`` over P4: the same
program runs on all ranks (the paper's Sec. 2 SPMD model), each as an OS
thread with its own :class:`~repro.net.comm.RankContext`.

Failure semantics: if any rank raises, all mailboxes are closed so blocked
peers wake with :class:`~repro.errors.MailboxClosedError`, and the runner
raises :class:`~repro.errors.RankFailedError` carrying the *original* per-rank
exceptions (secondary mailbox-closed errors are filtered out).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import MailboxClosedError, RankFailedError
from repro.net.cluster import ClusterSpec
from repro.net.comm import Communicator, RankContext, DEFAULT_RECV_TIMEOUT
from repro.net.trace import TraceLog

__all__ = ["SPMDResult", "SPMDRunner", "run_spmd"]


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    values: list[Any]
    clocks: list[float]
    trace: TraceLog
    cluster: ClusterSpec

    @property
    def makespan(self) -> float:
        """Virtual parallel execution time: the max final rank clock."""
        return max(self.clocks)

    @property
    def imbalance(self) -> float:
        """max/mean of final clocks (1.0 = perfectly balanced finish)."""
        mean = float(np.mean(self.clocks))
        return self.makespan / mean if mean > 0 else 1.0

    def value(self, rank: int = 0) -> Any:
        return self.values[rank]


class SPMDRunner:
    """Runs rank functions over a cluster specification."""

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        trace: bool = False,
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    ):
        self.cluster = cluster
        self.trace = trace
        self.recv_timeout = recv_timeout

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> SPMDResult:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank.

        *args*/*kwargs* are shared across ranks (rank-specific data should
        be derived from ``ctx.rank``, as in any SPMD program).  Returns the
        per-rank return values and final virtual clocks.
        """
        comm = Communicator(
            self.cluster, trace=self.trace, recv_timeout=self.recv_timeout
        )
        size = comm.size
        values: list[Any] = [None] * size
        failures: dict[int, BaseException] = {}
        failure_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = comm.context(rank)
            try:
                values[rank] = fn(ctx, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with failure_lock:
                    failures[rank] = exc
                comm.shutdown()  # wake peers blocked in recv/barrier
                comm._barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
            for rank in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if failures:
            primary = {
                r: e
                for r, e in failures.items()
                if not isinstance(e, (MailboxClosedError, threading.BrokenBarrierError))
            }
            raise RankFailedError(primary or failures)

        return SPMDResult(
            values=values,
            clocks=list(comm.clocks),
            trace=comm.trace,
            cluster=self.cluster,
        )


def run_spmd(
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    *args: Any,
    trace: bool = False,
    recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    **kwargs: Any,
) -> SPMDResult:
    """One-shot convenience wrapper around :class:`SPMDRunner`."""
    return SPMDRunner(cluster, trace=trace, recv_timeout=recv_timeout).run(
        fn, *args, **kwargs
    )
