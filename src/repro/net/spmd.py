"""The SPMD runner: execute one function on every rank of a cluster.

This is the substitute for ``mpiexec -n p python app.py`` over P4: the same
program runs on all ranks (the paper's Sec. 2 SPMD model).  Two execution
worlds share this entry point:

``world="sim"`` (default)
    Each rank is an OS thread with its own
    :class:`~repro.net.comm.RankContext` and a **virtual** clock; results
    do not depend on the host machine.

``world="real"``
    Each rank is an OS process (:mod:`repro.runtime.procs`) connected to
    its peers by loopback sockets; clocks are barrier-synchronized wall
    seconds.  Trace capture records the same events and spans over the
    latched wall clock; each worker ships its buffer back to the parent
    on shutdown and the merged log lands in :attr:`SPMDResult.trace`.

Failure semantics: if any rank raises, all mailboxes are closed so blocked
peers wake with :class:`~repro.errors.MailboxClosedError`, and the runner
raises :class:`~repro.errors.RankFailedError` carrying the *original* per-rank
exceptions (secondary mailbox-closed errors are filtered out).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError, MailboxClosedError, RankFailedError
from repro.net.cluster import ClusterSpec
from repro.net.comm import Communicator, RankContext  # noqa: F401 - re-export
from repro.net.trace import TraceLog

__all__ = ["WORLDS", "SPMDResult", "SPMDRunner", "run_spmd"]

#: Supported execution worlds.
WORLDS = ("sim", "real")


def _check_world(world: str) -> str:
    if world not in WORLDS:
        raise ConfigurationError(
            f"unknown execution world {world!r}; pick from {WORLDS}"
        )
    return world


@dataclass
class SPMDResult:
    """Outcome of one SPMD run.

    ``clocks`` are virtual seconds in the sim world and barrier-aligned
    wall seconds in the real world.
    """

    values: list[Any]
    clocks: list[float]
    trace: TraceLog
    cluster: ClusterSpec

    def _check_clocks(self, what: str) -> None:
        if not self.clocks:
            raise ConfigurationError(
                f"{what} is undefined for a run with no ranks"
            )
        bad = [c for c in self.clocks if not np.isfinite(c) or c < 0]
        if bad:
            raise ConfigurationError(
                f"{what} is undefined: degenerate final clocks {bad} "
                f"(clocks must be finite and >= 0)"
            )

    @property
    def makespan(self) -> float:
        """Parallel execution time: the max final rank clock."""
        self._check_clocks("makespan")
        return max(self.clocks)

    @property
    def imbalance(self) -> float:
        """max/mean of final clocks (1.0 = perfectly balanced finish).

        All-zero clocks (no time ever charged) are defined as perfectly
        balanced; empty or negative/non-finite clocks raise
        :class:`~repro.errors.ConfigurationError` instead of silently
        reporting balance.
        """
        self._check_clocks("imbalance")
        mean = float(np.mean(self.clocks))
        if mean == 0.0:
            return 1.0  # nobody accumulated any time: vacuously balanced
        return self.makespan / mean

    def value(self, rank: int = 0) -> Any:
        return self.values[rank]


class SPMDRunner:
    """Runs rank functions over a cluster specification.

    ``recv_timeout=None`` resolves through ``REPRO_RECV_TIMEOUT`` and then
    :data:`~repro.net.comm.DEFAULT_RECV_TIMEOUT`.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        trace: bool = False,
        trace_capacity: int | None = None,
        recv_timeout: float | None = None,
        world: str = "sim",
    ):
        self.cluster = cluster
        self.trace = trace
        self.trace_capacity = trace_capacity
        self.recv_timeout = recv_timeout
        self.world = _check_world(world)

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> SPMDResult:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank.

        *args*/*kwargs* are shared across ranks (rank-specific data should
        be derived from ``ctx.rank``, as in any SPMD program).  Returns the
        per-rank return values and final clocks.
        """
        if self.world == "real":
            from repro.runtime.procs import run_real_spmd

            return run_real_spmd(
                self.cluster, fn, *args,
                trace=self.trace, trace_capacity=self.trace_capacity,
                recv_timeout=self.recv_timeout, **kwargs,
            )

        comm = Communicator(
            self.cluster, trace=self.trace,
            trace_capacity=self.trace_capacity,
            recv_timeout=self.recv_timeout,
        )
        size = comm.size
        values: list[Any] = [None] * size
        failures: dict[int, BaseException] = {}
        failure_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = comm.context(rank)
            try:
                values[rank] = fn(ctx, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with failure_lock:
                    failures[rank] = exc
                comm.shutdown()  # wake peers blocked in recv/barrier
                comm._barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
            for rank in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if failures:
            primary = {
                r: e
                for r, e in failures.items()
                if not isinstance(e, (MailboxClosedError, threading.BrokenBarrierError))
            }
            raise RankFailedError(primary or failures)

        return SPMDResult(
            values=values,
            clocks=list(comm.clocks),
            trace=comm.trace,
            cluster=self.cluster,
        )


def run_spmd(
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    *args: Any,
    trace: bool = False,
    trace_capacity: int | None = None,
    recv_timeout: float | None = None,
    world: str = "sim",
    **kwargs: Any,
) -> SPMDResult:
    """One-shot convenience wrapper around :class:`SPMDRunner`."""
    return SPMDRunner(
        cluster, trace=trace, trace_capacity=trace_capacity,
        recv_timeout=recv_timeout, world=world,
    ).run(fn, *args, **kwargs)
