"""Thread-safe per-rank mailboxes with (source, tag) matching.

Each rank owns one :class:`Mailbox`.  Senders deposit :class:`Message`
objects; the owning rank blocks in :meth:`Mailbox.receive` until a matching
message arrives.  Matching supports the ``ANY_SOURCE`` / ``ANY_TAG``
wildcards with FIFO order preserved per (source, tag) channel, which is the
ordering guarantee P4 (and MPI) provide.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.errors import CommunicationError, MailboxClosedError
from repro.net.message import ANY_SOURCE, ANY_TAG, Message

__all__ = ["Mailbox"]


class Mailbox:
    """Unbounded buffered mailbox for a single receiving rank.

    Matching is O(1) amortized for exact (source, tag) receives: messages
    removed through the per-channel queues are only *marked* dead in the
    arrival-order deque and reclaimed lazily when the scan next passes
    them, instead of the O(pending) ``deque.remove`` a naive design needs
    per receive (quadratic over a burst of coalesced executor messages).
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], Deque[Message]] = {}
        self._arrival_order: Deque[Message] = deque()
        #: id() of messages already popped via a channel queue but not yet
        #: swept out of ``_arrival_order`` (always a subset of it).
        self._dead: set[int] = set()
        self._closed = False

    def deposit(self, msg: Message) -> None:
        """Called by a sender thread; never blocks."""
        if msg.dest != self.rank:
            raise CommunicationError(
                f"message for rank {msg.dest} deposited in mailbox {self.rank}"
            )
        with self._cond:
            if self._closed:
                raise MailboxClosedError(
                    f"mailbox {self.rank} is closed; dropping message from "
                    f"{msg.source} tag {msg.tag}"
                )
            self._queues.setdefault((msg.source, msg.tag), deque()).append(msg)
            self._arrival_order.append(msg)
            self._cond.notify_all()

    def _compact_head(self) -> None:
        """Drop dead entries from the front of the arrival deque.

        If dead entries pile up *behind* a stuck head message (one nobody
        ever receives), a full sweep rebuilds the deque so memory stays
        proportional to live messages, not total traffic.
        """
        order = self._arrival_order
        dead = self._dead
        while order and id(order[0]) in dead:
            dead.discard(id(order.popleft()))
        if len(dead) > len(order) // 2:
            self._arrival_order = deque(
                m for m in order if id(m) not in dead
            )
            dead.clear()

    def _match(self, source: int, tag: int) -> Optional[Message]:
        """Pop the first matching message, or None. Caller holds the lock."""
        self._compact_head()
        if source != ANY_SOURCE and tag != ANY_TAG:
            q = self._queues.get((source, tag))
            if q:
                msg = q.popleft()
                self._dead.add(id(msg))
                return msg
            return None
        # Wildcard: take the earliest-deposited live message that matches.
        # The earliest arrival on a channel is that channel's queue head,
        # so removal from the channel queue is a popleft.
        dead = self._dead
        for msg in self._arrival_order:
            if id(msg) in dead:
                continue
            if (source == ANY_SOURCE or msg.source == source) and (
                tag == ANY_TAG or msg.tag == tag
            ):
                self._queues[(msg.source, msg.tag)].popleft()
                dead.add(id(msg))
                self._compact_head()
                return msg
        return None

    def receive(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout: float | None = None,
    ) -> Message:
        """Block until a message matching (source, tag) is available.

        ``timeout`` is a *real* (host) timeout guarding against deadlocks in
        tests; expiry raises :class:`CommunicationError`.
        """
        with self._cond:
            while True:
                if self._closed:
                    raise MailboxClosedError(f"mailbox {self.rank} closed")
                msg = self._match(source, tag)
                if msg is not None:
                    return msg
                if not self._cond.wait(timeout=timeout):
                    src = "ANY" if source == ANY_SOURCE else str(source)
                    tg = "ANY" if tag == ANY_TAG else str(tag)
                    buffered = len(self._arrival_order) - len(self._dead)
                    raise CommunicationError(
                        f"rank {self.rank}: blocked receive timed out after "
                        f"{timeout}s waiting for source={src}, tag={tg} "
                        f"({buffered} non-matching message(s) buffered); "
                        f"likely deadlock or a slow peer — tune with "
                        f"--recv-timeout / REPRO_RECV_TIMEOUT"
                    )

    def receive_bulk(
        self,
        sources: set[int],
        tag: int,
        *,
        timeout: float | None = None,
    ) -> dict[int, Message]:
        """Receive one message from each of *sources* for an exact *tag*.

        The bulk form of the known-pattern executor drain: one lock
        acquisition and one pass over the per-source channels per wakeup,
        instead of a full wildcard scan of the arrival deque per message
        (O(peers) per phase rather than O(messages x pending)).  Exact
        matching only — wildcards take the legacy per-message path.

        A buffered message carrying *tag* from a rank outside *sources*
        raises :class:`CommunicationError` (the same protocol violation
        :meth:`repro.net.comm.RankContext.recv_expected` reports), checked
        whenever no expected channel can make progress.
        """
        if tag == ANY_TAG or any(s == ANY_SOURCE for s in sources):
            raise CommunicationError(
                "receive_bulk requires an exact tag and exact sources"
            )
        received: dict[int, Message] = {}
        pending = set(sources)
        with self._cond:
            while pending:
                if self._closed:
                    raise MailboxClosedError(f"mailbox {self.rank} closed")
                progressed = False
                for s in tuple(pending):
                    q = self._queues.get((s, tag))
                    if q:
                        msg = q.popleft()
                        self._dead.add(id(msg))
                        received[s] = msg
                        pending.discard(s)
                        progressed = True
                if progressed:
                    self._compact_head()
                    continue
                for (s, t), q in self._queues.items():
                    if t == tag and q and s not in pending:
                        raise CommunicationError(
                            f"rank {self.rank}: unexpected message from rank "
                            f"{s} (tag {tag}) while expecting "
                            f"{sorted(pending)}"
                        )
                if not self._cond.wait(timeout=timeout):
                    buffered = len(self._arrival_order) - len(self._dead)
                    raise CommunicationError(
                        f"rank {self.rank}: bulk receive timed out after "
                        f"{timeout}s waiting for sources "
                        f"{sorted(pending)}, tag {tag} ({buffered} "
                        f"non-matching message(s) buffered); likely "
                        f"deadlock or a slow peer — tune with "
                        f"--recv-timeout / REPRO_RECV_TIMEOUT"
                    )
        return received

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already buffered (non-blocking)."""
        with self._cond:
            for msg in self._arrival_order:
                if id(msg) in self._dead:
                    continue
                if (source == ANY_SOURCE or msg.source == source) and (
                    tag == ANY_TAG or msg.tag == tag
                ):
                    return True
            return False

    def pending_count(self) -> int:
        with self._cond:
            return len(self._arrival_order) - len(self._dead)

    def close(self) -> None:
        """Wake all blocked receivers with :class:`MailboxClosedError`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
