"""Event tracing for the simulated cluster.

A :class:`TraceLog` records sends, receives, barriers, compute blocks, and
load-balancing events with their virtual time spans.  Benchmarks use it to
count messages and bytes (e.g. Fig. 5's "number of messages needed to
redistribute the data"); tests use it to assert communication patterns
(e.g. schedule_sort1 builds its schedule with zero messages).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send``, ``recv``, ``multicast``, ``compute``,
    ``barrier``, ``collective``, ``remap``, ``lb-check``.
    """

    kind: str
    rank: int
    t_start: float
    t_end: float
    nbytes: int = 0
    peer: int = -1
    tag: int = -1
    label: str = ""


class TraceLog:
    """Thread-safe append-only event log (one per SPMD run)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._events.append(event)

    def events(self, kind: str | None = None, rank: int | None = None) -> list[TraceEvent]:
        """Snapshot of events, optionally filtered by kind and/or rank."""
        with self._lock:
            evs = list(self._events)
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        if rank is not None:
            evs = [e for e in evs if e.rank == rank]
        return evs

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def message_count(self, *, kinds: Iterable[str] = ("send", "multicast")) -> int:
        """Number of transmissions (a multicast counts once, as on Ethernet)."""
        kindset = set(kinds)
        return sum(1 for e in self.events() if e.kind in kindset)

    def bytes_sent(self) -> int:
        """Total payload bytes across sends and multicasts."""
        return sum(e.nbytes for e in self.events() if e.kind in ("send", "multicast"))

    def time_in(self, kind: str, rank: int) -> float:
        """Total virtual time rank spent in events of *kind*."""
        return sum(e.t_end - e.t_start for e in self.events(kind=kind, rank=rank))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
