"""Event tracing for the simulated cluster.

A :class:`TraceLog` records sends, receives, barriers, compute blocks, and
load-balancing events with their virtual time spans.  Benchmarks use it to
count messages and bytes (e.g. Fig. 5's "number of messages needed to
redistribute the data"); tests use it to assert communication patterns
(e.g. schedule_sort1 builds its schedule with zero messages).

Since the observability layer (:mod:`repro.obs`) the same log also holds
*hierarchical spans*: events with ``span_id >= 0`` produced by a
:class:`~repro.obs.Tracer`, nested through ``parent_id`` and carrying a
wall-clock interval next to the virtual one.  Spans are a strict superset
of the original flat events — every pre-existing consumer
(:func:`~repro.net.report.analyze_trace`, the Fig. 5 message counts)
filters by ``kind`` and never sees them.

Recording NEVER reads or advances any rank clock: enabling a trace leaves
virtual time, final values, and collective counters bit-identical (the
``obs-neutral`` fuzzer invariant pins this).
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["TraceEvent", "TraceLog"]

_log = logging.getLogger("repro.net.trace")


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is one of ``send``, ``recv``, ``multicast``, ``compute``,
    ``barrier``, ``collective`` for flat comm/compute events, or a span
    kind (``program``, ``epoch``, ``inspector``, ``executor``,
    ``lb-check``, ``remap``, ``checkpoint``, ``recovery``,
    ``membership-poll``, ``admit``, ``job``) when ``span_id >= 0``.

    ``t_start``/``t_end`` are in the world's primary clock (virtual
    seconds in the sim world, latched wall seconds in the real world);
    spans additionally carry ``wall_start``/``wall_end`` host seconds.
    ``seq`` is a per-rank record counter stamped by :meth:`TraceLog.record`
    — program order per rank, and a deterministic sort key ``(rank, seq)``
    for exports (the global append order across ranks is not
    deterministic under thread scheduling).
    """

    kind: str
    rank: int
    t_start: float
    t_end: float
    nbytes: int = 0
    peer: int = -1
    tag: int = -1
    label: str = ""
    span_id: int = -1
    parent_id: int = -1
    wall_start: float = -1.0
    wall_end: float = -1.0
    seq: int = -1


class TraceLog:
    """Thread-safe append-only event log (one per SPMD run).

    ``capacity`` bounds memory: when set, the log keeps the *newest*
    ``capacity`` events (ring buffer), counts evictions in
    :attr:`dropped_events`, and warns once — tracing a scale-huge run
    cannot OOM the host.
    """

    def __init__(self, enabled: bool = True, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"trace capacity must be >= 1 (or None for unbounded), "
                f"got {capacity}"
            )
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: Deque[TraceEvent] = deque()
        self._seq: dict[int, int] = {}
        self._dropped = 0
        self._warned = False

    @property
    def dropped_events(self) -> int:
        """Events evicted by the ring buffer (0 when unbounded)."""
        with self._lock:
            return self._dropped

    def record(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        with self._lock:
            if event.seq < 0:
                # Stamp per-rank program order.  The dataclass is frozen
                # so downstream code cannot mutate events; the log itself
                # is the single writer of ``seq``.
                seq = self._seq.get(event.rank, 0)
                object.__setattr__(event, "seq", seq)
                self._seq[event.rank] = seq + 1
            else:
                # Pre-stamped event (merged from a worker's log): keep its
                # local order, but keep this log's counters ahead of it so
                # later direct records still sort after it.
                self._seq[event.rank] = max(
                    self._seq.get(event.rank, 0), event.seq + 1
                )
            if self.capacity is not None and len(self._events) >= self.capacity:
                self._events.popleft()
                self._dropped += 1
                if not self._warned:
                    self._warned = True
                    _log.warning(
                        "trace buffer full (capacity=%d): oldest events are "
                        "being dropped; raise --trace-capacity to keep more",
                        self.capacity,
                    )
            self._events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Merge pre-recorded events (e.g. shipped from a real-world
        worker process); pre-stamped ``seq`` values are preserved."""
        for event in events:
            self.record(event)

    def events(self, kind: str | None = None, rank: int | None = None) -> list[TraceEvent]:
        """Snapshot of events, optionally filtered by kind and/or rank."""
        with self._lock:
            evs = list(self._events)
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        if rank is not None:
            evs = [e for e in evs if e.rank == rank]
        return evs

    def spans(self, kind: str | None = None, rank: int | None = None) -> list[TraceEvent]:
        """Snapshot of span events only (``span_id >= 0``)."""
        return [e for e in self.events(kind=kind, rank=rank) if e.span_id >= 0]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def message_count(self, *, kinds: Iterable[str] = ("send", "multicast")) -> int:
        """Number of transmissions (a multicast counts once, as on Ethernet)."""
        kindset = set(kinds)
        return sum(1 for e in self.events() if e.kind in kindset)

    def bytes_sent(self) -> int:
        """Total payload bytes across sends and multicasts."""
        return sum(e.nbytes for e in self.events() if e.kind in ("send", "multicast"))

    def time_in(self, kind: str, rank: int) -> float:
        """Total virtual time rank spent in events of *kind*."""
        return sum(e.t_end - e.t_start for e in self.events(kind=kind, rank=rank))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq.clear()
            self._dropped = 0
            self._warned = False
