"""Competing-load traces for adaptive computational environments.

The paper's adaptive experiments (Table 5) add "a constant competing load" to
one workstation: the data-parallel process then receives only a fraction of
that machine's cycles.  We model the environment's adaptivity with a *load
trace* L(t): the number of competing processes at virtual time ``t``.  With
fair CPU sharing, the application's instantaneous rate on a processor of base
speed ``s`` is ``s / (1 + L(t))``.

All traces are piecewise-constant in time (ramps and random walks are
discretized at construction), which lets :func:`advance_clock` integrate the
rate exactly, segment by segment.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "LoadTrace",
    "NoLoad",
    "ConstantLoad",
    "StepLoad",
    "RampLoad",
    "RandomWalkLoad",
    "CompositeLoad",
    "advance_clock",
    "work_done_in",
]


class LoadTrace:
    """Base class: a piecewise-constant competing load L(t) >= 0."""

    def load_at(self, t: float) -> float:
        """Competing load at virtual time *t* (t >= 0)."""
        raise NotImplementedError

    def next_change_after(self, t: float) -> float:
        """The next breakpoint strictly after *t*, or ``math.inf``."""
        raise NotImplementedError

    def mean_load(self, t0: float, t1: float) -> float:
        """Time-averaged load over [t0, t1] (t1 > t0)."""
        if t1 <= t0:
            return self.load_at(t0)
        total = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change_after(t), t1)
            total += self.load_at(t) * (nxt - t)
            t = nxt
        return total / (t1 - t0)


@dataclass(frozen=True)
class NoLoad(LoadTrace):
    """A dedicated machine: no competing processes, ever."""

    def load_at(self, t: float) -> float:
        return 0.0

    def next_change_after(self, t: float) -> float:
        return math.inf


@dataclass(frozen=True)
class ConstantLoad(LoadTrace):
    """A constant competing load (the paper's Table 5 setup).

    ``load=1.0`` means one competing process: the application gets half the
    machine.
    """

    load: float

    def __post_init__(self) -> None:
        check_positive("load", self.load, strict=False)

    def load_at(self, t: float) -> float:
        return self.load

    def next_change_after(self, t: float) -> float:
        return math.inf


class StepLoad(LoadTrace):
    """Piecewise-constant load given explicitly as (time, load) steps.

    ``StepLoad([(0, 0), (10, 2), (50, 0)])`` is unloaded until t=10, has two
    competing processes until t=50, then is unloaded again.
    """

    def __init__(self, steps: Sequence[tuple[float, float]]):
        if not steps:
            raise ValueError("StepLoad needs at least one (time, load) step")
        times = [float(t) for t, _ in steps]
        loads = [float(l) for _, l in steps]
        if times != sorted(times):
            raise ValueError("StepLoad step times must be non-decreasing")
        if any(l < 0 for l in loads):
            raise ValueError("StepLoad loads must be non-negative")
        if times[0] > 0:
            times.insert(0, 0.0)
            loads.insert(0, 0.0)
        self._times = times
        self._loads = loads

    def load_at(self, t: float) -> float:
        idx = bisect_right(self._times, t) - 1
        return self._loads[max(idx, 0)]

    def next_change_after(self, t: float) -> float:
        idx = bisect_right(self._times, t)
        if idx >= len(self._times):
            return math.inf
        return self._times[idx]


class RampLoad(StepLoad):
    """A linear ramp from ``load0`` at ``t0`` to ``load1`` at ``t1``.

    Discretized into ``n_steps`` constant segments so integration stays
    exact; outside [t0, t1] the load holds its endpoint value.
    """

    def __init__(
        self,
        t0: float,
        t1: float,
        load0: float,
        load1: float,
        *,
        n_steps: int = 32,
    ):
        if t1 <= t0:
            raise ValueError(f"ramp needs t1 > t0, got [{t0}, {t1}]")
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        edges = np.linspace(t0, t1, n_steps + 1)
        mids = (edges[:-1] + edges[1:]) / 2.0
        frac = (mids - t0) / (t1 - t0)
        vals = load0 + frac * (load1 - load0)
        steps = [(0.0, float(load0))]
        steps += [(float(e), float(v)) for e, v in zip(edges[:-1], vals)]
        steps.append((float(t1), float(load1)))
        super().__init__(steps)


class RandomWalkLoad(StepLoad):
    """A bounded random-walk load, resampled every ``dt`` seconds.

    Models the "dynamic" resource class from Section 1 of the paper.  The
    walk is precomputed over ``horizon`` seconds at construction from an
    explicit seed, so a given experiment is reproducible; past the horizon
    the final value holds.
    """

    def __init__(
        self,
        *,
        horizon: float,
        dt: float,
        max_load: float = 3.0,
        step_scale: float = 0.5,
        seed: SeedLike = None,
        initial: float = 0.0,
    ):
        check_positive("horizon", horizon)
        check_positive("dt", dt)
        check_positive("max_load", max_load)
        rng = as_generator(seed)
        n = int(math.ceil(horizon / dt)) + 1
        loads = np.empty(n)
        loads[0] = min(max(initial, 0.0), max_load)
        increments = rng.normal(0.0, step_scale, size=n - 1)
        for i in range(1, n):
            loads[i] = min(max(loads[i - 1] + increments[i - 1], 0.0), max_load)
        steps = [(i * dt, float(loads[i])) for i in range(n)]
        super().__init__(steps)


class CompositeLoad(LoadTrace):
    """Sum of several traces (independent competing users)."""

    def __init__(self, traces: Sequence[LoadTrace]):
        if not traces:
            raise ValueError("CompositeLoad needs at least one trace")
        self._traces = list(traces)

    def load_at(self, t: float) -> float:
        return sum(tr.load_at(t) for tr in self._traces)

    def next_change_after(self, t: float) -> float:
        return min(tr.next_change_after(t) for tr in self._traces)


def advance_clock(
    t0: float,
    work_seconds: float,
    speed: float,
    trace: LoadTrace,
    *,
    max_segments: int = 10_000_000,
) -> float:
    """Return the virtual time at which *work_seconds* of unit-speed work
    finishes, starting at *t0* on a processor of relative *speed* whose
    competing load follows *trace*.

    Solves  ∫_{t0}^{t1}  speed / (1 + L(s)) ds = work_seconds  exactly for
    piecewise-constant L.
    """
    check_positive("speed", speed)
    if work_seconds < 0:
        raise ValueError(f"work_seconds must be >= 0, got {work_seconds}")
    if work_seconds == 0:
        return t0
    remaining = float(work_seconds)
    t = float(t0)
    for _ in range(max_segments):
        rate = speed / (1.0 + trace.load_at(t))
        boundary = trace.next_change_after(t)
        if boundary == math.inf:
            return t + remaining / rate
        span = boundary - t
        capacity = rate * span
        if capacity >= remaining:
            return t + remaining / rate
        remaining -= capacity
        t = boundary
    raise RuntimeError("advance_clock exceeded segment budget (runaway trace?)")


def work_done_in(
    t0: float,
    t1: float,
    speed: float,
    trace: LoadTrace,
) -> float:
    """Unit-speed work completed on the processor during [t0, t1].

    The inverse of :func:`advance_clock`; used by the Section-4 adaptive
    efficiency metric (the fraction f_i(T) each processor *could* have done).
    """
    check_positive("speed", speed)
    if t1 < t0:
        raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
    total = 0.0
    t = float(t0)
    while t < t1:
        rate = speed / (1.0 + trace.load_at(t))
        boundary = min(trace.next_change_after(t), t1)
        total += rate * (boundary - t)
        t = boundary
    return total
