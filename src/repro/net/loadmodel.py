"""Competing-load and membership traces for adaptive environments.

The paper's adaptive experiments (Table 5) add "a constant competing load" to
one workstation: the data-parallel process then receives only a fraction of
that machine's cycles.  We model the environment's adaptivity with a *load
trace* L(t): the number of competing processes at virtual time ``t``.  With
fair CPU sharing, the application's instantaneous rate on a processor of base
speed ``s`` is ``s / (1 + L(t))``.

All traces are piecewise-constant in time (ramps and random walks are
discretized at construction), which lets :func:`advance_clock` integrate the
rate exactly, segment by segment.

Sec. 1's definition of an adaptive environment also covers machines whose
*availability* changes at runtime — a workstation is reclaimed by its owner,
a faster one becomes idle and joins.  :class:`MembershipTrace` describes
that axis: join/leave/replace events at virtual times over a fixed world of
processors.  It deliberately shares the load traces' piecewise-constant
algebra (``next_change_after`` with a ``math.inf`` sentinel), and
:meth:`MembershipTrace.presence_load` projects absence onto an ordinary
:class:`StepLoad` so membership composes with competing loads through
:class:`CompositeLoad`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "LoadTrace",
    "NoLoad",
    "ConstantLoad",
    "StepLoad",
    "RampLoad",
    "RandomWalkLoad",
    "CompositeLoad",
    "ServiceLoad",
    "EVENT_KINDS",
    "MembershipEvent",
    "MembershipTrace",
    "advance_clock",
    "work_done_in",
]


class LoadTrace:
    """Base class: a piecewise-constant competing load L(t) >= 0."""

    def load_at(self, t: float) -> float:
        """Competing load at virtual time *t* (t >= 0)."""
        raise NotImplementedError

    def next_change_after(self, t: float) -> float:
        """The next breakpoint strictly after *t*, or ``math.inf``."""
        raise NotImplementedError

    def mean_load(self, t0: float, t1: float) -> float:
        """Time-averaged load over [t0, t1] (t1 > t0)."""
        if t1 <= t0:
            return self.load_at(t0)
        total = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change_after(t), t1)
            total += self.load_at(t) * (nxt - t)
            t = nxt
        return total / (t1 - t0)


@dataclass(frozen=True)
class NoLoad(LoadTrace):
    """A dedicated machine: no competing processes, ever."""

    def load_at(self, t: float) -> float:
        return 0.0

    def next_change_after(self, t: float) -> float:
        return math.inf


@dataclass(frozen=True)
class ConstantLoad(LoadTrace):
    """A constant competing load (the paper's Table 5 setup).

    ``load=1.0`` means one competing process: the application gets half the
    machine.
    """

    load: float

    def __post_init__(self) -> None:
        check_positive("load", self.load, strict=False)

    def load_at(self, t: float) -> float:
        return self.load

    def next_change_after(self, t: float) -> float:
        return math.inf


class StepLoad(LoadTrace):
    """Piecewise-constant load given explicitly as (time, load) steps.

    ``StepLoad([(0, 0), (10, 2), (50, 0)])`` is unloaded until t=10, has two
    competing processes until t=50, then is unloaded again.
    """

    def __init__(self, steps: Sequence[tuple[float, float]]):
        if not steps:
            raise ValueError("StepLoad needs at least one (time, load) step")
        times = [float(t) for t, _ in steps]
        loads = [float(load) for _, load in steps]
        if times != sorted(times):
            raise ValueError("StepLoad step times must be non-decreasing")
        if any(load < 0 for load in loads):
            raise ValueError("StepLoad loads must be non-negative")
        if times[0] > 0:
            times.insert(0, 0.0)
            loads.insert(0, 0.0)
        self._times = times
        self._loads = loads

    def load_at(self, t: float) -> float:
        idx = bisect_right(self._times, t) - 1
        return self._loads[max(idx, 0)]

    def next_change_after(self, t: float) -> float:
        idx = bisect_right(self._times, t)
        if idx >= len(self._times):
            return math.inf
        return self._times[idx]


class RampLoad(StepLoad):
    """A linear ramp from ``load0`` at ``t0`` to ``load1`` at ``t1``.

    Discretized into ``n_steps`` constant segments so integration stays
    exact; outside [t0, t1] the load holds its endpoint value.
    """

    def __init__(
        self,
        t0: float,
        t1: float,
        load0: float,
        load1: float,
        *,
        n_steps: int = 32,
    ):
        if t1 <= t0:
            raise ValueError(f"ramp needs t1 > t0, got [{t0}, {t1}]")
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        edges = np.linspace(t0, t1, n_steps + 1)
        mids = (edges[:-1] + edges[1:]) / 2.0
        frac = (mids - t0) / (t1 - t0)
        vals = load0 + frac * (load1 - load0)
        steps = [(0.0, float(load0))]
        steps += [(float(e), float(v)) for e, v in zip(edges[:-1], vals)]
        steps.append((float(t1), float(load1)))
        super().__init__(steps)


class RandomWalkLoad(StepLoad):
    """A bounded random-walk load, resampled every ``dt`` seconds.

    Models the "dynamic" resource class from Section 1 of the paper.  The
    walk is precomputed over ``horizon`` seconds at construction from an
    explicit seed, so a given experiment is reproducible; past the horizon
    the final value holds.
    """

    def __init__(
        self,
        *,
        horizon: float,
        dt: float,
        max_load: float = 3.0,
        step_scale: float = 0.5,
        seed: SeedLike = None,
        initial: float = 0.0,
    ):
        check_positive("horizon", horizon)
        check_positive("dt", dt)
        check_positive("max_load", max_load)
        rng = as_generator(seed)
        n = int(math.ceil(horizon / dt)) + 1
        loads = np.empty(n)
        loads[0] = min(max(initial, 0.0), max_load)
        increments = rng.normal(0.0, step_scale, size=n - 1)
        for i in range(1, n):
            loads[i] = min(max(loads[i - 1] + increments[i - 1], 0.0), max_load)
        steps = [(i * dt, float(loads[i])) for i in range(n)]
        super().__init__(steps)


class ServiceLoad(StepLoad):
    """Competing load induced by co-tenant jobs' busy intervals.

    The job service (:mod:`repro.serve`) records, for every physical rank,
    the service-time intervals during which an admitted job keeps that
    machine busy.  A later job admitted at service time ``origin`` sees
    those co-tenants as ordinary competing processes: each interval
    ``(start, end, load)`` contributes *load* competing processes over
    ``[start, end)`` of service time, and the whole trace is shifted into
    the new job's local clock (local ``t`` = service ``origin + t``).
    Intervals already over by ``origin`` vanish; intervals straddling it
    are clipped.  Overlapping intervals sum, exactly like
    :class:`CompositeLoad` — this is how "each running job's compute *is*
    the other jobs' load" closes the loop the paper's Sec. 3.5 scripts by
    hand.
    """

    def __init__(
        self,
        intervals: Sequence[tuple[float, float, float]],
        *,
        origin: float = 0.0,
    ):
        if origin < 0:
            raise ValueError(f"origin must be >= 0, got {origin}")
        deltas: dict[float, float] = {}
        for start, end, load in intervals:
            if end < start:
                raise ValueError(
                    f"busy interval must have end >= start, got ({start}, {end})"
                )
            if load < 0:
                raise ValueError(f"interval load must be >= 0, got {load}")
            lo = max(float(start) - origin, 0.0)
            hi = float(end) - origin
            if hi <= lo or load == 0.0:
                continue
            deltas[lo] = deltas.get(lo, 0.0) + float(load)
            deltas[hi] = deltas.get(hi, 0.0) - float(load)
        steps: list[tuple[float, float]] = [(0.0, 0.0)]
        level = 0.0
        for t in sorted(deltas):
            level += deltas[t]
            # Clamp accumulated float error so StepLoad's >= 0 check holds.
            steps.append((t, max(level, 0.0)))
        super().__init__(steps)


class CompositeLoad(LoadTrace):
    """Sum of several traces (independent competing users)."""

    def __init__(self, traces: Sequence[LoadTrace]):
        if not traces:
            raise ValueError("CompositeLoad needs at least one trace")
        self._traces = list(traces)

    def load_at(self, t: float) -> float:
        return sum(tr.load_at(t) for tr in self._traces)

    def next_change_after(self, t: float) -> float:
        return min(tr.next_change_after(t) for tr in self._traces)


#: Recognized membership event kinds (the DSL vocabulary of
#: :meth:`MembershipTrace.parse`, minus the pseudo-kind ``standby``).
EVENT_KINDS = ("leave", "join", "replace", "fail")


@dataclass(frozen=True)
class MembershipEvent:
    """One change of the active processor set at a virtual time.

    ``kind`` is ``"leave"`` (the machine is reclaimed, announced — the
    runtime gets to drain its data), ``"join"`` (a standby machine becomes
    available), ``"replace"`` (*rank* leaves and *replacement* joins
    atomically — the "a workstation is swapped for a faster one"
    scenario), or ``"fail"`` (the machine dies *unannounced*, taking its
    memory — and any application data it held — with it; recovery is the
    business of :mod:`repro.runtime.resilience`).
    """

    time: float
    kind: str
    rank: int
    replacement: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"membership event kind must be one of "
                f"{'/'.join(EVENT_KINDS)}, got {self.kind!r}"
            )
        if not (math.isfinite(self.time) and self.time >= 0):
            raise ValueError(f"event time must be finite and >= 0, got {self.time}")
        if self.rank < 0:
            raise ValueError(f"event rank must be >= 0, got {self.rank}")
        if (self.replacement is not None) != (self.kind == "replace"):
            raise ValueError(
                "replacement is required for 'replace' events and forbidden "
                "otherwise"
            )
        if self.replacement is not None and self.replacement < 0:
            raise ValueError(
                f"replacement rank must be >= 0, got {self.replacement}"
            )
        if self.replacement == self.rank:
            raise ValueError(
                f"replace event cannot swap rank {self.rank} for itself"
            )


class MembershipTrace:
    """The active rank set over virtual time for a *world_size* pool.

    All ranks start active except those in *initially_inactive* (standby
    machines that may join later).  Events apply at their timestamp:
    ``active_mask(t)`` reflects every event with ``time <= t``.  The trace
    is validated at construction by replaying it: a leave requires the rank
    to be active, a join requires it to be standby, and the active set may
    never become empty — an invalid trace fails here, not mid-run.

    Like the load traces, the trace is replicated knowledge (every rank
    holds a copy, mirroring the paper's replicated interval list), which is
    what lets membership decisions be evaluated redundantly on every rank
    without a discovery protocol.
    """

    def __init__(
        self,
        world_size: int,
        events: Sequence[MembershipEvent] = (),
        *,
        initially_inactive: Sequence[int] = (),
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        inactive = frozenset(int(r) for r in initially_inactive)
        if any(r < 0 or r >= world_size for r in inactive):
            raise ValueError(
                f"initially_inactive ranks out of range: {sorted(inactive)}"
            )
        if len(inactive) == world_size:
            raise ValueError("at least one rank must start active")
        self.initially_inactive = inactive
        # Stable sort: coincident events apply in their listed order.
        self.events: tuple[MembershipEvent, ...] = tuple(
            sorted(events, key=lambda ev: ev.time)
        )
        self._times = [ev.time for ev in self.events]
        # Replay once to validate and precompute the mask after each event.
        active = set(range(world_size)) - inactive
        failed: set[int] = set()
        masks = []
        failed_masks = []
        for ev in self.events:
            for leaving, joining in self._as_moves(ev):
                if leaving is not None:
                    if leaving not in active:
                        raise ValueError(
                            f"rank {leaving} cannot {ev.kind} at "
                            f"t={ev.time}: not active"
                        )
                    active.discard(leaving)
                    if ev.kind == "fail":
                        failed.add(leaving)
                if joining is not None:
                    if joining >= world_size:
                        raise ValueError(
                            f"event rank {joining} out of range for world "
                            f"of {world_size}"
                        )
                    if joining in active:
                        raise ValueError(
                            f"rank {joining} cannot join at t={ev.time}: "
                            f"already active"
                        )
                    active.add(joining)
                    # A repaired machine rejoining starts with blank
                    # memory, like any standby joiner; it is no longer
                    # counted as failed.
                    failed.discard(joining)
            if not active:
                raise ValueError(
                    f"active set empties at t={ev.time}; a run needs at "
                    f"least one processor"
                )
            mask = np.zeros(world_size, dtype=bool)
            mask[sorted(active)] = True
            masks.append(mask)
            fmask = np.zeros(world_size, dtype=bool)
            if failed:
                fmask[sorted(failed)] = True
            failed_masks.append(fmask)
        self._masks = masks
        self._failed_masks = failed_masks

    def _as_moves(
        self, ev: MembershipEvent
    ) -> list[tuple[int | None, int | None]]:
        """Decompose one event into (leaving, joining) rank moves."""
        if ev.rank >= self.world_size:
            raise ValueError(
                f"event rank {ev.rank} out of range for world of "
                f"{self.world_size}"
            )
        if ev.kind in ("leave", "fail"):
            return [(ev.rank, None)]
        if ev.kind == "join":
            return [(None, ev.rank)]
        return [(ev.rank, ev.replacement)]

    # ------------------------------------------------------------------ #
    # the piecewise-constant algebra shared with the load traces
    # ------------------------------------------------------------------ #

    def active_mask(self, t: float) -> np.ndarray:
        """Boolean mask (indexed by rank) of the active set at time *t*."""
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            mask = np.ones(self.world_size, dtype=bool)
            if self.initially_inactive:
                mask[sorted(self.initially_inactive)] = False
            return mask
        return self._masks[idx].copy()

    def active_at(self, t: float) -> frozenset[int]:
        """The active rank set at time *t* (set form of the mask)."""
        return frozenset(int(r) for r in np.flatnonzero(self.active_mask(t)))

    def failed_mask(self, t: float) -> np.ndarray:
        """Boolean mask of the ranks that have *failed* by time *t*.

        A failed rank's memory is gone (its replicas and application data
        with it); a graceful leave keeps the machine's resource-manager
        daemon — and whatever checkpoint replicas it holds — reachable.  A
        failed rank that later rejoins is repaired hardware with blank
        memory and is no longer counted here.
        """
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return np.zeros(self.world_size, dtype=bool)
        return self._failed_masks[idx].copy()

    @property
    def has_failures(self) -> bool:
        """Whether any event is an unannounced ``fail`` (needs recovery)."""
        return any(ev.kind == "fail" for ev in self.events)

    def events_between(self, t0: float, t1: float) -> list[MembershipEvent]:
        """Events with ``t0 < time <= t1`` (the poll window of a session)."""
        if t1 < t0:
            raise ValueError(f"need t1 >= t0, got ({t0}, {t1}]")
        lo = bisect_right(self._times, t0)
        hi = bisect_right(self._times, t1)
        return list(self.events[lo:hi])

    def next_change_after(self, t: float) -> float:
        """The next membership breakpoint strictly after *t*, or ``inf``."""
        idx = bisect_right(self._times, t)
        if idx >= len(self._times):
            return math.inf
        return self._times[idx]

    # ------------------------------------------------------------------ #
    # composition and derivation helpers
    # ------------------------------------------------------------------ #

    def presence_load(self, rank: int, *, absent_load: float = 1e9) -> StepLoad:
        """Project one rank's absence onto a :class:`StepLoad`.

        While the rank is inactive the step carries *absent_load* competing
        processes (default: effectively starving the application), so
        membership can be composed with ordinary competing loads through
        :class:`CompositeLoad` — useful for visualisation and for the
        algebra property tests, not used by the runtime itself (the session
        drains a departing rank instead of letting it starve).
        """
        if not (0 <= rank < self.world_size):
            raise ValueError(f"rank {rank} out of range")
        steps: list[tuple[float, float]] = [
            (0.0, 0.0 if rank not in self.initially_inactive else absent_load)
        ]
        for ev, mask in zip(self.events, self._masks):
            load = 0.0 if mask[rank] else absent_load
            if load != steps[-1][1]:
                steps.append((ev.time, load))
        return StepLoad(steps)

    def subset(self, ranks: Sequence[int]) -> "MembershipTrace":
        """Re-index the trace onto the sub-world of *ranks*.

        Events touching dropped ranks are discarded; a replace whose two
        sides straddle the subset degrades to the surviving half.
        """
        ranks = [int(r) for r in ranks]
        if any(r < 0 or r >= self.world_size for r in ranks):
            raise ValueError(f"subset ranks out of range: {ranks}")
        index = {r: i for i, r in enumerate(ranks)}
        events: list[MembershipEvent] = []
        for ev in self.events:
            if ev.kind == "replace":
                old_in = ev.rank in index
                new_in = ev.replacement in index
                if old_in and new_in:
                    events.append(
                        MembershipEvent(
                            ev.time, "replace", index[ev.rank],
                            replacement=index[ev.replacement],
                        )
                    )
                elif old_in:
                    events.append(MembershipEvent(ev.time, "leave", index[ev.rank]))
                elif new_in:
                    events.append(
                        MembershipEvent(ev.time, "join", index[ev.replacement])
                    )
            elif ev.rank in index:
                events.append(MembershipEvent(ev.time, ev.kind, index[ev.rank]))
        return MembershipTrace(
            len(ranks),
            events,
            initially_inactive=[
                index[r] for r in sorted(self.initially_inactive) if r in index
            ],
        )

    @classmethod
    def parse(cls, spec: str, world_size: int) -> "MembershipTrace":
        """Build a trace from the CLI mini-language.

        *spec* is a comma- or semicolon-separated event list::

            standby:3, join:3@5.0, leave:0@9.5, replace:1->2@12, fail:2@15

        ``standby:R`` marks rank R initially inactive; the other tokens are
        ``kind:rank@time`` with ``replace`` naming ``old->new``.  Events
        must be listed in non-decreasing time order (the DSL is a schedule;
        an out-of-order token is almost always a typo in a timestamp) and
        every rank must lie in ``0..world_size-1``.
        """

        def _rank(text: str) -> int:
            r = int(text)
            if not (0 <= r < world_size):
                raise ValueError(
                    f"rank {r} out of range for a world of {world_size} "
                    f"processors (valid ranks: 0..{world_size - 1})"
                )
            return r

        inactive: list[int] = []
        events: list[MembershipEvent] = []
        last_time = -math.inf
        last_token = ""
        for raw in spec.replace(";", ",").split(","):
            token = raw.strip()
            if not token:
                continue
            kind, sep, rest = token.partition(":")
            kind = kind.strip()
            if not sep:
                raise ValueError(
                    f"malformed membership token {token!r}: expected "
                    f"'kind:rank@time' (or 'standby:rank')"
                )
            try:
                if kind == "standby":
                    inactive.append(_rank(rest))
                    continue
                body, at, time_text = rest.partition("@")
                if not at:
                    raise ValueError("missing @time")
                t = float(time_text)
                if t < last_time:
                    raise ValueError(
                        f"time {t:g} goes backwards (previous event "
                        f"{last_token!r} is at t={last_time:g}); list "
                        f"events in non-decreasing time order"
                    )
                if kind == "replace":
                    old_text, arrow, new_text = body.partition("->")
                    if not arrow:
                        raise ValueError("replace needs old->new")
                    events.append(
                        MembershipEvent(
                            t, "replace", _rank(old_text),
                            replacement=_rank(new_text),
                        )
                    )
                elif kind in ("leave", "join", "fail"):
                    events.append(MembershipEvent(t, kind, _rank(body)))
                else:
                    raise ValueError(
                        f"unknown event kind {kind!r}; known kinds: "
                        f"{', '.join(EVENT_KINDS)} (plus 'standby:rank')"
                    )
                last_time, last_token = t, token
            except ValueError as exc:
                raise ValueError(
                    f"malformed membership token {token!r}: {exc}"
                ) from None
        return cls(world_size, events, initially_inactive=inactive)

    def format(self) -> str:
        """The DSL spelling of the trace: ``parse(format(tr)) == tr``.

        Standby tokens come first (ascending rank), then the events in
        their stored (stably time-sorted) order, so coincident events keep
        their apply order through a parse→format→parse cycle.  Times are
        spelled with :func:`repr` so floats round-trip exactly.
        """

        def _time(t: float) -> str:
            return repr(int(t)) if t == int(t) else repr(t)

        tokens = [f"standby:{r}" for r in sorted(self.initially_inactive)]
        for ev in self.events:
            if ev.kind == "replace":
                tokens.append(
                    f"replace:{ev.rank}->{ev.replacement}@{_time(ev.time)}"
                )
            else:
                tokens.append(f"{ev.kind}:{ev.rank}@{_time(ev.time)}")
        return ", ".join(tokens)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MembershipTrace):
            return NotImplemented
        return (
            self.world_size == other.world_size
            and self.initially_inactive == other.initially_inactive
            and self.events == other.events
        )

    def __hash__(self) -> int:
        return hash((self.world_size, self.initially_inactive, self.events))

    def __repr__(self) -> str:
        return (
            f"MembershipTrace(world_size={self.world_size}, "
            f"events={len(self.events)}, "
            f"initially_inactive={sorted(self.initially_inactive)})"
        )


def advance_clock(
    t0: float,
    work_seconds: float,
    speed: float,
    trace: LoadTrace,
    *,
    max_segments: int = 10_000_000,
) -> float:
    """Return the virtual time at which *work_seconds* of unit-speed work
    finishes, starting at *t0* on a processor of relative *speed* whose
    competing load follows *trace*.

    Solves  ∫_{t0}^{t1}  speed / (1 + L(s)) ds = work_seconds  exactly for
    piecewise-constant L.
    """
    check_positive("speed", speed)
    if work_seconds < 0:
        raise ValueError(f"work_seconds must be >= 0, got {work_seconds}")
    if work_seconds == 0:
        return t0
    remaining = float(work_seconds)
    t = float(t0)
    for _ in range(max_segments):
        rate = speed / (1.0 + trace.load_at(t))
        boundary = trace.next_change_after(t)
        if boundary == math.inf:
            return t + remaining / rate
        span = boundary - t
        capacity = rate * span
        if capacity >= remaining:
            return t + remaining / rate
        remaining -= capacity
        t = boundary
    raise RuntimeError("advance_clock exceeded segment budget (runaway trace?)")


def work_done_in(
    t0: float,
    t1: float,
    speed: float,
    trace: LoadTrace,
) -> float:
    """Unit-speed work completed on the processor during [t0, t1].

    The inverse of :func:`advance_clock`; used by the Section-4 adaptive
    efficiency metric (the fraction f_i(T) each processor *could* have done).
    """
    check_positive("speed", speed)
    if t1 < t0:
        raise ValueError(f"need t1 >= t0, got [{t0}, {t1}]")
    total = 0.0
    t = float(t0)
    while t < t1:
        rate = speed / (1.0 + trace.load_at(t))
        boundary = min(trace.next_change_after(t), t1)
        total += rate * (boundary - t)
        t = boundary
    return total
