"""Message records and tag constants for the simulated message-passing layer.

The paper's experiments ran on P4 over Ethernet; our substitute is an
in-memory message-passing substrate whose messages carry *virtual* timestamps
assigned by a :class:`repro.net.network.NetworkModel`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Tags",
    "Message",
    "PackedArrays",
    "pack_arrays",
    "unpack_arrays",
    "payload_nbytes",
]

#: Wildcard source rank for :meth:`repro.net.comm.Communicator.recv`.
ANY_SOURCE: int = -1
#: Wildcard tag for :meth:`repro.net.comm.Communicator.recv`.
ANY_TAG: int = -1


class Tags:
    """Reserved message tags used by the runtime library.

    User code should use tags >= :attr:`USER_BASE`.  Collective operations
    and the load-balancing protocol reserve the low tag space so they never
    collide with application point-to-point traffic.
    """

    BARRIER = 0
    BCAST = 1
    GATHER = 2
    SCATTER = 3
    REDUCE = 4
    ALLTOALL = 5
    SCHEDULE_REQUEST = 6
    SCHEDULE_REPLY = 7
    EXECUTOR_GATHER = 8
    EXECUTOR_SCATTER = 9
    REDISTRIBUTE = 10
    LOAD_REPORT = 11
    LB_DECISION = 12
    CHECKPOINT = 13
    #: Recovery redistribution uses ``RECOVERY_BASE + dead_rank`` so one
    #: partner covering several dead owners keeps their slab streams
    #: apart; world sizes up to ``USER_BASE - RECOVERY_BASE`` are safe.
    RECOVERY_BASE = 20
    USER_BASE = 100


@dataclass
class Message:
    """One in-flight message.

    ``send_time`` is the sender's virtual clock when the send was issued;
    ``arrival_time`` is assigned by the network model and is when the payload
    becomes available at the destination (the receiver's clock is advanced to
    at least this value on receipt).
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float
    arrival_time: float = 0.0
    seq: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.source < 0 or self.dest < 0:
            raise ValueError(
                f"message endpoints must be concrete ranks, got "
                f"source={self.source} dest={self.dest}"
            )
        if self.tag < 0:
            raise ValueError(f"message tag must be >= 0, got {self.tag}")


@dataclass(frozen=True)
class PackedArrays:
    """Several arrays coalesced into one contiguous wire payload.

    The batching primitive behind per-peer message coalescing: a sender
    with k logical arrays for one destination ships a single
    ``PackedArrays`` (one message, one per-message setup charge) instead
    of k messages.  ``buffer`` is the concatenated raw bytes; ``index``
    records ``(dtype string, shape)`` per segment so the receiver can
    reconstruct zero-copy views.
    """

    buffer: np.ndarray  # 1-D uint8
    index: tuple[tuple[str, tuple[int, ...]], ...]

    @property
    def num_segments(self) -> int:
        return len(self.index)


def pack_arrays(arrays: "list[np.ndarray] | tuple[np.ndarray, ...]") -> PackedArrays:
    """Coalesce *arrays* into one contiguous byte buffer + segment index."""
    segments = []
    index = []
    for a in arrays:
        a = np.asarray(a)
        # ascontiguousarray promotes 0-d to 1-d, so record the shape first.
        shape = a.shape
        contiguous = np.ascontiguousarray(a)
        segments.append(contiguous.reshape(-1).view(np.uint8))
        index.append((a.dtype.str, shape))
    buffer = (
        np.concatenate(segments)
        if segments
        else np.empty(0, dtype=np.uint8)
    )
    return PackedArrays(buffer=buffer, index=tuple(index))


def unpack_arrays(packed: PackedArrays) -> list[np.ndarray]:
    """Reconstruct the packed arrays as views into the shared buffer."""
    if not isinstance(packed, PackedArrays):
        raise TypeError(f"expected PackedArrays, got {type(packed).__name__}")
    out: list[np.ndarray] = []
    offset = 0
    for dtype_str, shape in packed.index:
        dt = np.dtype(dtype_str)
        count = 1
        for s in shape:
            count *= s
        nbytes = count * dt.itemsize
        seg = packed.buffer[offset : offset + nbytes]
        out.append(seg.view(dt).reshape(shape))
        offset += nbytes
    if offset != packed.buffer.nbytes:
        raise ValueError(
            f"packed buffer has {packed.buffer.nbytes} bytes, index describes "
            f"{offset}"
        )
    return out


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of *payload* in bytes.

    numpy arrays count their buffer size exactly (the common case for the
    executor's gather/scatter traffic); scalars count their itemsize; other
    Python objects fall back to their pickled length, mirroring how P4 (and
    mpi4py's lowercase API) would serialize them.  Every path adds a small
    fixed header, so even empty messages have nonzero cost.
    """
    header = 16
    if isinstance(payload, PackedArrays):
        # One wire message: shared header + 8 bytes of index per segment.
        return header + int(payload.buffer.nbytes) + 8 * payload.num_segments
    if isinstance(payload, np.ndarray):
        return header + int(payload.nbytes)
    if isinstance(payload, (np.generic,)):
        return header + int(payload.itemsize)
    if isinstance(payload, (bool, int, float)):
        return header + 8
    if payload is None:
        return header
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return header + len(payload)
    if isinstance(payload, (tuple, list)) and all(
        isinstance(x, np.ndarray) for x in payload
    ):
        return header + sum(int(x.nbytes) for x in payload)
    try:
        return header + len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads still need *some* size
        return header + 64
