"""Message records and tag constants for the simulated message-passing layer.

The paper's experiments ran on P4 over Ethernet; our substitute is an
in-memory message-passing substrate whose messages carry *virtual* timestamps
assigned by a :class:`repro.net.network.NetworkModel`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Tags",
    "Message",
    "payload_nbytes",
]

#: Wildcard source rank for :meth:`repro.net.comm.Communicator.recv`.
ANY_SOURCE: int = -1
#: Wildcard tag for :meth:`repro.net.comm.Communicator.recv`.
ANY_TAG: int = -1


class Tags:
    """Reserved message tags used by the runtime library.

    User code should use tags >= :attr:`USER_BASE`.  Collective operations
    and the load-balancing protocol reserve the low tag space so they never
    collide with application point-to-point traffic.
    """

    BARRIER = 0
    BCAST = 1
    GATHER = 2
    SCATTER = 3
    REDUCE = 4
    ALLTOALL = 5
    SCHEDULE_REQUEST = 6
    SCHEDULE_REPLY = 7
    EXECUTOR_GATHER = 8
    EXECUTOR_SCATTER = 9
    REDISTRIBUTE = 10
    LOAD_REPORT = 11
    LB_DECISION = 12
    USER_BASE = 100


@dataclass
class Message:
    """One in-flight message.

    ``send_time`` is the sender's virtual clock when the send was issued;
    ``arrival_time`` is assigned by the network model and is when the payload
    becomes available at the destination (the receiver's clock is advanced to
    at least this value on receipt).
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float
    arrival_time: float = 0.0
    seq: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.source < 0 or self.dest < 0:
            raise ValueError(
                f"message endpoints must be concrete ranks, got "
                f"source={self.source} dest={self.dest}"
            )
        if self.tag < 0:
            raise ValueError(f"message tag must be >= 0, got {self.tag}")


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of *payload* in bytes.

    numpy arrays count their buffer size exactly (the common case for the
    executor's gather/scatter traffic); scalars count their itemsize; other
    Python objects fall back to their pickled length, mirroring how P4 (and
    mpi4py's lowercase API) would serialize them.  Every path adds a small
    fixed header, so even empty messages have nonzero cost.
    """
    header = 16
    if isinstance(payload, np.ndarray):
        return header + int(payload.nbytes)
    if isinstance(payload, (np.generic,)):
        return header + int(payload.itemsize)
    if isinstance(payload, (bool, int, float)):
        return header + 8
    if payload is None:
        return header
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return header + len(payload)
    if isinstance(payload, (tuple, list)) and all(
        isinstance(x, np.ndarray) for x in payload
    ):
        return header + sum(int(x.nbytes) for x in payload)
    try:
        return header + len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable payloads still need *some* size
        return header + 64
