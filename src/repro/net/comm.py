"""The communicator: virtual-clock message passing between SPMD ranks.

A :class:`Communicator` owns the mailboxes, the network model instance, and
the per-rank virtual clocks for one SPMD run.  Each rank interacts with it
through a :class:`RankContext`, which exposes an MPI-like API (``send`` /
``recv`` / collectives) plus :meth:`RankContext.compute` for charging
computation time through the rank's processor speed and competing-load trace.

Real OS threads give true SPMD concurrency (ranks block on receives exactly
as P4 processes would); **all reported time is virtual**, so results do not
depend on the host machine, the GIL, or thread scheduling — except that the
shared-Ethernet model orders contended frames by thread arrival (see
:mod:`repro.net.network`).  Known-pattern drains
(:meth:`RankContext.recv_expected`) charge receives in virtual-arrival
order, keeping clocks bit-reproducible on deterministic networks.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import CommunicationError, ConfigurationError
from repro.net.cluster import ClusterSpec
from repro.net.mailbox import Mailbox
from repro.net.message import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    Tags,
    pack_arrays,
    payload_nbytes,
    unpack_arrays,
)
from repro.net.trace import TraceEvent, TraceLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

__all__ = ["Communicator", "RankContext", "resolve_recv_timeout"]

#: Default *host* timeout for blocking receives, to surface deadlocks in
#: tests instead of hanging forever.  Override per run with the
#: ``recv_timeout`` parameter (``repro run --recv-timeout``) or globally
#: with the ``REPRO_RECV_TIMEOUT`` environment variable.
DEFAULT_RECV_TIMEOUT = 120.0

#: Environment variable overriding :data:`DEFAULT_RECV_TIMEOUT`.
RECV_TIMEOUT_ENV = "REPRO_RECV_TIMEOUT"


def resolve_recv_timeout(explicit: float | None = None) -> float:
    """Resolve the blocking-receive host timeout in seconds.

    Precedence: *explicit* argument > ``REPRO_RECV_TIMEOUT`` environment
    variable > :data:`DEFAULT_RECV_TIMEOUT`.  The result must be > 0.
    """
    if explicit is not None:
        if explicit <= 0:
            raise ConfigurationError(
                f"recv_timeout must be > 0 seconds, got {explicit}"
            )
        return float(explicit)
    env = os.environ.get(RECV_TIMEOUT_ENV)
    if env is not None and env.strip():
        try:
            value = float(env)
        except ValueError:
            raise ConfigurationError(
                f"{RECV_TIMEOUT_ENV}={env!r} is not a number"
            ) from None
        if value <= 0:
            raise ConfigurationError(
                f"{RECV_TIMEOUT_ENV} must be > 0 seconds, got {value}"
            )
        return value
    return DEFAULT_RECV_TIMEOUT


class Communicator:
    """Shared state for one SPMD run over a cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        trace: bool = False,
        trace_capacity: int | None = None,
        recv_timeout: float | None = None,
        recv_overhead: float = 2.0e-4,
        barrier_overhead: float = 1.0e-4,
    ):
        self.cluster = cluster
        self.size = cluster.size
        self.network = cluster.make_network()
        self.mailboxes = [Mailbox(r) for r in range(self.size)]
        self.clocks = [0.0] * self.size
        self.trace = TraceLog(enabled=trace, capacity=trace_capacity)
        #: One registry per rank; each rank thread touches only its own.
        self.metrics = [MetricsRegistry() for _ in range(self.size)]
        self.recv_timeout = resolve_recv_timeout(recv_timeout)
        self.recv_overhead = recv_overhead
        self.barrier_overhead = barrier_overhead
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._barrier_max = 0.0
        self._barrier = threading.Barrier(self.size, action=self._barrier_action)

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _barrier_action(self) -> None:
        # Runs in exactly one thread once all ranks have arrived.
        self._barrier_max = max(self.clocks)

    def context(self, rank: int) -> "RankContext":
        if not (0 <= rank < self.size):
            raise ConfigurationError(f"rank {rank} out of range 0..{self.size - 1}")
        return RankContext(self, rank)

    def shutdown(self) -> None:
        """Close all mailboxes (wakes every blocked receiver)."""
        for box in self.mailboxes:
            box.close()

    @property
    def makespan(self) -> float:
        """Max virtual clock across ranks (total parallel execution time)."""
        return max(self.clocks)


class RankContext:
    """Per-rank handle: the API SPMD rank functions program against."""

    def __init__(self, comm: Communicator, rank: int):
        self._comm = comm
        self.rank = rank
        self.size = comm.size
        self.proc = comm.cluster.processors[rank]
        self.metrics = comm.metrics[rank]
        #: Hierarchical span emitter (:mod:`repro.obs`); a no-op unless
        #: the run was started with trace=True.
        self.tracer = Tracer(
            comm.trace, rank, clock_fn=lambda: comm.clocks[rank]
        )

    # ------------------------------------------------------------------ #
    # virtual clock
    # ------------------------------------------------------------------ #

    @property
    def clock(self) -> float:
        """This rank's virtual time in seconds."""
        return self._comm.clocks[self.rank]

    @clock.setter
    def clock(self, value: float) -> None:
        self._comm.clocks[self.rank] = value

    def charge(self, seconds: float) -> None:
        """Advance the clock by raw virtual *seconds* (no speed scaling).

        Used for fixed software overheads such as sorting during schedule
        construction, where we charge measured host time scaled by the
        processor speed via :meth:`compute` instead when appropriate.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.clock += seconds

    def compute(self, work_seconds: float, *, label: str = "") -> None:
        """Charge *work_seconds* of unit-speed computation.

        The actual elapsed virtual time is larger on slow or loaded
        processors: it is found by integrating the processor's effective
        speed (base speed / (1 + competing load)) from the current clock.
        """
        t0 = self.clock
        t1 = self.proc.finish_time(t0, work_seconds)
        self.clock = t1
        self._comm.trace.record(
            TraceEvent("compute", self.rank, t0, t1, label=label)
        )

    def compute_items(self, n_items: int, sec_per_item: float, *, label: str = "") -> None:
        """Charge computation proportional to a number of data items."""
        if n_items < 0 or sec_per_item < 0:
            raise ValueError("n_items and sec_per_item must be >= 0")
        self.compute(n_items * sec_per_item, label=label)

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #

    def send(self, dest: int, payload: Any, tag: int = Tags.USER_BASE) -> None:
        """Buffered (non-blocking-complete) send, like P4/MPI eager sends."""
        comm = self._comm
        if not (0 <= dest < self.size):
            raise CommunicationError(f"send to invalid rank {dest}")
        if dest == self.rank:
            # Self-sends bypass the network (local memory copy).
            nbytes = payload_nbytes(payload)
            msg = Message(
                self.rank, dest, tag, payload, nbytes,
                send_time=self.clock, arrival_time=self.clock,
                seq=comm._next_seq(),
            )
            comm.mailboxes[dest].deposit(msg)
            return
        nbytes = payload_nbytes(payload)
        t0 = self.clock
        arrival = comm.network.send(self.rank, dest, nbytes, t0)
        self.clock = comm.network.injection_done(self.rank, dest, nbytes, t0)
        msg = Message(
            self.rank, dest, tag, payload, nbytes,
            send_time=t0, arrival_time=arrival, seq=comm._next_seq(),
        )
        comm.trace.record(
            TraceEvent("send", self.rank, t0, self.clock, nbytes=nbytes,
                       peer=dest, tag=tag)
        )
        self.metrics.count("net.messages_sent")
        self.metrics.count("net.bytes_sent", nbytes)
        comm.mailboxes[dest].deposit(msg)

    def multicast(
        self, dests: Sequence[int], payload: Any, tag: int = Tags.USER_BASE
    ) -> None:
        """One logical transmission to several destinations (Sec. 3.6).

        Uses hardware multicast when the network supports it (one frame on
        Ethernet); otherwise degrades to sequential unicasts.
        """
        comm = self._comm
        dests = [d for d in dests if d != self.rank]
        for d in dests:
            if not (0 <= d < self.size):
                raise CommunicationError(f"multicast to invalid rank {d}")
        if not dests:
            return
        nbytes = payload_nbytes(payload)
        t0 = self.clock
        arrivals = comm.network.multicast(self.rank, dests, nbytes, t0)
        self.clock = comm.network.injection_done(self.rank, dests[0], nbytes, t0)
        kind = "multicast" if comm.network.supports_multicast else "send"
        comm.trace.record(
            TraceEvent(kind, self.rank, t0, self.clock, nbytes=nbytes,
                       peer=-1, tag=tag, label=f"x{len(dests)}")
        )
        self.metrics.count("net.messages_sent")
        self.metrics.count("net.bytes_sent", nbytes)
        for d, arrival in zip(dests, arrivals):
            msg = Message(
                self.rank, d, tag, payload, nbytes,
                send_time=t0, arrival_time=arrival, seq=comm._next_seq(),
            )
            comm.mailboxes[d].deposit(msg)

    def send_packed(
        self,
        dest: int,
        arrays: Sequence[np.ndarray],
        tag: int = Tags.USER_BASE,
    ) -> None:
        """Send several arrays coalesced into **one** message (one frame,
        one per-message setup) instead of one message per array.

        The receiver unpacks with :meth:`recv_packed` (or
        :func:`repro.net.message.unpack_arrays` on the raw payload).
        """
        self.send(dest, pack_arrays(list(arrays)), tag)

    def recv_packed(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> list[np.ndarray]:
        """Receive one coalesced message and return its arrays."""
        return unpack_arrays(self.recv(source, tag))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        return_message: bool = False,
    ) -> Any:
        """Blocking receive; advances the clock to the message arrival."""
        comm = self._comm
        msg = comm.mailboxes[self.rank].receive(
            source, tag, timeout=comm.recv_timeout
        )
        t0 = self.clock
        self.clock = max(self.clock, msg.arrival_time) + comm.recv_overhead
        comm.trace.record(
            TraceEvent("recv", self.rank, t0, self.clock, nbytes=msg.nbytes,
                       peer=msg.source, tag=msg.tag)
        )
        self._note_recv(msg, self.clock - t0)
        return msg if return_message else msg.payload

    def _note_recv(self, msg: Message, wait: float) -> None:
        """Count one delivered message (shared by every receive path, so
        the bulk drain and the scalar path report identically)."""
        self.metrics.count("net.messages_recv")
        self.metrics.count("net.bytes_recv", msg.nbytes)
        self.metrics.observe("net.recv_wait", wait)
        self.metrics.gauge_max(
            "net.mailbox_depth",
            self._comm.mailboxes[self.rank].pending_count(),
        )

    def recv_expected(
        self, sources: Iterable[int], tag: int = ANY_TAG
    ) -> dict[int, Message]:
        """Receive exactly one message from each of *sources*, in any
        arrival order, and return them keyed by source rank.

        The drain uses wildcard matching so progress never stalls on a
        particular peer, but the **clock is charged in ascending virtual
        (arrival_time, source) order** — not the host-thread order the
        messages happened to be deposited in.  On deterministic networks
        this makes the receiver's clock bit-reproducible across runs,
        thread schedules, and runtime backends; it is the receive pattern
        behind the executor primitives, rooted collectives, and the
        load-report drains (one message per known peer per phase).
        """
        comm = self._comm
        pending = set(sources)
        if self.rank in pending:
            raise CommunicationError(
                "recv_expected cannot expect a message from self"
            )
        if tag != ANY_TAG:
            # Known tag: bulk-match the whole expected set in one pass
            # over the per-source channels (one lock acquisition per
            # wakeup) instead of one wildcard arrival-deque scan per
            # message.  Same messages, same errors; the deterministic
            # clock charging below is untouched.
            received = comm.mailboxes[self.rank].receive_bulk(
                pending, tag, timeout=comm.recv_timeout
            )
        else:
            received = {}
            while pending:
                msg = comm.mailboxes[self.rank].receive(
                    ANY_SOURCE, tag, timeout=comm.recv_timeout
                )
                if msg.source not in pending:
                    raise CommunicationError(
                        f"rank {self.rank}: unexpected message from rank "
                        f"{msg.source} (tag {msg.tag}) while expecting "
                        f"{sorted(pending)}"
                    )
                received[msg.source] = msg
                pending.discard(msg.source)
        for msg in sorted(
            received.values(), key=lambda m: (m.arrival_time, m.source)
        ):
            t0 = self.clock
            self.clock = max(self.clock, msg.arrival_time) + comm.recv_overhead
            comm.trace.record(
                TraceEvent("recv", self.rank, t0, self.clock,
                           nbytes=msg.nbytes, peer=msg.source, tag=msg.tag)
            )
            self._note_recv(msg, self.clock - t0)
        return received

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a buffered matching message."""
        return self._comm.mailboxes[self.rank].probe(source, tag)

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        *,
        send_tag: int = Tags.USER_BASE,
        recv_tag: int | None = None,
    ) -> Any:
        """Exchange: send to *dest*, then receive from *source*."""
        self.send(dest, payload, send_tag)
        return self.recv(source, recv_tag if recv_tag is not None else send_tag)

    # ------------------------------------------------------------------ #
    # collectives (implemented in repro.net.collectives)
    # ------------------------------------------------------------------ #

    def barrier(self) -> None:
        """Synchronize all ranks; exit clocks equal the max entry clock."""
        comm = self._comm
        t0 = self.clock
        comm._barrier.wait()
        self.clock = comm._barrier_max + comm.barrier_overhead
        comm.trace.record(TraceEvent("barrier", self.rank, t0, self.clock))
        self.metrics.count("net.barriers")
        self.metrics.observe("net.barrier_wait", self.clock - t0)

    def bcast(self, payload: Any, root: int = 0, *, tag: int = Tags.BCAST) -> Any:
        from repro.net.collectives import bcast

        return bcast(self, payload, root=root, tag=tag)

    def gather(self, payload: Any, root: int = 0, *, tag: int = Tags.GATHER) -> list[Any] | None:
        from repro.net.collectives import gather

        return gather(self, payload, root=root, tag=tag)

    def allgather(self, payload: Any) -> list[Any]:
        from repro.net.collectives import allgather

        return allgather(self, payload)

    def scatter(self, parts: Sequence[Any] | None, root: int = 0) -> Any:
        from repro.net.collectives import scatter

        return scatter(self, parts, root=root)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any | None:
        from repro.net.collectives import reduce as _reduce

        return _reduce(self, value, op, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        from repro.net.collectives import allreduce

        return allreduce(self, value, op)

    def alltoallv(
        self,
        outgoing: dict[int, Any],
        recv_from: Iterable[int],
        *,
        tag: int = Tags.ALLTOALL,
    ) -> dict[int, Any]:
        from repro.net.collectives import alltoallv

        return alltoallv(self, outgoing, recv_from, tag=tag)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    @property
    def trace(self) -> TraceLog:
        return self._comm.trace

    @property
    def cluster(self) -> ClusterSpec:
        """The cluster specification this rank runs on (replicated
        knowledge: every rank may consult speeds, loads, membership)."""
        return self._comm.cluster

    def capability_snapshot(self) -> np.ndarray:
        """Current normalized effective speeds of all processors.

        Available because the interval list (and hence cluster composition)
        is replicated, mirroring the paper's replicated translation list.
        """
        return self._comm.cluster.capability_ratios(self.clock)

    def __repr__(self) -> str:
        return f"RankContext(rank={self.rank}, size={self.size}, clock={self.clock:.6f})"
