"""Trace analysis: utilization breakdowns and text timelines.

Turns a :class:`~repro.net.trace.TraceLog` into the diagnostics a runtime
developer actually reads: per-rank virtual time split into compute /
communication / barrier-wait, message statistics per tag, and a coarse
ASCII timeline for eyeballing imbalance (which rank stalls, and when).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.net.trace import TraceLog
from repro.utils.tables import format_table

__all__ = ["RankBreakdown", "UtilizationReport", "analyze_trace", "render_timeline"]

#: Event kinds counted as communication time.
_COMM_KINDS = ("send", "recv", "multicast")


@dataclass
class RankBreakdown:
    """One rank's virtual-time budget."""

    rank: int
    compute: float = 0.0
    communication: float = 0.0
    barrier: float = 0.0
    total: float = 0.0

    @property
    def accounted(self) -> float:
        return self.compute + self.communication + self.barrier

    @property
    def other(self) -> float:
        """Unattributed time (schedule charges without events, etc.)."""
        return max(self.total - self.accounted, 0.0)

    def utilization(self) -> float:
        """Fraction of the rank's final clock spent computing."""
        return self.compute / self.total if self.total > 0 else 0.0


@dataclass
class UtilizationReport:
    """Whole-run summary derived from a trace."""

    breakdowns: list[RankBreakdown]
    messages_by_tag: dict[int, int] = field(default_factory=dict)
    bytes_by_tag: dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max((b.total for b in self.breakdowns), default=0.0)

    @property
    def mean_utilization(self) -> float:
        if not self.breakdowns:
            return 0.0
        return float(np.mean([b.utilization() for b in self.breakdowns]))

    def to_text(self) -> str:
        rows = [
            [b.rank, b.compute, b.communication, b.barrier, b.other,
             b.total, b.utilization()]
            for b in self.breakdowns
        ]
        table = format_table(
            ["rank", "compute", "comm", "barrier", "other", "total", "util"],
            rows,
            title="Per-rank virtual time breakdown",
            float_fmt="{:.4f}",
        )
        msg_rows = [
            [tag, self.messages_by_tag[tag], self.bytes_by_tag.get(tag, 0)]
            for tag in sorted(self.messages_by_tag)
        ]
        if msg_rows:
            table += "\n\n" + format_table(
                ["tag", "messages", "bytes"], msg_rows,
                title="Traffic by message tag",
            )
        return table


def analyze_trace(trace: TraceLog, final_clocks: list[float]) -> UtilizationReport:
    """Aggregate a trace into per-rank budgets and per-tag traffic."""
    if not trace.enabled and len(trace) == 0 and any(c > 0 for c in final_clocks):
        raise ConfigurationError(
            "trace is empty; run with trace=True to collect events"
        )
    breakdowns = [
        RankBreakdown(rank=r, total=c) for r, c in enumerate(final_clocks)
    ]
    messages: dict[int, int] = {}
    byte_counts: dict[int, int] = {}
    for ev in trace:
        if ev.rank >= len(breakdowns):
            # Silently skipping would drop this rank's traffic from the
            # report — with elastic joins that is real mid-run activity,
            # not noise.  The caller passed final clocks for too small a
            # world (e.g. only the initially active ranks).
            raise ConfigurationError(
                f"trace contains events for rank {ev.rank} but only "
                f"{len(breakdowns)} final clock(s) were supplied; pass the "
                f"full world's final clocks (elastic joins emit events for "
                f"ranks beyond the initially active set)"
            )
        span = ev.t_end - ev.t_start
        b = breakdowns[ev.rank]
        if ev.kind == "compute":
            b.compute += span
        elif ev.kind in _COMM_KINDS:
            b.communication += span
        elif ev.kind == "barrier":
            b.barrier += span
        if ev.kind in ("send", "multicast"):
            messages[ev.tag] = messages.get(ev.tag, 0) + 1
            byte_counts[ev.tag] = byte_counts.get(ev.tag, 0) + ev.nbytes
    return UtilizationReport(
        breakdowns=breakdowns,
        messages_by_tag=messages,
        bytes_by_tag=byte_counts,
    )


def render_timeline(
    trace: TraceLog,
    final_clocks: list[float],
    *,
    width: int = 72,
) -> str:
    """A coarse ASCII timeline: one row per rank, one glyph per time bucket.

    Glyphs: ``#`` compute-dominated bucket, ``~`` communication, ``.``
    barrier/idle, space for time after the rank finished.  Useful for
    spotting the staircase of an imbalanced run at a glance.
    """
    if width < 8:
        raise ConfigurationError(f"timeline width must be >= 8, got {width}")
    makespan = max(final_clocks, default=0.0)
    if makespan <= 0:
        return "(empty timeline)"
    n_ranks = len(final_clocks)
    dt = makespan / width
    # Accumulate per-bucket spans by category.
    compute = np.zeros((n_ranks, width))
    comm = np.zeros((n_ranks, width))
    for ev in trace:
        if ev.rank >= n_ranks:
            continue
        if ev.kind == "compute":
            target = compute
        elif ev.kind in _COMM_KINDS:
            target = comm
        else:
            continue
        b0 = min(int(ev.t_start / dt), width - 1)
        b1 = min(int(ev.t_end / dt), width - 1)
        for b in range(b0, b1 + 1):
            lo = max(ev.t_start, b * dt)
            hi = min(ev.t_end, (b + 1) * dt)
            target[ev.rank, b] += max(hi - lo, 0.0)
    lines = []
    for r in range(n_ranks):
        end_bucket = min(int(final_clocks[r] / dt), width)
        chars = []
        for b in range(width):
            if b >= end_bucket:
                chars.append(" ")
            elif compute[r, b] >= comm[r, b] and compute[r, b] > 0.1 * dt:
                chars.append("#")
            elif comm[r, b] > 0.1 * dt:
                chars.append("~")
            else:
                chars.append(".")
        lines.append(f"rank {r:2d} |{''.join(chars)}|")
    lines.append(f"        0{' ' * (width - 10)}{makespan:.3f}s")
    return "\n".join(lines)
