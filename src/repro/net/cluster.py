"""Cluster specifications: a set of processors plus a network model.

Factory helpers build the environments used throughout the paper's
evaluation: a homogeneous workstation pool, the heterogeneous SUN4-like pool
of Tables 3-5, and adaptive variants with a competing load injected on one
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.loadmodel import ConstantLoad, LoadTrace, MembershipTrace, NoLoad
from repro.net.network import ETHERNET_10MBIT, NetworkModel, PointToPointNetwork
from repro.net.processor import ProcessorSpec

__all__ = [
    "ClusterSpec",
    "uniform_cluster",
    "heterogeneous_cluster",
    "sun4_cluster",
    "adaptive_cluster",
    "SUN4_SPEEDS",
]

#: Relative speeds for the five-workstation pool used to mimic the paper's
#: Tables 3-5.  Workstation 1 is the fastest; later machines are slower, so
#: adding them raises throughput but lowers parallel efficiency, matching the
#: declining efficiency column of Table 4.
SUN4_SPEEDS: tuple[float, ...] = (1.0, 0.95, 0.80, 0.70, 0.55)


@dataclass(frozen=True)
class ClusterSpec:
    """An immutable description of a simulated cluster.

    ``membership`` (optional) records when machines join or leave the pool
    at runtime (the elastic axis of the paper's adaptive environments); a
    cluster without a trace is statically provisioned.
    """

    processors: tuple[ProcessorSpec, ...]
    network_factory: Callable[[], NetworkModel] = field(default=PointToPointNetwork)
    name: str = "cluster"
    membership: MembershipTrace | None = None

    def __post_init__(self) -> None:
        if not self.processors:
            raise ConfigurationError("a cluster needs at least one processor")
        if (
            self.membership is not None
            and self.membership.world_size != len(self.processors)
        ):
            raise ConfigurationError(
                f"membership trace describes a world of "
                f"{self.membership.world_size} ranks, cluster has "
                f"{len(self.processors)}"
            )

    @property
    def size(self) -> int:
        return len(self.processors)

    @property
    def speeds(self) -> np.ndarray:
        """Relative base speeds as a float vector."""
        return np.array([p.speed for p in self.processors], dtype=np.float64)

    def effective_speeds(self, t: float = 0.0) -> np.ndarray:
        """Unnormalized effective speeds at *t*, ignoring membership.

        This is the raw machine view: what each workstation could deliver if
        it were participating.  Membership masking happens in
        :meth:`capability_ratios`.
        """
        return np.array(
            [p.effective_speed(t) for p in self.processors], dtype=np.float64
        )

    def active_mask(self, t: float = 0.0) -> np.ndarray:
        """Boolean active-rank mask at *t* (all-true without a trace)."""
        if self.membership is None:
            return np.ones(self.size, dtype=bool)
        return self.membership.active_mask(t)

    def failed_mask(self, t: float = 0.0) -> np.ndarray:
        """Ranks that have *failed* by *t* (all-false without a trace).

        Failure destroys a machine's memory; a graceful leave does not.
        The distinction is what :mod:`repro.runtime.resilience` builds on:
        checkpoint replicas survive leaves but not failures.
        """
        if self.membership is None:
            return np.zeros(self.size, dtype=bool)
        return self.membership.failed_mask(t)

    def capability_ratios(
        self, t: float = 0.0, active: Sequence[bool] | np.ndarray | None = None
    ) -> np.ndarray:
        """Normalized effective speeds at virtual time *t*.

        This is the paper's "computational capability ratio" vector (e.g.
        P0=0.27, P1=0.18, ... in Sec. 3.4): effective speeds normalized to
        sum to one.  Inactive ranks (from *active*, or the cluster's own
        membership trace when *active* is omitted) contribute a ratio of
        exactly 0, so proportional splits give them nothing.
        """
        eff = self.effective_speeds(t)
        mask = self.active_mask(t) if active is None else np.asarray(active, bool)
        if mask.shape != (self.size,):
            raise ConfigurationError(
                f"active mask has shape {mask.shape}, cluster has "
                f"{self.size} processors"
            )
        if not mask.any():
            raise ConfigurationError(
                f"no active processors at t={t}; capability ratios undefined"
            )
        eff = np.where(mask, eff, 0.0)
        return eff / eff.sum()

    def make_network(self) -> NetworkModel:
        """Instantiate a fresh network model (contention state reset)."""
        net = self.network_factory()
        net.reset()
        return net

    def subset(self, ranks: Sequence[int]) -> "ClusterSpec":
        """A cluster using only the listed processors (paper's "workstations
        1,2,3" notation selects prefixes of the pool).  A membership trace
        is re-indexed onto the sub-world; events for dropped ranks vanish."""
        ranks = list(ranks)
        if not ranks:
            raise ConfigurationError("subset needs at least one rank")
        if any(r < 0 or r >= self.size for r in ranks):
            raise ConfigurationError(f"subset ranks out of range: {ranks}")
        sub_membership = None
        if self.membership is not None:
            try:
                sub_membership = self.membership.subset(ranks)
            except ValueError as exc:
                # E.g. the kept ranks all start standby, or the surviving
                # events empty the active set: not a runnable sub-world.
                raise ConfigurationError(
                    f"membership trace does not restrict to ranks "
                    f"{ranks}: {exc}"
                ) from None
        return replace(
            self,
            processors=tuple(self.processors[r] for r in ranks),
            name=f"{self.name}[{','.join(map(str, ranks))}]",
            membership=sub_membership,
        )

    def prefix(self, n: int) -> "ClusterSpec":
        """The first *n* workstations (the paper's 1..n pools)."""
        return self.subset(range(n))

    def with_load(self, rank: int, load: LoadTrace) -> "ClusterSpec":
        """A copy with a competing-load trace attached to one processor."""
        if rank < 0 or rank >= self.size:
            raise ConfigurationError(f"rank {rank} out of range for with_load")
        procs = list(self.processors)
        procs[rank] = procs[rank].with_load(load)
        return replace(self, processors=tuple(procs))

    def with_loads(self, loads: Mapping[int, LoadTrace]) -> "ClusterSpec":
        """A copy with competing-load traces attached to several processors.

        Each entry *replaces* the rank's existing trace (compose explicitly
        with :class:`~repro.net.loadmodel.CompositeLoad` to stack).  The
        job service uses this to project all co-tenant activity onto a
        job's sub-cluster in one step.
        """
        procs = list(self.processors)
        for rank, load in loads.items():
            if rank < 0 or rank >= self.size:
                raise ConfigurationError(
                    f"rank {rank} out of range for with_loads"
                )
            procs[rank] = procs[rank].with_load(load)
        return replace(self, processors=tuple(procs))

    def with_membership(self, trace: MembershipTrace | None) -> "ClusterSpec":
        """A copy whose active rank set follows *trace* (None detaches)."""
        return replace(self, membership=trace)


def uniform_cluster(
    n: int,
    *,
    speed: float = 1.0,
    network_factory: Callable[[], NetworkModel] = PointToPointNetwork,
    name: str = "uniform",
) -> ClusterSpec:
    """*n* identical dedicated workstations."""
    if n < 1:
        raise ConfigurationError(f"cluster size must be >= 1, got {n}")
    procs = tuple(
        ProcessorSpec(speed=speed, load=NoLoad(), name=f"ws{i}") for i in range(n)
    )
    return ClusterSpec(procs, network_factory, name)


def heterogeneous_cluster(
    speeds: Sequence[float],
    *,
    network_factory: Callable[[], NetworkModel] = PointToPointNetwork,
    name: str = "hetero",
) -> ClusterSpec:
    """Workstations with the given relative speeds (nonuniform environment)."""
    if len(speeds) < 1:
        raise ConfigurationError("need at least one speed")
    procs = tuple(
        ProcessorSpec(speed=float(s), load=NoLoad(), name=f"ws{i}")
        for i, s in enumerate(speeds)
    )
    return ClusterSpec(procs, network_factory, name)


def sun4_cluster(
    n: int = 5,
    *,
    ethernet: bool = True,
    name: str = "sun4",
) -> ClusterSpec:
    """The paper's testbed: up to five SUN4-class workstations on Ethernet.

    ``n`` selects the prefix (the paper reports pools "1,2", "1,2,3", ...).
    """
    if not (1 <= n <= len(SUN4_SPEEDS)):
        raise ConfigurationError(
            f"sun4_cluster supports 1..{len(SUN4_SPEEDS)} workstations, got {n}"
        )
    factory: Callable[[], NetworkModel] = (
        ETHERNET_10MBIT if ethernet else PointToPointNetwork
    )
    return heterogeneous_cluster(
        SUN4_SPEEDS[:n], network_factory=factory, name=name
    )


def adaptive_cluster(
    n: int = 5,
    *,
    loaded_rank: int = 0,
    competing_load: float = 1.0,
    ethernet: bool = True,
) -> ClusterSpec:
    """The Table-5 environment: the SUN4 pool with a constant competing load
    on one workstation (the paper loads "processor 1", its first machine)."""
    base = sun4_cluster(n, ethernet=ethernet, name="sun4-adaptive")
    return base.with_load(loaded_rank, ConstantLoad(competing_load))
