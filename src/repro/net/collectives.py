"""Collective operations over :class:`~repro.net.comm.RankContext`.

Implemented with the library's own point-to-point primitives (plus hardware
multicast where the network supports it), the way the paper's library built
its collectives over P4.  Every collective is *symmetric*: all ranks of the
communicator must call it, in the same order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TYPE_CHECKING

from repro.errors import CommunicationError
from repro.net.message import Tags

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.comm import RankContext

__all__ = [
    "bcast",
    "gather",
    "allgather",
    "scatter",
    "reduce",
    "allreduce",
    "alltoallv",
]


def bcast(ctx: "RankContext", payload: Any, *, root: int = 0, tag: int = Tags.BCAST) -> Any:
    """Broadcast from *root*; returns the payload on every rank.

    Uses one multicast transmission when the network supports it (Sec. 3.6);
    otherwise the root sends p-1 unicasts.
    """
    if ctx.size == 1:
        return payload
    if ctx.rank == root:
        dests = [r for r in range(ctx.size) if r != root]
        ctx.multicast(dests, payload, tag=tag)
        return payload
    return ctx.recv(root, tag)


def gather(
    ctx: "RankContext", payload: Any, *, root: int = 0, tag: int = Tags.GATHER
) -> list[Any] | None:
    """Gather one value per rank at *root* (rank order); None elsewhere."""
    if ctx.rank != root:
        ctx.send(root, payload, tag)
        return None
    values: list[Any] = [None] * ctx.size
    values[root] = payload
    # Deterministic drain: one contribution per peer, virtual time charged
    # in arrival order regardless of host thread scheduling (duplicate
    # contributions surface as unexpected-source errors).
    peers = [r for r in range(ctx.size) if r != root]
    for source, msg in ctx.recv_expected(peers, tag).items():
        values[source] = msg.payload
    return values


def allgather(ctx: "RankContext", payload: Any) -> list[Any]:
    """Gather at rank 0, then broadcast the full list."""
    values = gather(ctx, payload, root=0, tag=Tags.GATHER)
    return bcast(ctx, values, root=0, tag=Tags.BCAST)


def scatter(
    ctx: "RankContext", parts: Sequence[Any] | None, *, root: int = 0
) -> Any:
    """Scatter ``parts[r]`` to each rank *r* from *root*."""
    if ctx.rank == root:
        if parts is None or len(parts) != ctx.size:
            raise CommunicationError(
                f"scatter root needs exactly {ctx.size} parts, got "
                f"{None if parts is None else len(parts)}"
            )
        for r in range(ctx.size):
            if r != root:
                ctx.send(r, parts[r], Tags.SCATTER)
        return parts[root]
    return ctx.recv(root, Tags.SCATTER)


def reduce(
    ctx: "RankContext",
    value: Any,
    op: Callable[[Any, Any], Any],
    *,
    root: int = 0,
) -> Any | None:
    """Reduce with *op* at *root* in rank order; None elsewhere.

    Rank-ordered application keeps results deterministic even for
    non-commutative ``op``.
    """
    values = gather(ctx, value, root=root, tag=Tags.REDUCE)
    if ctx.rank != root:
        return None
    assert values is not None
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def allreduce(ctx: "RankContext", value: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Reduce at rank 0, then broadcast the result."""
    result = reduce(ctx, value, op, root=0)
    return bcast(ctx, result, root=0, tag=Tags.BCAST)


def alltoallv(
    ctx: "RankContext",
    outgoing: dict[int, Any],
    recv_from: Iterable[int],
    *,
    tag: int = Tags.ALLTOALL,
) -> dict[int, Any]:
    """Personalized exchange with a *known* communication pattern.

    ``outgoing`` maps destination rank -> payload; ``recv_from`` lists the
    ranks this rank expects a message from.  The pattern must be globally
    consistent (rank s lists d in ``outgoing`` iff rank d lists s in
    ``recv_from``) — in this library both sides always derive the pattern
    from the replicated interval lists, so no pattern-discovery round is
    needed (one of the paper's arguments for the 1-D representation).

    Sends are issued before receives, so the exchange cannot deadlock for
    any consistent pattern.
    """
    for dest, payload in sorted(outgoing.items()):
        if dest == ctx.rank:
            continue
        ctx.send(dest, payload, tag)
    received: dict[int, Any] = {}
    if ctx.rank in outgoing:
        received[ctx.rank] = outgoing[ctx.rank]
    expected = sorted(set(r for r in recv_from if r != ctx.rank))
    for src in expected:
        received[src] = ctx.recv(src, tag)
    return received
