"""Argument-validation helpers shared across the library.

These raise :class:`ValueError`/:class:`TypeError` with uniform, descriptive
messages.  Library-specific invariant failures use the exception hierarchy in
:mod:`repro.errors` instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_fraction",
    "check_permutation",
    "check_probability_vector",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that *value* is positive (or non-negative if not strict)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_permutation(perm: Sequence[int] | np.ndarray, n: int | None = None) -> np.ndarray:
    """Validate that *perm* is a permutation of ``0..len(perm)-1``.

    Returns the permutation as an ``intp`` array.  Used by every ordering
    implementation to guarantee the 1-D transformation T: V -> {0..n-1}
    from Section 3.1 of the paper is a bijection.
    """
    arr = np.asarray(perm, dtype=np.intp)
    if arr.ndim != 1:
        raise ValueError(f"permutation must be 1-D, got shape {arr.shape}")
    if n is not None and arr.size != n:
        raise ValueError(f"permutation has length {arr.size}, expected {n}")
    seen = np.zeros(arr.size, dtype=bool)
    if arr.size:
        if arr.min() < 0 or arr.max() >= arr.size:
            raise ValueError("permutation entries out of range")
        seen[arr] = True
        if not seen.all():
            raise ValueError("permutation has repeated entries")
    return arr


def check_probability_vector(name: str, weights: Sequence[float] | np.ndarray) -> np.ndarray:
    """Validate a vector of non-negative weights with a positive sum.

    The vector is *not* required to sum to one; callers normalize.  Used for
    processor computational-capability ratios (paper Sec. 3.4).
    """
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        raise ValueError(f"{name} must have a positive sum")
    return arr
