"""Plain-text table formatting for benchmark harness output.

Benchmarks print the same rows the paper's tables report; this module renders
them in aligned ASCII so benchmark output can be compared to the paper side
by side (see docs/benchmarks.md).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: Any, *, float_fmt: str = "{:.4g}") -> str:
    """Render one table cell: floats via *float_fmt*, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Format *rows* under *headers* as an aligned ASCII table.

    Raises :class:`ValueError` if any row's length disagrees with the header.
    """
    str_rows: list[list[str]] = []
    for row in rows:
        cells = [format_cell(v, float_fmt=float_fmt) for v in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}: {cells}"
            )
        str_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in str_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(cells) for cells in str_rows)
    return "\n".join(lines)
