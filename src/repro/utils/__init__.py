"""Shared utilities: RNG handling, validation helpers, table formatting."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_fraction,
    check_permutation,
    check_positive,
    check_probability_vector,
)
from repro.utils.tables import format_table

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_fraction",
    "check_permutation",
    "check_positive",
    "check_probability_vector",
    "format_table",
]
