"""Random-number-generator plumbing.

Every stochastic component in the library takes an explicit seed or
:class:`numpy.random.Generator`.  These helpers normalize what callers pass
in and derive independent child generators for parallel components, so an
experiment seeded once is reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

__all__ = ["as_generator", "spawn_generators", "SeedLike"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread a single generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *seed*.

    Used to give each simulated processor (or each Monte-Carlo repetition)
    its own stream so results do not depend on the order in which streams
    are consumed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
