"""Wall-clock timing helpers for the benchmark harness.

Virtual (simulated) time lives in :mod:`repro.net`; this module only times
*host* execution of algorithms whose real cost matters (e.g. Table 1 times
the MCR heuristic itself, Table 3 times schedule construction).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Stopwatch", "stopwatch", "time_call"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    ``with sw: ...`` accumulates the elapsed wall time of the block into
    ``sw.total`` and increments ``sw.count``; ``sw.mean`` averages.
    """

    total: float = 0.0
    count: int = 0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "stopwatch exited without entering"
        self.total += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean elapsed seconds per timed block (0 if never used)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start = None


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """Time a single block: ``with stopwatch() as sw: ...; sw.total``."""
    sw = Stopwatch()
    with sw:
        yield sw


def time_call(fn: Callable[[], object], *, repeats: int = 1) -> tuple[float, object]:
    """Call *fn* ``repeats`` times; return (mean seconds, last result)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result: object = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    elapsed = (time.perf_counter() - start) / repeats
    return elapsed, result
