"""Stdlib logging configuration for the ``repro.*`` logger tree.

The CLI and the real-world worker processes used to diagnose through
ad-hoc ``print(..., file=sys.stderr)``; everything now flows through
``logging.getLogger("repro...")`` with one configuration entry point.

The handler resolves ``sys.stderr`` at *emit* time (the stdlib
``logging._StderrHandler`` trick) instead of capturing the stream object
at setup.  That matters twice: pytest's ``capsys`` swaps ``sys.stderr``
per test, and the CLI may configure logging once per ``main()`` call —
a captured stream from a previous test would silently swallow output.

Worker processes inherit the level through the ``REPRO_LOG_LEVEL``
environment variable (set by the CLI's ``--log-level`` flag) and prefix
every record with their rank, so interleaved multi-process stderr stays
attributable.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["configure_logging", "LOG_LEVELS", "LEVEL_ENV"]

LOG_LEVELS = ("debug", "info", "warning", "error")
LEVEL_ENV = "REPRO_LOG_LEVEL"


class _DynamicStderrHandler(logging.StreamHandler):
    """A StreamHandler that looks up ``sys.stderr`` on every emit."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value):  # pragma: no cover - StreamHandler API compat
        pass


def configure_logging(level: str | None = None, *, rank: int | None = None) -> None:
    """(Re)configure the ``repro`` logger tree.

    ``level`` defaults to ``$REPRO_LOG_LEVEL`` then ``"info"``.  With
    ``rank`` set (real-world workers) every record is prefixed
    ``[rank N]``.  Idempotent: the single handler is replaced, not
    stacked, so repeated ``main()`` calls in one process stay clean.
    """
    if level is None:
        level = os.environ.get(LEVEL_ENV, "info")
    level = level.lower()
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; known: {', '.join(LOG_LEVELS)}"
        )
    root = logging.getLogger("repro")
    for handler in [h for h in root.handlers if getattr(h, "_repro", False)]:
        root.removeHandler(handler)
    handler = _DynamicStderrHandler()
    handler._repro = True
    prefix = f"[rank {rank}] " if rank is not None else ""
    handler.setFormatter(logging.Formatter(f"{prefix}%(message)s"))
    root.addHandler(handler)
    root.setLevel(level.upper())
    root.propagate = False
