"""Ambient trace capture for harnesses that do not own the config.

``repro bench --trace-out`` must trace runs whose :class:`ProgramConfig`
is built deep inside an experiment function.  Rather than thread a flag
through every experiment signature, the runner opens a capture window;
:func:`~repro.runtime.program.run_program` checks :func:`active_capture`
and, when one is open, enables tracing on that run and deposits the
resulting :class:`~repro.net.trace.TraceLog` here.

Enabling tracing this way is covered by the ``obs-neutral`` invariant:
the captured run's virtual metrics are bit-identical to the uncaptured
run, so an experiment's artifact numbers do not change under capture.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.net.trace import TraceLog

__all__ = ["capture_traces", "active_capture", "CaptureWindow"]


class CaptureWindow:
    """Open capture state: collected ``(label, TraceLog)`` pairs."""

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self.traces: list[tuple[str, TraceLog]] = []

    def deposit(self, label: str, trace: TraceLog) -> None:
        self.traces.append((label, trace))


_active: CaptureWindow | None = None


def active_capture() -> CaptureWindow | None:
    return _active


@contextmanager
def capture_traces(capacity: int | None = None) -> Iterator[CaptureWindow]:
    """Capture the trace of every ``run_program`` call in the window."""
    global _active
    window = CaptureWindow(capacity=capacity)
    prev, _active = _active, window
    try:
        yield window
    finally:
        _active = prev
