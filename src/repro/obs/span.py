"""Hierarchical spans over a :class:`~repro.net.trace.TraceLog`.

A :class:`Tracer` is a per-rank handle that opens nested phase spans
(program → epoch → inspector / executor / lb-check / remap / checkpoint /
recovery / membership-poll) and records each as a
:class:`~repro.net.trace.TraceEvent` with ``span_id``/``parent_id``
identifiers and both the world's primary clock and the host wall clock.

Design constraints, both load-bearing:

* **Deterministic ids.**  Span ids are a *per-rank* local counter, so the
  (kind, nesting, id) structure of a trace is a pure function of the
  program — a global counter shared across rank threads would order by
  thread schedule and break the golden-trace fixture.
* **Neutrality.**  The tracer only *reads* the clock callback; it never
  charges time.  Opening a span with tracing disabled is a no-op
  (same generator object, no log writes), so traced and untraced runs
  execute identical virtual-time arithmetic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.net.trace import TraceEvent, TraceLog

__all__ = ["Tracer", "SPAN_KINDS"]

#: The span vocabulary.  Exporters and the structure-equality tests key on
#: these names; leaf comm/compute kinds stay outside this set.
SPAN_KINDS = (
    "program",
    "epoch",
    "inspector",
    "executor",
    "lb-check",
    "remap",
    "checkpoint",
    "recovery",
    "membership-poll",
    "admit",
    "job",
)


class Tracer:
    """Per-rank span emitter bound to one :class:`TraceLog`.

    ``clock_fn`` returns the world's primary clock (virtual seconds in the
    sim world, latched wall seconds in the real world); ``wall_fn``
    returns host seconds and defaults to :func:`time.perf_counter`.
    """

    __slots__ = ("_log", "_rank", "_clock", "_wall", "_next_id", "_stack")

    def __init__(
        self,
        log: TraceLog | None,
        rank: int,
        clock_fn: Callable[[], float],
        wall_fn: Callable[[], float] | None = None,
    ):
        self._log = log
        self._rank = rank
        self._clock = clock_fn
        self._wall = wall_fn if wall_fn is not None else time.perf_counter
        self._next_id = 0
        self._stack: list[int] = []

    @property
    def enabled(self) -> bool:
        return self._log is not None and self._log.enabled

    @property
    def current_span(self) -> int:
        """Id of the innermost open span, or -1 at top level."""
        return self._stack[-1] if self._stack else -1

    @contextmanager
    def span(self, kind: str, label: str = "") -> Iterator[None]:
        """Open a nested span; the event is recorded when it closes."""
        if not self.enabled:
            yield
            return
        span_id = self._next_id
        self._next_id += 1
        parent_id = self.current_span
        t0 = self._clock()
        w0 = self._wall()
        self._stack.append(span_id)
        try:
            yield
        finally:
            self._stack.pop()
            self._log.record(
                TraceEvent(
                    kind=kind,
                    rank=self._rank,
                    t_start=t0,
                    t_end=self._clock(),
                    label=label,
                    span_id=span_id,
                    parent_id=parent_id,
                    wall_start=w0,
                    wall_end=self._wall(),
                )
            )

    def instant(self, kind: str, label: str = "") -> None:
        """Record a zero-width span (a point annotation)."""
        if not self.enabled:
            return
        span_id = self._next_id
        self._next_id += 1
        t = self._clock()
        w = self._wall()
        self._log.record(
            TraceEvent(
                kind=kind,
                rank=self._rank,
                t_start=t,
                t_end=t,
                label=label,
                span_id=span_id,
                parent_id=self.current_span,
                wall_start=w,
                wall_end=w,
            )
        )
