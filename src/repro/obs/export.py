"""Trace exporters: Chrome trace-event JSON and a text phase breakdown.

The Chrome format (``{"traceEvents": [...]}``) loads directly in Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: one track per rank
(``pid`` = rank, named through ``process_name`` metadata events), nested
phase spans and leaf comm/compute events as complete (``"ph": "X"``)
slices.  Timestamps are microseconds; the timebase is either the world's
primary clock (``"clock"``, virtual seconds in the sim world) or the host
wall clock (``"wall"``, spans only — leaf events carry no wall interval).

Every event's full :class:`~repro.net.trace.TraceEvent` payload rides in
``args``, so an exported file round-trips through
:func:`load_chrome_trace` with no loss — ``repro trace summary|export``
work from the JSON alone.

Events are sorted by ``(rank, seq)`` before export: per-rank ``seq`` is
program order, so the byte output is deterministic even though the
in-memory append order across rank threads is not (the golden fixture
pins this).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ConfigurationError
from repro.net.trace import TraceEvent, TraceLog

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "phase_table",
]

TIMEBASES = ("clock", "wall")

#: Service-track events record rank -1; give them a stable track id after
#: every real rank (Chrome pids must be non-negative).
_SERVICE_PID = 1_000_000


def _track(rank: int) -> int:
    return _SERVICE_PID if rank < 0 else rank


def chrome_trace(
    trace: TraceLog,
    *,
    timebase: str = "clock",
    include_wall: bool = True,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render *trace* as a Chrome trace-event dict.

    ``timebase="wall"`` places spans on their host wall-clock interval and
    drops leaf events (which have no wall interval).  ``include_wall=False``
    omits host wall-clock fields from ``args`` — the golden fixture uses
    this to stay byte-deterministic across machines.
    """
    if timebase not in TIMEBASES:
        raise ConfigurationError(
            f"unknown timebase {timebase!r}; known: {', '.join(TIMEBASES)}"
        )
    events = sorted(trace.events(), key=lambda e: (_track(e.rank), e.seq))
    out: list[dict[str, Any]] = []
    for rank in sorted({_track(e.rank) for e in events}):
        name = "service" if rank == _SERVICE_PID else f"rank {rank}"
        out.append({
            "ph": "M", "pid": rank, "tid": 0, "name": "process_name",
            "args": {"name": name},
        })
        out.append({
            "ph": "M", "pid": rank, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": rank},
        })
    for e in events:
        if timebase == "wall":
            if e.wall_start < 0:
                continue
            t0, t1 = e.wall_start, e.wall_end
        else:
            t0, t1 = e.t_start, e.t_end
        args: dict[str, Any] = {
            "kind": e.kind,
            "rank": e.rank,
            "t_start": e.t_start,
            "t_end": e.t_end,
            "nbytes": e.nbytes,
            "peer": e.peer,
            "tag": e.tag,
            "label": e.label,
            "span_id": e.span_id,
            "parent_id": e.parent_id,
            "seq": e.seq,
        }
        if include_wall:
            args["wall_start"] = e.wall_start
            args["wall_end"] = e.wall_end
        out.append({
            "name": e.label or e.kind,
            "cat": e.kind,
            "ph": "X",
            "pid": _track(e.rank),
            "tid": 0,
            "ts": t0 * 1e6,
            "dur": max(t1 - t0, 0.0) * 1e6,
            "args": args,
        })
    doc: dict[str, Any] = {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "metadata": {
            "generator": "repro.obs",
            "timebase": timebase,
            "dropped_events": trace.dropped_events,
            **(metadata or {}),
        },
    }
    return doc


def write_chrome_trace(
    path: str,
    trace: TraceLog,
    *,
    timebase: str = "clock",
    include_wall: bool = True,
    metadata: dict[str, Any] | None = None,
) -> None:
    doc = chrome_trace(
        trace, timebase=timebase, include_wall=include_wall, metadata=metadata
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_chrome_trace(path: str) -> TraceLog:
    """Rebuild a :class:`TraceLog` from an exported Chrome trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ConfigurationError(
            f"{path}: not a Chrome trace-event file (no traceEvents key)"
        )
    log = TraceLog(enabled=True)
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        a = ev.get("args", {})
        if "kind" not in a:
            raise ConfigurationError(
                f"{path}: trace was not exported by repro (event args carry "
                f"no kind); only round-tripping repro exports is supported"
            )
        log.record(TraceEvent(
            kind=a["kind"],
            rank=int(a["rank"]),
            t_start=float(a["t_start"]),
            t_end=float(a["t_end"]),
            nbytes=int(a.get("nbytes", 0)),
            peer=int(a.get("peer", -1)),
            tag=int(a.get("tag", -1)),
            label=a.get("label", ""),
            span_id=int(a.get("span_id", -1)),
            parent_id=int(a.get("parent_id", -1)),
            wall_start=float(a.get("wall_start", -1.0)),
            wall_end=float(a.get("wall_end", -1.0)),
            seq=int(a.get("seq", -1)),
        ))
    return log


def phase_table(trace: TraceLog) -> str:
    """A text breakdown: per (rank, kind) event count, time, and bytes.

    Time is in the world's primary clock.  Span kinds and leaf kinds both
    appear; nested spans overlap their parents by construction, so the
    rows are *per-phase* totals, not a partition of the clock.
    """
    from repro.utils.tables import format_table

    totals: dict[tuple[int, str], list[float]] = {}
    for e in trace.events():
        key = (e.rank, e.kind)
        row = totals.setdefault(key, [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += e.t_end - e.t_start
        row[2] += e.nbytes
    rows = [
        ["service" if rank < 0 else rank, kind, int(c), t, int(b)]
        for (rank, kind), (c, t, b) in sorted(
            totals.items(), key=lambda kv: (_track(kv[0][0]), kv[0][1])
        )
    ]
    table = format_table(
        ["rank", "phase", "events", "time", "bytes"],
        rows,
        title="Per-rank phase breakdown",
        float_fmt="{:.6f}",
    )
    dropped = trace.dropped_events
    if dropped:
        table += f"\n\n(ring buffer dropped {dropped} event(s))"
    return table
