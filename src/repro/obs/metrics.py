"""Typed per-rank metrics with one snapshot-and-merge path.

Each rank owns a :class:`MetricsRegistry` (single-threaded, no locks: a
rank only ever touches its own registry).  At the end of a run every rank
snapshots its registry into plain dicts; :func:`merge_snapshots` folds
them into one cluster-wide view with fixed per-type rules:

* **counter** — summed across ranks (messages, bytes, remap counts, ...).
* **gauge** — maximum across ranks (peak mailbox depth, ...).
* **histogram** — ``count``/``total``/``min``/``max`` merged element-wise
  (recv-wait time, queue waits, ...).

Snapshots are plain JSON-able dicts so they cross the real world's
process boundary through the existing pickle path unchanged.

Like tracing, metrics never read or advance a rank clock: the values
*recorded* may be virtual durations, but recording them is free in
virtual time, so enabling metrics is deterministically neutral.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Counters, gauges, and histograms for one rank."""

    __slots__ = ("_counters", "_gauges", "_hists")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict[str, float]] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add *value* to counter *name* (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if larger (high-water mark)."""
        prev = self._gauges.get(name)
        if prev is None or value > prev:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram *name*."""
        h = self._hists.get(name)
        if h is None:
            self._hists[name] = {
                "count": 1, "total": value, "min": value, "max": value,
            }
        else:
            h["count"] += 1
            h["total"] += value
            if value < h["min"]:
                h["min"] = value
            if value > h["max"]:
                h["max"] = value

    def snapshot(self) -> dict[str, Any]:
        """A deep-copied, picklable view of this registry."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {k: dict(v) for k, v in self._hists.items()},
        }


def _empty() -> dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[dict[str, Any] | None]) -> dict[str, Any]:
    """Fold per-rank snapshots into one cluster-wide snapshot.

    ``None`` entries (ranks without a registry, e.g. never-joined standby
    ranks) are skipped.  Merging is order-independent for counters and
    gauges; histogram merge is order-independent too, so the result is
    deterministic whatever rank order the caller iterates in.
    """
    merged = _empty()
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            prev = merged["gauges"].get(name)
            if prev is None or value > prev:
                merged["gauges"][name] = value
        for name, h in snap.get("histograms", {}).items():
            m = merged["histograms"].get(name)
            if m is None:
                merged["histograms"][name] = dict(h)
            else:
                m["count"] += h["count"]
                m["total"] += h["total"]
                if h["min"] < m["min"]:
                    m["min"] = h["min"]
                if h["max"] > m["max"]:
                    m["max"] = h["max"]
    return merged
