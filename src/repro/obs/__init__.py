"""repro.obs — the unified observability layer.

One package for the three instruments every subsystem shares:

* :class:`Tracer` — hierarchical phase spans recorded into the same
  :class:`~repro.net.trace.TraceLog` as the flat comm/compute events.
* :class:`MetricsRegistry` — typed per-rank counters/gauges/histograms
  with one :func:`merge_snapshots` path into the run reports.
* Exporters — Chrome trace-event JSON (Perfetto-loadable) and a text
  phase table, plus `repro trace export|summary` round-tripping.

The standing contract: observability is *deterministically neutral*.
Nothing in this package reads or advances a rank clock; enabling it
leaves virtual clocks, final values, and collective counters
bit-identical (pinned by the ``obs-neutral`` fuzzer invariant).
"""

from repro.obs.capture import active_capture, capture_traces
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    phase_table,
    write_chrome_trace,
)
from repro.obs.logconf import configure_logging
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.span import SPAN_KINDS, Tracer

__all__ = [
    "Tracer",
    "SPAN_KINDS",
    "MetricsRegistry",
    "merge_snapshots",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "phase_table",
    "configure_logging",
    "capture_traces",
    "active_capture",
]
