"""Multi-tenant job service over one shared adaptive cluster.

The paper's premise is that capability changes because *competing jobs
come and go* (Sec. 1, 3.5) — this package closes that loop.  A stream of
:class:`JobSpec` programs is queued (:class:`JobQueue`), admitted under a
pluggable policy (:mod:`~repro.serve.scheduler`: FIFO, seeded random
permutation, shortest-job-first), gang-placed on a tenancy-limited
subset of one shared :class:`~repro.net.ClusterSpec`, and co-scheduled
in virtual time by :class:`ServiceSession` — each running job's measured
per-rank compute becomes the other jobs' competing load through
:class:`~repro.net.loadmodel.ServiceLoad`, so adaptive load balancing
reacts to real co-tenants instead of scripted traces.
:class:`ServiceReport` summarizes the service view: throughput, the
per-job makespan distribution (p50/p99), Jain fairness, and queue waits.

Everything is virtual-time deterministic, so service metrics inherit the
repo's backend differential contract (reference == vectorized,
bit-identical).  Entry points: ``repro serve`` (CLI) and the
``scale-service`` experiment family.
"""

from repro.serve.job import (
    JOB_SCHEMA_VERSION,
    STREAM_SHAPES,
    JobQueue,
    JobSpec,
    generate_stream,
)
from repro.serve.scheduler import (
    ADMISSION_POLICIES,
    admission_order,
    place_job,
)
from repro.serve.session import JobRecord, ServiceReport, ServiceSession

__all__ = [
    "ADMISSION_POLICIES",
    "JOB_SCHEMA_VERSION",
    "STREAM_SHAPES",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ServiceReport",
    "ServiceSession",
    "admission_order",
    "generate_stream",
    "place_job",
]
