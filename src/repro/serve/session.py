"""The service session: co-schedule a job stream over one shared cluster.

The event loop runs in virtual service time.  Jobs are offered in
admission order (strict head-of-line, :mod:`repro.serve.scheduler`); an
admitted job is gang-placed on a tenancy-limited rank subset and
simulated to completion with :func:`~repro.runtime.run_program` over
``ClusterSpec.subset(ranks)``.  The coupling that makes tenants *feel*
each other is causal and one-directional: when a job is admitted at
service time ``t``, every already-admitted job's measured per-rank busy
interval is projected onto the new job's processors as a
:class:`~repro.net.loadmodel.ServiceLoad` — one competing process per
co-tenant job per rank, clipped and shifted to the new job's local
clock.  The new job's adaptive load balancer then reacts to real
co-tenants through the ordinary ``capability_ratios`` machinery, which
is the loop the paper scripts by hand with static load traces (Sec. 3.5).
Jobs admitted *later* do not retroactively slow an earlier job — the
approximation that keeps admission decisions causal and the whole run
deterministic.

All quantities are virtual, so every service metric inherits the
backend differential contract: reference and vectorized runs produce
bit-identical :class:`ServiceReport` numbers.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.net.cluster import ClusterSpec
from repro.net.loadmodel import ServiceLoad
from repro.net.trace import TraceEvent, TraceLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.job import JobQueue, JobSpec
from repro.serve.scheduler import ADMISSION_POLICIES, admission_order, place_job
from repro.utils.tables import format_table

__all__ = ["JobRecord", "ServiceReport", "ServiceSession"]


@dataclass(frozen=True)
class JobRecord:
    """One job's service-time outcome."""

    job: JobSpec
    admit_index: int
    ranks: tuple[int, ...]
    admitted: float
    finished: float
    #: The job's own execution time (virtual, admission -> completion).
    exec_makespan: float
    #: Sum of final vertex values — a function of (graph, y0, iterations)
    #: only, so it is invariant across policies, placements, and
    #: backends; the conservation tests key on it.
    checksum: float
    #: All jobs are submitted at service time 0 (batch stream).
    submitted: float = 0.0

    @property
    def queue_wait(self) -> float:
        return self.admitted - self.submitted

    @property
    def makespan(self) -> float:
        """The job's end-to-end makespan: submission to completion.

        Includes queue wait — the number a user of the service sees, and
        the distribution the p99 / fairness metrics summarize.
        """
        return self.finished - self.submitted


def _nearest_rank(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile (exact, no interpolation): the smallest
    value whose cumulative rank reaches *q* percent."""
    idx = max(int(math.ceil(q / 100.0 * len(sorted_vals))) - 1, 0)
    return sorted_vals[idx]


@dataclass
class ServiceReport:
    """Service-level outcome of one :class:`ServiceSession` run."""

    policy: str
    seed: int
    max_tenants: int
    backend: str | None
    cluster_size: int
    records: list[JobRecord] = field(default_factory=list)
    #: Service-time span log (admit / job spans on the service track,
    #: per-rank job occupancy): populated when the session traces.  Kept
    #: out of :meth:`metrics` / :meth:`to_dict` — the differential
    #: contract surface is unchanged by tracing.
    trace: "TraceLog | None" = None

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def service_makespan(self) -> float:
        """Virtual time at which the last job completes."""
        return max((r.finished for r in self.records), default=0.0)

    @property
    def throughput(self) -> float:
        """Jobs completed per virtual second of service time."""
        span = self.service_makespan
        return self.n_jobs / span if span > 0 else 0.0

    def _makespans(self) -> list[float]:
        return sorted(r.makespan for r in self.records)

    def p50_makespan(self) -> float:
        return _nearest_rank(self._makespans(), 50.0)

    def p99_makespan(self) -> float:
        return _nearest_rank(self._makespans(), 99.0)

    def mean_queue_wait(self) -> float:
        return float(np.mean([r.queue_wait for r in self.records]))

    def p99_queue_wait(self) -> float:
        return _nearest_rank(sorted(r.queue_wait for r in self.records), 99.0)

    def jain_fairness(self) -> float:
        """Jain's index over per-job makespans: 1 = perfectly even,
        1/n = one job absorbed all the waiting."""
        x = np.array([r.makespan for r in self.records], dtype=np.float64)
        denom = self.n_jobs * float(np.sum(x * x))
        if denom == 0.0:
            return 1.0
        return float(np.sum(x)) ** 2 / denom

    def metrics(self) -> dict[str, float]:
        """The flat metric vector (the differential-contract surface)."""
        return {
            "n_jobs": float(self.n_jobs),
            "service_makespan": self.service_makespan,
            "throughput": self.throughput,
            "p50_makespan": self.p50_makespan(),
            "p99_makespan": self.p99_makespan(),
            "jain_fairness": self.jain_fairness(),
            "mean_queue_wait": self.mean_queue_wait(),
            "p99_queue_wait": self.p99_queue_wait(),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "seed": self.seed,
            "max_tenants": self.max_tenants,
            "backend": self.backend,
            "cluster_size": self.cluster_size,
            "metrics": self.metrics(),
            "jobs": [
                {
                    "job_id": r.job.job_id,
                    "ranks": list(r.ranks),
                    "admitted": r.admitted,
                    "finished": r.finished,
                    "queue_wait": r.queue_wait,
                    "makespan": r.makespan,
                    "exec_makespan": r.exec_makespan,
                    "checksum": r.checksum,
                }
                for r in self.records
            ],
        }

    def to_text(self) -> str:
        rows = [
            [
                r.job.job_id,
                f"{len(r.ranks)}@{','.join(map(str, r.ranks))}",
                r.admitted,
                r.finished,
                r.queue_wait,
                r.makespan,
            ]
            for r in sorted(self.records, key=lambda r: r.admitted)
        ]
        table = format_table(
            ["job", "placement", "admitted", "finished", "wait", "makespan"],
            rows,
            title=(
                f"service: {self.n_jobs} jobs over {self.cluster_size} "
                f"ranks (policy={self.policy}, max_tenants={self.max_tenants})"
            ),
            float_fmt="{:.4f}",
        )
        m = self.metrics()
        summary = (
            f"throughput {m['throughput']:.4f} jobs/s over "
            f"{m['service_makespan']:.4f} s; makespan p50 "
            f"{m['p50_makespan']:.4f} s, p99 {m['p99_makespan']:.4f} s; "
            f"Jain fairness {m['jain_fairness']:.4f}; queue wait mean "
            f"{m['mean_queue_wait']:.4f} s, p99 {m['p99_queue_wait']:.4f} s"
        )
        return table + "\n\n" + summary


class ServiceSession:
    """Run a :class:`JobQueue` over one shared :class:`ClusterSpec`."""

    def __init__(
        self,
        cluster: ClusterSpec,
        queue: JobQueue,
        *,
        policy: str = "fifo",
        seed: int = 0,
        max_tenants: int = 1,
        backend: str | None = None,
        trace: bool = False,
        trace_capacity: int | None = None,
    ):
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; known: "
                f"{', '.join(ADMISSION_POLICIES)}"
            )
        if max_tenants < 1:
            raise ConfigurationError(
                f"max_tenants must be >= 1, got {max_tenants}"
            )
        if queue.max_width() > cluster.size:
            widest = max(queue.jobs, key=lambda j: j.ranks)
            raise ConfigurationError(
                f"job {widest.job_id!r} requests {widest.ranks} ranks but "
                f"the shared cluster has only {cluster.size}; no admission "
                f"order can place it"
            )
        if cluster.membership is not None:
            raise ConfigurationError(
                "the service owns the shared pool and carves static "
                "subsets; a cluster-level membership trace is not "
                "supported (attach churn per job instead)"
            )
        self._cluster = cluster
        self._queue = queue
        self._policy = policy
        self._seed = int(seed)
        self._max_tenants = int(max_tenants)
        self._backend = backend
        #: Service-time observability: spans land on the service track
        #: (rank -1) plus one occupancy span per placed rank.  Everything
        #: recorded is a function of virtual quantities only, so tracing
        #: never perturbs the report.
        self._trace = TraceLog(enabled=trace, capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self._next_span = 0
        #: Per physical rank: the (start, end) service-time intervals
        #: during which an admitted job keeps the machine busy.
        self._busy: list[list[tuple[float, float]]] = [
            [] for _ in range(cluster.size)
        ]

    def _record_span(
        self,
        kind: str,
        t0: float,
        t1: float,
        *,
        rank: int = -1,
        label: str = "",
        parent: int = -1,
    ) -> int:
        """One service-time span; returns its id for child nesting."""
        sid = self._next_span
        self._next_span += 1
        self._trace.record(
            TraceEvent(
                kind, rank, t0, t1, label=label, span_id=sid, parent_id=parent
            )
        )
        return sid

    def _admit(
        self, job: JobSpec, placement: tuple[int, ...], t: float, index: int
    ) -> JobRecord:
        from repro.runtime.program import run_program

        sub = self._cluster.subset(placement)
        loads = {}
        for local, rank in enumerate(placement):
            intervals = [
                (start, end, 1.0)
                for start, end in self._busy[rank]
                if end > t
            ]
            if intervals:
                loads[local] = ServiceLoad(intervals, origin=t)
        if loads:
            sub = sub.with_loads(loads)
        graph = job.build_graph()
        report = run_program(
            graph,
            sub,
            job.build_config(backend=self._backend),
            y0=job.build_y0(graph),
        )
        for local, rank in enumerate(placement):
            end = t + report.clocks[local]
            if end > t:
                self._busy[rank].append((t, end))
        self.metrics.count("serve.jobs_admitted")
        self.metrics.observe("serve.queue_wait", t - 0.0)
        self.metrics.observe("serve.exec_makespan", report.makespan)
        if self._trace.enabled:
            aid = self._record_span(
                "admit",
                t,
                t,
                label=f"{job.job_id}@{','.join(map(str, placement))}",
            )
            jid = self._record_span(
                "job", t, t + report.makespan, label=job.job_id, parent=aid
            )
            for local, rank in enumerate(placement):
                self._record_span(
                    "job",
                    t,
                    t + report.clocks[local],
                    rank=rank,
                    label=job.job_id,
                    parent=jid,
                )
        return JobRecord(
            job=job,
            admit_index=index,
            ranks=placement,
            admitted=t,
            finished=t + report.makespan,
            exec_makespan=report.makespan,
            checksum=float(report.values.sum()),
        )

    def run(self) -> ServiceReport:
        pending = deque(
            admission_order(self._queue.jobs, self._policy, seed=self._seed)
        )
        tenancy = [0] * self._cluster.size
        heap: list[tuple[float, int, JobRecord]] = []
        records: list[JobRecord] = []
        t = 0.0
        index = 0
        while pending or heap:
            # Head-of-line admission: stop at the first job that won't fit.
            while pending:
                placement = place_job(pending[0], tenancy, self._max_tenants)
                if placement is None:
                    break
                job = pending.popleft()
                record = self._admit(job, placement, t, index)
                for rank in placement:
                    tenancy[rank] += 1
                heapq.heappush(heap, (record.finished, index, record))
                records.append(record)
                index += 1
            if not heap:
                # Unreachable given the width validation in __init__, but
                # a silent infinite loop would be worse than a loud error.
                raise ConfigurationError(
                    f"admission deadlock: {len(pending)} job(s) pending "
                    f"with nothing running"
                )
            # Advance to the earliest completion; release coincident
            # finishers together so admission sees all freed slots at once.
            finish, _, record = heapq.heappop(heap)
            t = finish
            for rank in record.ranks:
                tenancy[rank] -= 1
            while heap and heap[0][0] == t:
                _, _, other = heapq.heappop(heap)
                for rank in other.ranks:
                    tenancy[rank] -= 1
        return ServiceReport(
            policy=self._policy,
            seed=self._seed,
            max_tenants=self._max_tenants,
            backend=self._backend,
            cluster_size=self._cluster.size,
            records=records,
            trace=self._trace if self._trace.enabled else None,
        )
