"""Admission ordering and placement for the job service.

Admission is strict head-of-line: the scheduler offers jobs in *admission
order* and stops at the first one that does not fit — no backfill.  That
discipline is deliberate: it exposes the classic worst case of cyclic /
FIFO orderings (a wide job at the head idles the remainder ranks while
narrow jobs queue behind it), which the seeded random-permutation policy
exists to fix — the scheduling analogue of Lee & Wright's "random
permutations fix a worst case for cyclic coordinate descent" (PAPERS.md).

Placement carves the shared pool by *tenancy*: each physical rank hosts
at most ``max_tenants`` concurrent jobs.  ``max_tenants=1`` is pure space
sharing (dedicated ranks); higher values time-share ranks, and the
co-tenant compute becomes competing load through
:class:`~repro.net.loadmodel.ServiceLoad`.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.serve.job import JobSpec
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ADMISSION_POLICIES", "admission_order", "place_job"]

#: Built-in admission policies: submission order, seeded random
#: permutation, and shortest-job-first (by :meth:`JobSpec.work_estimate`).
ADMISSION_POLICIES = ("fifo", "random", "sjf")


def admission_order(
    jobs: Sequence[JobSpec],
    policy: str,
    *,
    seed: SeedLike = 0,
) -> list[JobSpec]:
    """The order in which the service offers jobs for admission.

    Higher ``priority`` always admits first; *within* a priority class
    the policy decides: ``fifo`` keeps submission order, ``random``
    applies one seeded permutation, ``sjf`` sorts by ascending work
    estimate (ties broken by submission order, so the order is total and
    deterministic).
    """
    jobs = list(jobs)
    if policy == "fifo":
        order = list(range(len(jobs)))
    elif policy == "random":
        order = [int(i) for i in as_generator(seed).permutation(len(jobs))]
    elif policy == "sjf":
        order = sorted(
            range(len(jobs)), key=lambda i: (jobs[i].work_estimate(), i)
        )
    else:
        raise ConfigurationError(
            f"unknown admission policy {policy!r}; known: "
            f"{', '.join(ADMISSION_POLICIES)}"
        )
    # Stable: policy order survives within each priority class.
    order.sort(key=lambda i: -jobs[i].priority)
    return [jobs[i] for i in order]


def place_job(
    job: JobSpec,
    tenancy: Sequence[int],
    max_tenants: int,
) -> tuple[int, ...] | None:
    """Pick ``job.ranks`` physical ranks, or ``None`` if the job won't fit.

    Least-loaded ranks first (ties broken by rank index), and every
    chosen rank must have a free tenant slot — a job is gang-placed or
    not at all.  Deterministic given the tenancy vector.
    """
    if job.ranks > len(tenancy):
        raise ConfigurationError(
            f"job {job.job_id!r} requests {job.ranks} ranks but the "
            f"shared cluster has only {len(tenancy)}"
        )
    candidates = sorted(range(len(tenancy)), key=lambda r: (tenancy[r], r))
    chosen = candidates[: job.ranks]
    if tenancy[chosen[-1]] >= max_tenants:
        return None
    return tuple(sorted(chosen))
