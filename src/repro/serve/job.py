"""Job specifications and queues for the multi-tenant service.

A :class:`JobSpec` is a *complete, serializable* description of one
submitted program: the graph (a seeded :func:`~repro.graph.paper_mesh`),
the iteration count, the schedule strategy, how many processors the job
wants, and a priority class.  Like :class:`repro.fuzz.Scenario` it is
plain data on purpose — specs round-trip through JSON, so a job stream
is a JSONL file (one spec per line) that diffs cleanly and replays
exactly.

:func:`generate_stream` composes the canonical seeded streams the
``scale-service`` experiments use: ``uniform`` (iid widths and sizes),
``descending`` (widths and work both descending — the adversarial
head-of-line worst case for FIFO admission), and ``mixed``
(alternating wide-long / narrow-short jobs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph
    from repro.runtime.program import ProgramConfig

__all__ = [
    "JOB_SCHEMA_VERSION",
    "STREAM_SHAPES",
    "JobQueue",
    "JobSpec",
    "generate_stream",
]

JOB_SCHEMA_VERSION = 1

#: Canonical seeded job-stream shapes (:func:`generate_stream`).
STREAM_SHAPES = ("uniform", "descending", "mixed")

_STRATEGIES = ("simple", "sort1", "sort2")
_LB_STYLES = ("off", "centralized", "distributed")


@dataclass(frozen=True)
class JobSpec:
    """One submitted program, fully determined and JSON-serializable."""

    job_id: str
    vertices: int
    iterations: int
    #: How many processors the job requests (its gang width).
    ranks: int
    #: Priority class: higher admits first; ties follow the admission
    #: policy's order.  Default 0 = everything in one class.
    priority: int = 0
    seed: int = 1995
    strategy: str = "sort2"
    load_balance: str = "centralized"
    check_interval: int = 4

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be a non-empty string")
        if self.vertices < 16:
            raise ConfigurationError(
                f"job {self.job_id!r} needs >= 16 vertices for a "
                f"meaningful mesh, got {self.vertices}"
            )
        if self.iterations < 1:
            raise ConfigurationError(
                f"job {self.job_id!r} needs >= 1 iteration, got "
                f"{self.iterations}"
            )
        if self.ranks < 1:
            raise ConfigurationError(
                f"job {self.job_id!r} must request >= 1 rank, got "
                f"{self.ranks}"
            )
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"job {self.job_id!r}: unknown schedule strategy "
                f"{self.strategy!r}; known: {', '.join(_STRATEGIES)}"
            )
        if self.load_balance not in _LB_STYLES:
            raise ConfigurationError(
                f"job {self.job_id!r}: unknown load-balance style "
                f"{self.load_balance!r}; known: {', '.join(_LB_STYLES)}"
            )
        if self.check_interval < 1:
            raise ConfigurationError(
                f"job {self.job_id!r}: check_interval must be >= 1, got "
                f"{self.check_interval}"
            )

    def work_estimate(self) -> float:
        """Total work in vertex-sweeps — the shortest-job-first key."""
        return float(self.vertices) * float(self.iterations)

    # ------------------------------------------------------------------ #
    # building the runnable pieces
    # ------------------------------------------------------------------ #

    def build_graph(self) -> "CSRGraph":
        return _mesh(self.vertices, self.seed)

    def build_y0(self, graph: "CSRGraph") -> np.ndarray:
        return np.random.default_rng(self.seed).uniform(
            0, 100, graph.num_vertices
        )

    def build_config(self, *, backend: str | None = None) -> "ProgramConfig":
        from repro.runtime import LoadBalanceConfig, ProgramConfig

        return ProgramConfig(
            iterations=self.iterations,
            strategy=self.strategy,
            backend=backend,
            # Admission cannot know the co-tenant load in advance — the
            # paper's adaptive setup: decompose as if equal, let Phase D
            # react to the measured capability ratios.
            initial_capabilities="equal",
            load_balance=(
                None
                if self.load_balance == "off"
                else LoadBalanceConfig(
                    check_interval=self.check_interval,
                    style=self.load_balance,
                )
            ),
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": JOB_SCHEMA_VERSION,
            "job_id": self.job_id,
            "vertices": self.vertices,
            "iterations": self.iterations,
            "ranks": self.ranks,
            "priority": self.priority,
            "seed": self.seed,
            "strategy": self.strategy,
            "load_balance": self.load_balance,
            "check_interval": self.check_interval,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a job spec must be a JSON object, got {type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("schema_version", JOB_SCHEMA_VERSION)
        if version != JOB_SCHEMA_VERSION:
            raise ConfigurationError(
                f"job schema_version {version} is not supported (this "
                f"build reads version {JOB_SCHEMA_VERSION})"
            )
        known = {
            "job_id", "vertices", "iterations", "ranks", "priority",
            "seed", "strategy", "load_balance", "check_interval",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"job spec has unknown field(s) {sorted(unknown)}; known "
                f"fields: {sorted(known | {'schema_version'})}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"malformed job spec: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"job spec is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


@lru_cache(maxsize=64)
def _mesh(vertices: int, seed: int):
    from repro.graph import paper_mesh

    return paper_mesh(vertices, seed=seed)


class JobQueue:
    """An ordered, immutable batch of submitted jobs (unique ids).

    Submission order is the queue order — the FIFO policy's admission
    order.  All jobs are submitted at service time 0 (a batch stream);
    queue-wait is therefore simply each job's admission time.
    """

    def __init__(self, jobs: Sequence[JobSpec]):
        jobs = tuple(jobs)
        if not jobs:
            raise ConfigurationError("a job queue needs at least one job")
        seen: set[str] = set()
        for job in jobs:
            if job.job_id in seen:
                raise ConfigurationError(
                    f"duplicate job_id {job.job_id!r} in the stream; ids "
                    f"must be unique (they key the service report)"
                )
            seen.add(job.job_id)
        self.jobs = jobs

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def max_width(self) -> int:
        return max(job.ranks for job in self.jobs)

    def total_work(self) -> float:
        return sum(job.work_estimate() for job in self.jobs)

    def to_jsonl(self) -> str:
        return "\n".join(job.to_json() for job in self.jobs) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "JobQueue":
        jobs = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                jobs.append(JobSpec.from_json(line))
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"job stream line {lineno}: {exc}"
                ) from None
        if not jobs:
            raise ConfigurationError(
                "job stream contains no jobs (blank lines and '#' comments "
                "are skipped); expected one JSON job spec per line"
            )
        return cls(jobs)

    def __repr__(self) -> str:
        return f"JobQueue({len(self.jobs)} jobs, max width {self.max_width()})"


def generate_stream(
    shape: str,
    n_jobs: int,
    *,
    max_ranks: int,
    seed: SeedLike = 1995,
) -> JobQueue:
    """The canonical seeded job streams (deterministic per seed).

    ``descending`` submits jobs in strictly non-increasing width *and*
    work order: the widest, longest job arrives first.  Under FIFO
    admission with head-of-line blocking that is the classic worst case —
    the remainder ranks a wide job cannot use sit idle while every
    narrow job queues behind it.  A seeded random permutation (or SJF)
    lets the narrow jobs backfill, which is exactly the Lee & Wright
    "random permutations fix a worst case" effect the admission policies
    exist to demonstrate.
    """
    if shape not in STREAM_SHAPES:
        raise ConfigurationError(
            f"unknown stream shape {shape!r}; known: "
            f"{', '.join(STREAM_SHAPES)}"
        )
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    if max_ranks < 1:
        raise ConfigurationError(f"max_ranks must be >= 1, got {max_ranks}")
    rng = as_generator(seed)
    jobs: list[JobSpec] = []
    for i in range(n_jobs):
        job_seed = int(rng.integers(0, 2**31 - 1))
        if shape == "descending":
            # A few wide, long jobs head the stream; the many narrow,
            # short jobs behind them carry most of the aggregate work.
            # Widths are chosen so consecutive wide jobs cannot co-run
            # (width0 + width1 > max_ranks): FIFO's head-of-line blocking
            # then idles the remainder ranks for the whole head job while
            # every narrow job queues.
            n_wide = max(2, n_jobs // 6)
            if i < n_wide:
                width = max(2, (5 * max_ranks) // 8 - i)
                vertices = max(160, 320 - 32 * i)
                iterations = 4
            else:
                frac = (n_jobs - 1 - i) / max(n_jobs - 1 - n_wide, 1)
                width = 1
                vertices = 96 + 8 * int(round(frac * 4))
                iterations = 4
        elif shape == "uniform":
            width = int(rng.integers(1, max_ranks + 1))
            vertices = 8 * int(rng.integers(8, 33))
            iterations = int(rng.integers(3, 7))
        else:  # mixed: alternating wide-long / narrow-short
            if i % 2 == 0:
                width = max(2, max_ranks // 2 + 1)
                vertices = 8 * int(rng.integers(24, 41))
                iterations = int(rng.integers(5, 8))
            else:
                width = 1
                vertices = 8 * int(rng.integers(8, 13))
                iterations = int(rng.integers(2, 4))
        jobs.append(
            JobSpec(
                job_id=f"{shape}-{i:03d}",
                vertices=vertices,
                iterations=iterations,
                ranks=min(width, max_ranks),
                seed=job_seed,
            )
        )
    return JobQueue(jobs)
