"""Unstructured-mesh smoothing: the paper's end-to-end application.

Thin convenience wrapper around :func:`repro.runtime.run_program` for the
Fig. 8 neighbor-averaging loop on a mesh, with sequential verification and
the efficiency bookkeeping Tables 4/5 report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mesh import Mesh
from repro.net.cluster import ClusterSpec
from repro.runtime.kernels import run_sequential
from repro.runtime.program import ProgramConfig, ProgramReport, run_program

__all__ = ["SmoothingResult", "smooth_mesh", "verify_against_sequential"]


@dataclass
class SmoothingResult:
    """Outcome of a parallel smoothing run."""

    report: ProgramReport
    values: np.ndarray

    @property
    def makespan(self) -> float:
        return self.report.makespan


def smooth_mesh(
    mesh_or_graph: Mesh | CSRGraph,
    cluster: ClusterSpec,
    *,
    iterations: int = 100,
    config: ProgramConfig | None = None,
    y0: np.ndarray | None = None,
) -> SmoothingResult:
    """Run *iterations* of neighbor averaging over *cluster*.

    Accepts a :class:`Mesh` (its induced graph is used) or a raw graph.
    """
    graph = mesh_or_graph.graph if isinstance(mesh_or_graph, Mesh) else mesh_or_graph
    if config is None:
        config = ProgramConfig(iterations=iterations)
    elif config.iterations != iterations and y0 is None:
        # Explicit config wins; the iterations kwarg is only a convenience.
        iterations = config.iterations
    report = run_program(graph, cluster, config, y0=y0)
    return SmoothingResult(report=report, values=report.values)


def verify_against_sequential(
    graph: CSRGraph,
    result: SmoothingResult,
    y0: np.ndarray | None = None,
    *,
    atol: float = 1e-9,
) -> float:
    """Max abs deviation of the parallel result from the sequential oracle.

    Raises :class:`AssertionError` if above *atol* — used by examples to
    demonstrate correctness, and by integration tests.
    """
    if y0 is None:
        y0 = np.arange(graph.num_vertices, dtype=np.float64)
    oracle = run_sequential(graph, y0, result.report.config.iterations)
    err = float(np.abs(result.values - oracle).max())
    assert err <= atol, f"parallel result deviates from oracle by {err}"
    return err
