"""Adaptive *applications*: the computational structure itself adapts.

Paper footnote 1: "For these classes of applications the computational
structure adapts after every few iterations" — e.g. adaptive mesh
refinement concentrating work where the solution is interesting.  Phase B
must then re-run after every adaptation even in a *static* environment.

We model refinement as per-vertex computational weights that follow a
moving hotspot across the mesh (a shock front sweeping the domain).  The
driver repartitions with **weighted** intervals
(:func:`repro.partition.weighted.partition_weighted_list`) whenever the
weights change, then hands the remap to
:meth:`repro.runtime.adaptive.AdaptiveSession.remap_to` — the same
redistribute-and-rebuild path the load-balancing strategies use, driven
here by adaptation instead of a profitability check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.net.cluster import ClusterSpec
from repro.net.spmd import run_spmd
from repro.partition.ordering import OrderingMethod
from repro.partition.rcb import RCBOrdering
from repro.partition.weighted import partition_weighted_list
from repro.runtime.adaptive import AdaptiveSession
from repro.runtime.executor import gather
from repro.runtime.kernels import KernelCostModel

__all__ = ["MovingHotspot", "AdaptiveRunReport", "run_adaptive_application"]


@dataclass(frozen=True)
class MovingHotspot:
    """A weight field: 1 + amplitude * gaussian bump sweeping the domain.

    ``weights(phase)`` returns the per-vertex computational weights for the
    given adaptation phase; the bump's center moves linearly from the left
    edge of the domain to the right across ``n_phases``.
    """

    graph: CSRGraph
    amplitude: float = 9.0
    radius_fraction: float = 0.15
    n_phases: int = 8

    def __post_init__(self) -> None:
        if self.graph.coords is None:
            raise ConfigurationError("MovingHotspot needs vertex coordinates")
        if self.amplitude < 0 or not (0 < self.radius_fraction <= 1):
            raise ConfigurationError("bad hotspot parameters")
        if self.n_phases < 1:
            raise ConfigurationError("n_phases must be >= 1")

    def weights(self, phase: int) -> np.ndarray:
        coords = self.graph.coords
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        frac = (phase % self.n_phases) / max(self.n_phases - 1, 1)
        center = lo + span * np.array([frac] + [0.5] * (coords.shape[1] - 1))
        radius = self.radius_fraction * float(span.max())
        d2 = np.sum((coords - center) ** 2, axis=1)
        return 1.0 + self.amplitude * np.exp(-d2 / (2.0 * radius**2))


@dataclass
class AdaptiveRunReport:
    """Outcome of one adaptive-application run."""

    values: np.ndarray
    makespan: float
    num_repartitions: int
    repartition_time: float  # max over ranks, total virtual seconds
    clocks: list[float]


def run_adaptive_application(
    graph: CSRGraph,
    cluster: ClusterSpec,
    *,
    iterations: int = 60,
    adapt_interval: int = 10,
    hotspot: MovingHotspot | None = None,
    repartition: bool = True,
    ordering: OrderingMethod | None = None,
    kernel_cost: KernelCostModel = KernelCostModel(),
    y0: np.ndarray | None = None,
) -> AdaptiveRunReport:
    """Run the Fig. 8 loop while the per-vertex work adapts.

    Every ``adapt_interval`` iterations the weight field advances one phase;
    with ``repartition=True`` the data is re-split into weighted intervals
    (redistribution + inspector rebuild), otherwise the initial partition is
    kept — the baseline showing why adaptive applications need phase D even
    on dedicated machines.
    """
    n = graph.num_vertices
    if iterations < 1 or adapt_interval < 1:
        raise ConfigurationError("iterations and adapt_interval must be >= 1")
    if hotspot is None:
        hotspot = MovingHotspot(graph)
    if y0 is None:
        y0 = np.arange(n, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    if y0.shape != (n,):
        raise ConfigurationError(f"y0 has shape {y0.shape}, expected ({n},)")
    if ordering is None:
        ordering = RCBOrdering()
    perm = ordering(graph)
    gperm = graph.permute(perm)
    hotspot_p = MovingHotspot(
        gperm, hotspot.amplitude, hotspot.radius_fraction, hotspot.n_phases
    )
    y_init = np.empty(n)
    y_init[perm] = y0
    caps = cluster.speeds

    # A refined vertex does proportionally more work on *all* its terms
    # (more sub-elements -> more references and more updates), so the cost
    # weight scales the full per-vertex sweep cost.
    base_cost = (
        kernel_cost.sec_per_reference * gperm.degrees.astype(np.float64)
        + kernel_cost.sec_per_vertex
    )

    def rank_main(ctx: Any) -> dict[str, Any]:
        phase = 0
        cost_w = base_cost * hotspot_p.weights(phase)
        session = AdaptiveSession(
            ctx,
            gperm,
            partition_weighted_list(cost_w, caps),
            total_iterations=iterations,
        )
        lo, hi = session.interval()
        local = y_init[lo:hi].copy()
        for it in range(iterations):
            ghost = gather(ctx, session.schedule, local)
            local = session.kernel_plan.sweep(local, ghost)
            ctx.compute(float(cost_w[lo:hi].sum()), label="kernel")
            ctx.barrier()
            if (it + 1) % adapt_interval == 0 and (it + 1) < iterations:
                phase += 1
                cost_w = base_cost * hotspot_p.weights(phase)
                if repartition:
                    (local,) = session.remap_to(
                        partition_weighted_list(cost_w, caps), (local,)
                    )
                    lo, hi = session.interval()
        pieces = ctx.gather((session.interval()[0], local), root=0)
        full = None
        if ctx.rank == 0:
            full = np.empty(n)
            for piece_lo, data in pieces:
                full[piece_lo : piece_lo + data.size] = data
        return {
            "full": full,
            "repartitions": session.stats.num_remaps,
            "repartition_time": session.stats.remap_time,
        }

    result = run_spmd(cluster, rank_main)
    full_t = result.values[0]["full"]
    assert full_t is not None
    return AdaptiveRunReport(
        values=full_t[perm],
        makespan=result.makespan,
        num_repartitions=result.values[0]["repartitions"],
        repartition_time=max(v["repartition_time"] for v in result.values),
        clocks=result.clocks,
    )
