"""Example applications built on the public runtime API."""

from repro.apps.adaptive_refinement import (
    AdaptiveRunReport,
    MovingHotspot,
    run_adaptive_application,
)
from repro.apps.mesh_smoothing import (
    SmoothingResult,
    smooth_mesh,
    verify_against_sequential,
)
from repro.apps.sparse_matvec import (
    SymmetricPatternMatrix,
    run_parallel_spmv,
    spmv_sequential,
)
from repro.apps.workloads import (
    Workload,
    adaptive_testbed,
    full_scale,
    paper_workload,
    random_capabilities,
)

__all__ = [
    "AdaptiveRunReport",
    "MovingHotspot",
    "SmoothingResult",
    "run_adaptive_application",
    "SymmetricPatternMatrix",
    "Workload",
    "adaptive_testbed",
    "full_scale",
    "paper_workload",
    "random_capabilities",
    "run_parallel_spmv",
    "smooth_mesh",
    "spmv_sequential",
    "verify_against_sequential",
]
