"""Irregular sparse matrix-vector product on the STANCE machinery.

Demonstrates that the runtime generalizes beyond the Fig. 8 kernel ("we
believe many of the techniques ... are relevant for efficient solution of
other regular as well as irregular data-parallel applications"): repeated
y = A @ x with a symmetric sparsity pattern is the inner loop of the
iterative FEM solvers the paper targets.

The matrix rides on a :class:`~repro.graph.csr.CSRGraph` pattern with
per-entry weights plus a diagonal; the inspector/executor path is exactly
the one the smoothing kernel uses (symmetric pattern -> sort2 schedules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.net.cluster import ClusterSpec
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.ordering import OrderingMethod
from repro.partition.rcb import RCBOrdering
from repro.runtime.executor import gather
from repro.runtime.inspector import run_inspector
from repro.runtime.kernels import KernelCostModel

__all__ = ["SymmetricPatternMatrix", "spmv_sequential", "run_parallel_spmv"]


@dataclass(frozen=True)
class SymmetricPatternMatrix:
    """A sparse matrix whose off-diagonal pattern is a symmetric graph.

    ``offdiag[k]`` weights the edge entry ``graph.indices[k]`` of row
    ``row(k)``; ``diag[i]`` is the diagonal.  Values need not be symmetric
    — only the *pattern* symmetry matters for schedule construction.
    """

    graph: CSRGraph
    offdiag: np.ndarray
    diag: np.ndarray

    def __post_init__(self) -> None:
        offdiag = np.ascontiguousarray(self.offdiag, dtype=np.float64)
        diag = np.ascontiguousarray(self.diag, dtype=np.float64)
        object.__setattr__(self, "offdiag", offdiag)
        object.__setattr__(self, "diag", diag)
        if offdiag.shape != (self.graph.indices.size,):
            raise ConfigurationError(
                f"offdiag must align with graph.indices "
                f"({self.graph.indices.size} entries), got {offdiag.shape}"
            )
        if diag.shape != (self.graph.num_vertices,):
            raise ConfigurationError(
                f"diag must have one entry per vertex, got {diag.shape}"
            )

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @staticmethod
    def laplacian_like(graph: CSRGraph, *, shift: float = 0.1) -> "SymmetricPatternMatrix":
        """A diagonally dominant test matrix: (D + shift·I) - A.

        Spectral radius of the Jacobi iteration is < 1, so repeated
        products stay bounded — convenient for long runs.
        """
        deg = graph.degrees.astype(np.float64)
        return SymmetricPatternMatrix(
            graph=graph,
            offdiag=-np.ones(graph.indices.size),
            diag=deg + shift,
        )

    def permuted(self, perm: np.ndarray) -> "SymmetricPatternMatrix":
        """The matrix under a symmetric permutation of rows and columns."""
        n = self.n
        gperm = self.graph.permute(perm)
        inv = np.empty(n, dtype=np.intp)
        inv[perm] = np.arange(n, dtype=np.intp)
        # Rebuild offdiag values aligned with the permuted CSR layout by a
        # (row, col) -> value map over the old entries.
        old_rows = np.repeat(
            np.arange(n, dtype=np.intp), np.diff(self.graph.indptr)
        )
        key_to_val = {}
        for r, c, v in zip(perm[old_rows], perm[self.graph.indices], self.offdiag):
            key_to_val[(int(r), int(c))] = float(v)
        new_rows = np.repeat(
            np.arange(n, dtype=np.intp), np.diff(gperm.indptr)
        )
        new_vals = np.fromiter(
            (key_to_val[(int(r), int(c))] for r, c in zip(new_rows, gperm.indices)),
            dtype=np.float64,
            count=gperm.indices.size,
        )
        return SymmetricPatternMatrix(
            graph=gperm, offdiag=new_vals, diag=self.diag[inv]
        )


def spmv_sequential(mat: SymmetricPatternMatrix, x: np.ndarray) -> np.ndarray:
    """Reference y = A @ x (vectorized, whole matrix)."""
    x = np.asarray(x, dtype=np.float64)
    g = mat.graph
    y = mat.diag * x
    if g.indices.size:
        contrib = mat.offdiag * x[g.indices]
        rows = np.repeat(np.arange(g.num_vertices, dtype=np.intp),
                         np.diff(g.indptr))
        np.add.at(y, rows, contrib)
    return y


def run_parallel_spmv(
    mat: SymmetricPatternMatrix,
    cluster: ClusterSpec,
    x0: np.ndarray,
    iterations: int = 10,
    *,
    ordering: OrderingMethod | None = None,
    strategy: str = "sort2",
    normalize: bool = True,
    kernel_cost: KernelCostModel = KernelCostModel(),
) -> tuple[np.ndarray, float]:
    """Repeated (optionally normalized) products x <- A x over the cluster.

    With ``normalize=True`` this is the power iteration: after enough
    iterations x approaches A's dominant eigenvector.  Returns (final x in
    original numbering, virtual makespan).
    """
    n = mat.n
    x0 = np.asarray(x0, dtype=np.float64)
    if x0.shape != (n,):
        raise ConfigurationError(f"x0 has shape {x0.shape}, expected ({n},)")
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    if ordering is None:
        ordering = RCBOrdering() if mat.graph.coords is not None else None
    if ordering is not None:
        perm = ordering(mat.graph)
    else:
        perm = np.arange(n, dtype=np.intp)
    pmat = mat.permuted(perm)
    x_init = np.empty(n)
    x_init[perm] = x0

    def rank_main(ctx: Any) -> tuple[int, np.ndarray]:
        partition = partition_list(n, cluster.speeds)
        insp = run_inspector(
            pmat.graph, partition, ctx.rank, strategy=strategy, ctx=ctx
        )
        lo, hi = partition.interval(ctx.rank)
        plan = insp.kernel_plan
        local_x = x_init[lo:hi].copy()
        local_diag = pmat.diag[lo:hi]
        start, stop = pmat.graph.indptr[lo], pmat.graph.indptr[hi]
        local_w = pmat.offdiag[start:stop]
        for _ in range(iterations):
            ghost = gather(ctx, insp.schedule, local_x)
            combined = (
                np.concatenate([local_x, ghost]) if ghost.size else local_x
            )
            y = local_diag * local_x
            if plan.slots.size:
                contrib = local_w * combined[plan.slots]
                nz = plan.counts > 0
                y[nz] += np.add.reduceat(contrib, plan.starts[nz])
            ctx.compute(
                kernel_cost.sweep_seconds(plan.n_references, local_x.size),
                label="spmv",
            )
            if normalize:
                sq = ctx.allreduce(float(np.dot(y, y)), lambda a, b: a + b)
                y = y / np.sqrt(sq) if sq > 0 else y
            local_x = y
            ctx.barrier()
        return lo, local_x

    result = run_spmd(cluster, rank_main)
    full = np.empty(n)
    for lo, data in result.values:
        full[lo : lo + data.size] = data
    return full[perm], result.makespan
