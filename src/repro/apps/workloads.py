"""Workload builders shared by the examples and the benchmark harness.

Centralizes experiment scaling: by default benches run a reduced mesh so the
whole suite finishes in minutes; ``REPRO_FULL=1`` switches to the paper's
full 30,269-vertex mesh and 500 iterations (docs/benchmarks.md, "scale").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import paper_mesh
from repro.net.cluster import (
    ClusterSpec,
    adaptive_cluster,
    sun4_cluster,
    uniform_cluster,
)
from repro.net.loadmodel import RampLoad, StepLoad
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "full_scale",
    "Workload",
    "paper_workload",
    "random_capabilities",
    "adaptive_testbed",
    "DYNAMIC_SCENARIOS",
    "dynamic_load_cluster",
]


def full_scale() -> bool:
    """True when the harness should run at the paper's full scale."""
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class Workload:
    """One experiment workload: the mesh graph, initial values, iterations."""

    graph: CSRGraph
    y0: np.ndarray
    iterations: int
    label: str

    @property
    def n(self) -> int:
        return self.graph.num_vertices


def paper_workload(
    *,
    seed: SeedLike = 1995,
    n_vertices: int | None = None,
    iterations: int | None = None,
) -> Workload:
    """The Tables 3-5 workload: the Fig. 9-like mesh + Fig. 8 loop.

    Defaults: 6,000 vertices / 60 iterations reduced scale, or the paper's
    30,269 vertices / 500 iterations under ``REPRO_FULL=1``.
    """
    if n_vertices is None:
        n_vertices = 30_269 if full_scale() else 6_000
    if iterations is None:
        iterations = 500 if full_scale() else 60
    graph = paper_mesh(n_vertices, seed=seed)
    rng = as_generator(seed)
    y0 = rng.uniform(0.0, 100.0, size=graph.num_vertices)
    return Workload(
        graph=graph,
        y0=y0,
        iterations=iterations,
        label=f"mesh(n={graph.num_vertices}, m={graph.num_edges})",
    )


def random_capabilities(
    p: int, rng: np.random.Generator, *, floor: float = 0.02
) -> np.ndarray:
    """A random normalized capability vector with no near-zero entries.

    Used for Table 2's "100 randomly generated samples" of adapting
    capability ratios.
    """
    caps = rng.dirichlet(np.ones(p))
    caps = np.maximum(caps, floor)
    return caps / caps.sum()


def adaptive_testbed(
    n_workstations: int,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """The Table 5 environment.

    The paper's single-workstation adaptive run (290.93 s) is ~3x its
    static run (97.61 s), implying roughly two competing processes on the
    loaded machine — hence the default ``competing_load=2.0``.
    """
    return adaptive_cluster(
        n_workstations, loaded_rank=0, competing_load=competing_load
    )


#: The dynamic-load scenario names of the ``scale-adaptive`` experiments.
DYNAMIC_SCENARIOS = ("onset", "hotspot", "ramp")


def dynamic_load_cluster(
    p: int,
    scenario: str,
    horizon: float,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """A uniform pool whose competing load changes *during* the run.

    These are the "dynamic" computational environments of the paper's
    Sec. 1 taxonomy (capabilities change over the run, not just between
    runs), built from the :mod:`repro.net.loadmodel` traces.  *horizon*
    is the expected virtual duration of the run; the traces scale to it
    so every scenario forces its load changes mid-run at any mesh size:

    * ``"onset"`` — a competing load appears on workstation 0 at 15% of
      the horizon and leaves at 55%: the runtime must remap away from the
      loaded machine and then remap back;
    * ``"hotspot"`` — the competing load moves from workstation to
      workstation, holding each for ``horizon / p``: no single remap is
      ever final;
    * ``"ramp"`` — the load on workstation 0 climbs linearly from 0 to
      ``1.5 x competing_load`` over the first 70% of the horizon (the
      scenario where multi-phase capability *prediction*, footnote 2,
      can beat the last-value rule).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    cluster = uniform_cluster(p, name=f"dynamic-{scenario}")
    if scenario == "onset":
        return cluster.with_load(
            0,
            StepLoad([
                (0.0, 0.0),
                (0.15 * horizon, competing_load),
                (0.55 * horizon, 0.0),
            ]),
        )
    if scenario == "hotspot":
        dwell = horizon / p
        for rank in range(p):
            cluster = cluster.with_load(
                rank,
                StepLoad([
                    (0.0, competing_load if rank == 0 else 0.0),
                    (rank * dwell, competing_load),
                    ((rank + 1) * dwell, 0.0),
                ]),
            )
        return cluster
    if scenario == "ramp":
        return cluster.with_load(
            0, RampLoad(0.0, 0.7 * horizon, 0.0, 1.5 * competing_load)
        )
    raise ValueError(
        f"unknown dynamic-load scenario {scenario!r}; "
        f"known: {DYNAMIC_SCENARIOS}"
    )
