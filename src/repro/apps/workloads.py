"""Workload builders shared by the examples and the benchmark harness.

Centralizes experiment scaling: by default benches run a reduced mesh so the
whole suite finishes in minutes; ``REPRO_FULL=1`` switches to the paper's
full 30,269-vertex mesh and 500 iterations (docs/benchmarks.md, "scale").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import paper_mesh
from repro.net.cluster import ClusterSpec, adaptive_cluster, uniform_cluster
from repro.net.loadmodel import (
    MembershipEvent,
    MembershipTrace,
    RampLoad,
    StepLoad,
)
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "full_scale",
    "Workload",
    "paper_workload",
    "random_capabilities",
    "adaptive_testbed",
    "DYNAMIC_SCENARIOS",
    "dynamic_load_cluster",
    "ELASTIC_SCENARIOS",
    "elastic_cluster",
    "RESILIENCE_SCENARIOS",
    "resilient_cluster",
]


def full_scale() -> bool:
    """True when the harness should run at the paper's full scale."""
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class Workload:
    """One experiment workload: the mesh graph, initial values, iterations."""

    graph: CSRGraph
    y0: np.ndarray
    iterations: int
    label: str

    @property
    def n(self) -> int:
        return self.graph.num_vertices


def paper_workload(
    *,
    seed: SeedLike = 1995,
    n_vertices: int | None = None,
    iterations: int | None = None,
) -> Workload:
    """The Tables 3-5 workload: the Fig. 9-like mesh + Fig. 8 loop.

    Defaults: 6,000 vertices / 60 iterations reduced scale, or the paper's
    30,269 vertices / 500 iterations under ``REPRO_FULL=1``.
    """
    if n_vertices is None:
        n_vertices = 30_269 if full_scale() else 6_000
    if iterations is None:
        iterations = 500 if full_scale() else 60
    graph = paper_mesh(n_vertices, seed=seed)
    rng = as_generator(seed)
    y0 = rng.uniform(0.0, 100.0, size=graph.num_vertices)
    return Workload(
        graph=graph,
        y0=y0,
        iterations=iterations,
        label=f"mesh(n={graph.num_vertices}, m={graph.num_edges})",
    )


def random_capabilities(
    p: int, rng: np.random.Generator, *, floor: float = 0.02
) -> np.ndarray:
    """A random normalized capability vector with no near-zero entries.

    Used for Table 2's "100 randomly generated samples" of adapting
    capability ratios.
    """
    caps = rng.dirichlet(np.ones(p))
    caps = np.maximum(caps, floor)
    return caps / caps.sum()


def adaptive_testbed(
    n_workstations: int,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """The Table 5 environment.

    The paper's single-workstation adaptive run (290.93 s) is ~3x its
    static run (97.61 s), implying roughly two competing processes on the
    loaded machine — hence the default ``competing_load=2.0``.
    """
    return adaptive_cluster(
        n_workstations, loaded_rank=0, competing_load=competing_load
    )


#: The dynamic-load scenario names of the ``scale-adaptive`` experiments.
DYNAMIC_SCENARIOS = ("onset", "hotspot", "ramp")


def dynamic_load_cluster(
    p: int,
    scenario: str,
    horizon: float,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """A uniform pool whose competing load changes *during* the run.

    These are the "dynamic" computational environments of the paper's
    Sec. 1 taxonomy (capabilities change over the run, not just between
    runs), built from the :mod:`repro.net.loadmodel` traces.  *horizon*
    is the expected virtual duration of the run; the traces scale to it
    so every scenario forces its load changes mid-run at any mesh size:

    * ``"onset"`` — a competing load appears on workstation 0 at 15% of
      the horizon and leaves at 55%: the runtime must remap away from the
      loaded machine and then remap back;
    * ``"hotspot"`` — the competing load moves from workstation to
      workstation, holding each for ``horizon / p``: no single remap is
      ever final;
    * ``"ramp"`` — the load on workstation 0 climbs linearly from 0 to
      ``1.5 x competing_load`` over the first 70% of the horizon (the
      scenario where multi-phase capability *prediction*, footnote 2,
      can beat the last-value rule).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    cluster = uniform_cluster(p, name=f"dynamic-{scenario}")
    if scenario == "onset":
        return cluster.with_load(
            0,
            StepLoad([
                (0.0, 0.0),
                (0.15 * horizon, competing_load),
                (0.55 * horizon, 0.0),
            ]),
        )
    if scenario == "hotspot":
        dwell = horizon / p
        for rank in range(p):
            cluster = cluster.with_load(
                rank,
                StepLoad([
                    (0.0, competing_load if rank == 0 else 0.0),
                    (rank * dwell, competing_load),
                    ((rank + 1) * dwell, 0.0),
                ]),
            )
        return cluster
    if scenario == "ramp":
        return cluster.with_load(
            0, RampLoad(0.0, 0.7 * horizon, 0.0, 1.5 * competing_load)
        )
    raise ValueError(
        f"unknown dynamic-load scenario {scenario!r}; "
        f"known: {DYNAMIC_SCENARIOS}"
    )


#: The elastic-membership scenario names of the ``scale-elastic`` experiments.
ELASTIC_SCENARIOS = ("leave-at-peak", "join-midrun", "churn")


def elastic_cluster(
    p: int,
    scenario: str,
    horizon: float,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """A uniform pool whose *membership* changes during the run.

    These are the elastic computational environments of the paper's Sec. 1
    taxonomy taken to their limit: machines do not merely slow down, they
    appear and disappear.  *horizon* is the expected virtual duration of
    the run on the full pool; the membership events scale to it so every
    scenario forces its changes mid-run at any mesh size:

    * ``"leave-at-peak"`` — the owner of workstation 0 returns at 15% of
      the horizon (``competing_load`` competing processes) and reclaims
      the machine outright at 105%, when its contention is at its peak.  A
      balancing run sheds work soon after the onset and later drains a
      lightly-loaded block; the static baseline rides the full imbalance
      for roughly half its (stretched) run and then pays the same
      mandatory drain;
    * ``"join-midrun"`` — workstation ``p-1`` starts standby and becomes
      available at 40% of the horizon: only a balancing run re-runs the
      profitability test and adopts the extra capability;
    * ``"churn"`` — workstation 1 leaves at 30%, rejoins at 60%, and
      workstation 2 leaves at 90%: no membership decision is ever final,
      and every remap repartitions onto a different-sized active set.

    *horizon* is a **compute-only** estimate (kernel cost x iterations /
    pool size); the real run is longer — communication per iteration, and
    competing loads or shrunken pools stretching every phase they touch —
    which is why the leave-at-peak departure sits at 105%: it lands
    mid-run for the balancing arm and around the halfway point for the
    slower static baseline, so both arms pay the mandatory drain.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if p < 2:
        raise ValueError(f"elastic scenarios need p >= 2, got {p}")
    cluster = uniform_cluster(p, name=f"elastic-{scenario}")
    if scenario == "leave-at-peak":
        cluster = cluster.with_load(
            0, StepLoad([(0.0, 0.0), (0.15 * horizon, competing_load)])
        )
        trace = MembershipTrace(
            p, [MembershipEvent(1.05 * horizon, "leave", 0)]
        )
    elif scenario == "join-midrun":
        trace = MembershipTrace(
            p,
            [MembershipEvent(0.40 * horizon, "join", p - 1)],
            initially_inactive=[p - 1],
        )
    elif scenario == "churn":
        trace = MembershipTrace(
            p,
            [
                MembershipEvent(0.30 * horizon, "leave", 1),
                MembershipEvent(0.60 * horizon, "join", 1),
                MembershipEvent(0.90 * horizon, "leave", 2 % p),
            ],
        )
    else:
        raise ValueError(
            f"unknown elastic scenario {scenario!r}; known: {ELASTIC_SCENARIOS}"
        )
    return cluster.with_membership(trace)


#: The unannounced-failure scenario names of the ``scale-resilience``
#: experiments.
RESILIENCE_SCENARIOS = ("fail-at-peak", "repeated-failures")


def resilient_cluster(
    p: int,
    scenario: str,
    horizon: float,
    *,
    competing_load: float = 2.0,
) -> ClusterSpec:
    """A uniform pool where machines die *unannounced* during the run.

    The unannounced half of the paper's adaptive-availability axis: a
    workstation crashes (or its owner powers it off) with no drain
    window, taking its memory — and its block of the distributed list —
    with it.  *horizon* is the expected compute-only virtual duration on
    the full pool; event times scale to it so the failures land mid-run
    at any mesh size (the real run is longer — see
    :func:`elastic_cluster` — so fractions here sit early):

    * ``"fail-at-peak"`` — a competing load appears on workstation 0 at
      15% of the horizon and the loaded machine then dies outright at
      45%: the worst moment, when the runtime has just paid remaps to
      shed work *toward* the survivors and the failed rank's block is at
      its most stale since the last checkpoint;
    * ``"repeated-failures"`` — workstation 1 dies at 30% and
      workstation 2 at 60%: no single recovery is final, and the second
      rollback tests the freshly re-replicated epoch, not the original
      one.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if p < 2:
        raise ValueError(f"resilience scenarios need p >= 2, got {p}")
    cluster = uniform_cluster(p, name=f"resilient-{scenario}")
    if scenario == "fail-at-peak":
        cluster = cluster.with_load(
            0, StepLoad([(0.0, 0.0), (0.15 * horizon, competing_load)])
        )
        trace = MembershipTrace(
            p, [MembershipEvent(0.45 * horizon, "fail", 0)]
        )
    elif scenario == "repeated-failures":
        if p < 3:
            raise ValueError(
                f"repeated-failures needs p >= 3 (two machines die), got {p}"
            )
        trace = MembershipTrace(
            p,
            [
                MembershipEvent(0.30 * horizon, "fail", 1),
                MembershipEvent(0.60 * horizon, "fail", 2),
            ],
        )
    else:
        raise ValueError(
            f"unknown resilience scenario {scenario!r}; "
            f"known: {RESILIENCE_SCENARIOS}"
        )
    return cluster.with_membership(trace)
