"""The fuzz oracle: run a scenario, classify it, check the contracts.

The oracle never asks "did it print the right number" — it asks whether
the standing invariants of the runtime held:

* ``reference-match`` — a recovered run's final values are bit-identical
  to the scenario's quiet baseline (same graph/y0/iterations, no churn,
  no loads, no checkpoints).  Final values are a function of the
  computation alone; any divergence means recovery or redistribution
  corrupted data.
* ``backend-differential`` — the reference and vectorized backends agree
  bit-for-bit on the outcome, the final values, and every virtual metric
  (makespan, per-rank clocks, checkpoint/rollback/lost-time counters).
* ``no-desync`` — the collective counters (remaps, membership events,
  checkpoints, rollbacks) aggregate without a cross-rank disagreement;
  the :class:`~repro.runtime.ProgramReport` properties raise on desync
  and the oracle surfaces that as a violation.
* ``recoverable`` — the run either completes or dies with a *diagnosed*
  :class:`~repro.errors.ResilienceError` (directly, or wrapped per-rank
  in a :class:`~repro.errors.RankFailedError`); any other exception is a
  crash.  A scenario's ``expect`` field may narrow this to exactly one
  of the two legitimate outcomes.
* ``obs-neutral`` — re-running the scenario with tracing enabled
  (:mod:`repro.obs`) leaves the final values, per-rank virtual clocks,
  virtual metrics, and collective counters bit-identical.  Recording is
  observation only: a span that advanced a clock or perturbed a decision
  would break the determinism contract in the subtlest possible way.
  (Observability's *own* outputs — e.g. the mailbox-depth gauge — are
  deliberately not compared: they may legitimately vary with thread
  scheduling; the invariant is that the *computation* cannot.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    LoadBalanceError,
    RankFailedError,
    ReproError,
    ResilienceError,
)
from repro.fuzz.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.program import ProgramReport

__all__ = [
    "INVARIANTS",
    "OracleReport",
    "check_invariant_names",
    "run_scenario",
]

#: The oracle's invariant vocabulary (``--invariant`` on the CLI).
INVARIANTS = (
    "reference-match",
    "backend-differential",
    "no-desync",
    "recoverable",
    "obs-neutral",
)

#: The collective counters whose aggregation detects a desync.
_COLLECTIVE_COUNTERS = (
    "num_remaps",
    "membership_events",
    "num_checkpoints",
    "num_rollbacks",
)

#: Virtual metrics that must agree bit-for-bit across backends.
_VIRTUAL_METRICS = (
    "makespan",
    "checkpoint_time",
    "rollback_time",
    "lost_time",
    "lb_check_time",
    "remap_time",
)


def check_invariant_names(names: Sequence[str]) -> tuple[str, ...]:
    """Validate ``--invariant`` selections; actionable on a typo."""
    if not names:
        return INVARIANTS
    for name in names:
        if name not in INVARIANTS:
            raise ConfigurationError(
                f"unknown invariant {name!r}; known invariants: "
                f"{', '.join(INVARIANTS)} (default: all of them)"
            )
    # Preserve the canonical order, drop duplicates.
    return tuple(inv for inv in INVARIANTS if inv in set(names))


@dataclass
class OracleReport:
    """What the oracle concluded about one scenario."""

    scenario: Scenario
    #: ``recovered`` | ``diagnosed`` | ``crashed``
    outcome: str
    checked: tuple[str, ...]
    violations: list[str] = field(default_factory=list)
    #: The ResilienceError message when the outcome is ``diagnosed``.
    diagnosis: str = ""
    makespan: float | None = None
    num_rollbacks: int | None = None
    num_checkpoints: int | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        label = self.scenario.name or "scenario"
        if self.ok:
            extra = ""
            if self.makespan is not None:
                extra = f" (makespan {self.makespan:.4f} s"
                if self.num_rollbacks is not None:
                    extra += f", {self.num_rollbacks} rollback(s)"
                extra += ")"
            return f"{label}: {self.outcome} ok{extra}"
        first = self.violations[0]
        more = (
            f" (+{len(self.violations) - 1} more)"
            if len(self.violations) > 1
            else ""
        )
        return f"{label}: FAIL [{self.outcome}] {first}{more}"


def _attempt(
    scenario: Scenario, backend: str, *, traced: bool = False
) -> tuple[str, "ProgramReport | None", str]:
    """One run: (outcome, report-or-None, diagnosis-or-crash-message)."""
    from repro.runtime import run_program

    graph = scenario.build_graph()
    y0 = scenario.build_y0(graph)
    cluster = scenario.build_cluster()
    config = scenario.build_config(backend=backend)
    if traced:
        config = replace(config, trace=True)
    try:
        report = run_program(graph, cluster, config, y0=y0)
        return "recovered", report, ""
    except ResilienceError as exc:
        return "diagnosed", None, str(exc)
    except RankFailedError as exc:
        if exc.failures and all(
            isinstance(e, ResilienceError) for e in exc.failures.values()
        ):
            return "diagnosed", None, str(exc)
        return "crashed", None, f"{type(exc).__name__}: {exc}"
    except ReproError as exc:
        return "crashed", None, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 — the oracle's whole job
        return "crashed", None, f"{type(exc).__name__}: {exc}"


def _check_desync(report: "ProgramReport", backend: str, out: list[str]) -> None:
    for counter in _COLLECTIVE_COUNTERS:
        try:
            getattr(report, counter)
        except (LoadBalanceError, ResilienceError) as exc:
            out.append(f"no-desync[{backend}]: {counter} desynchronized: {exc}")


def run_scenario(
    scenario: Scenario,
    *,
    invariants: Sequence[str] = INVARIANTS,
) -> OracleReport:
    """Execute *scenario* under the selected invariants.

    ``backend-differential`` runs the scenario under both backends;
    without it only the vectorized backend runs.  ``reference-match``
    additionally runs the quiet baseline once.
    """
    checked = check_invariant_names(invariants)
    backends = (
        ("reference", "vectorized")
        if "backend-differential" in checked
        else ("vectorized",)
    )
    attempts = {b: _attempt(scenario, b) for b in backends}
    violations: list[str] = []

    outcomes = {b: a[0] for b, a in attempts.items()}
    if len(set(outcomes.values())) > 1:
        violations.append(
            f"backend-differential: backends disagree on the outcome: "
            f"{outcomes}"
        )
    primary_backend = backends[-1]  # vectorized when both ran
    outcome, primary, diagnosis = attempts[primary_backend]

    if "recoverable" in checked:
        for b, (oc, _, msg) in attempts.items():
            if oc == "crashed":
                violations.append(f"recoverable[{b}]: {msg}")
        if scenario.expect == "recovered" and outcome == "diagnosed":
            violations.append(
                f"recoverable: scenario expects a recovery but the run "
                f"was diagnosed unrecoverable: {diagnosis}"
            )
        if scenario.expect == "diagnosed" and outcome == "recovered":
            violations.append(
                "recoverable: scenario expects a diagnosed "
                "ResilienceError but the run completed"
            )

    reports = {b: a[1] for b, a in attempts.items() if a[1] is not None}
    if "no-desync" in checked:
        for b, report in reports.items():
            _check_desync(report, b, violations)

    if (
        "backend-differential" in checked
        and len(reports) == 2
        and len(set(outcomes.values())) == 1
    ):
        ref, vec = reports["reference"], reports["vectorized"]
        if not np.array_equal(ref.values, vec.values):
            violations.append(
                "backend-differential: final values differ between "
                "reference and vectorized backends"
            )
        if ref.clocks != vec.clocks:
            violations.append(
                f"backend-differential: per-rank clocks differ: "
                f"{ref.clocks} vs {vec.clocks}"
            )
        for metric in _VIRTUAL_METRICS:
            a, b = getattr(ref, metric), getattr(vec, metric)
            if a != b:
                violations.append(
                    f"backend-differential: {metric} differs: "
                    f"{a!r} (reference) vs {b!r} (vectorized)"
                )
        for counter in _COLLECTIVE_COUNTERS:
            try:
                a, b = getattr(ref, counter), getattr(vec, counter)
            except (LoadBalanceError, ResilienceError):
                continue  # already reported by no-desync
            if a != b:
                violations.append(
                    f"backend-differential: {counter} differs: "
                    f"{a} (reference) vs {b} (vectorized)"
                )

    if (
        "obs-neutral" in checked
        and primary is not None
        and outcome == "recovered"
    ):
        tr_outcome, traced, tr_msg = _attempt(
            scenario, primary_backend, traced=True
        )
        if traced is None:
            violations.append(
                f"obs-neutral: the traced re-run failed "
                f"({tr_outcome}): {tr_msg}"
            )
        else:
            if not np.array_equal(primary.values, traced.values):
                violations.append(
                    "obs-neutral: enabling tracing changed the final values"
                )
            if primary.clocks != traced.clocks:
                violations.append(
                    f"obs-neutral: enabling tracing changed the per-rank "
                    f"clocks: {primary.clocks} vs {traced.clocks}"
                )
            for metric in _VIRTUAL_METRICS:
                a, b = getattr(primary, metric), getattr(traced, metric)
                if a != b:
                    violations.append(
                        f"obs-neutral: enabling tracing changed {metric}: "
                        f"{a!r} vs {b!r}"
                    )
            for counter in _COLLECTIVE_COUNTERS:
                try:
                    a, b = getattr(primary, counter), getattr(traced, counter)
                except (LoadBalanceError, ResilienceError):
                    continue  # already reported by no-desync
                if a != b:
                    violations.append(
                        f"obs-neutral: enabling tracing changed {counter}: "
                        f"{a} vs {b}"
                    )

    if (
        "reference-match" in checked
        and primary is not None
        and outcome == "recovered"
    ):
        base_outcome, base_report, base_msg = _attempt(
            scenario.baseline(), primary_backend
        )
        if base_report is None:
            violations.append(
                f"reference-match: the quiet baseline itself failed "
                f"({base_outcome}): {base_msg}"
            )
        elif not np.array_equal(primary.values, base_report.values):
            delta = float(
                np.max(np.abs(primary.values - base_report.values))
            )
            violations.append(
                f"reference-match: final values differ from the "
                f"no-failure baseline (max |delta| = {delta:.3e}) — "
                f"recovery or redistribution corrupted data"
            )

    return OracleReport(
        scenario=scenario,
        outcome=outcome,
        checked=checked,
        violations=violations,
        diagnosis=diagnosis,
        makespan=primary.makespan if primary is not None else None,
        num_rollbacks=(
            _safe_counter(primary, "num_rollbacks") if primary else None
        ),
        num_checkpoints=(
            _safe_counter(primary, "num_checkpoints") if primary else None
        ),
    )


def _safe_counter(report: "ProgramReport", name: str) -> int | None:
    try:
        return getattr(report, name)
    except (LoadBalanceError, ResilienceError):
        return None
