"""Greedy scenario shrinking: a failing scenario, minus everything
incidental.

Classic delta-debugging structure specialized to :class:`Scenario`: a
fixed menu of *reductions* (drop a membership event, drop a competing
load, halve the graph, halve the iteration count, drop the last
workstation, simplify the checkpoint policy), applied greedily to a
fixpoint — a reduction is kept only when the reduced scenario still
violates the same invariant selection.  Every candidate is rebuilt
through the ordinary :class:`Scenario` constructor, so a reduction that
would produce an invalid scenario (e.g. dropping the join that a later
leave depends on) is discarded rather than chased.

The result's :meth:`~repro.fuzz.scenario.Scenario.reproducer_command` is
the deliverable: the smallest runnable command line that still shows the
failure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.fuzz.oracle import INVARIANTS, OracleReport, run_scenario
from repro.fuzz.scenario import Scenario

__all__ = ["ShrinkResult", "shrink_scenario"]


@dataclass
class ShrinkResult:
    """The minimal failing scenario and how we got there."""

    scenario: Scenario
    report: OracleReport
    attempts: int  # oracle runs spent (including rejected candidates)
    reductions: int  # candidates that were kept

    @property
    def command(self) -> str:
        return self.scenario.reproducer_command()


def _membership_reductions(scenario: Scenario) -> Iterator[Scenario]:
    trace = scenario.membership_trace()
    if trace is None:
        return
    # Drop one event at a time (later events first: tail events are the
    # likeliest to be incidental to a failure seeded earlier).
    for i in reversed(range(len(trace.events))):
        events = trace.events[:i] + trace.events[i + 1 :]
        try:
            reduced = type(trace)(
                trace.world_size,
                events,
                initially_inactive=sorted(trace.initially_inactive),
            )
        except ValueError:
            continue
        yield replace(
            scenario, membership=reduced.format() or None
        )
    # Drop unused standby ranks wholesale.
    if trace.initially_inactive and not trace.events:
        yield replace(scenario, membership=None)


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    yield from _membership_reductions(scenario)
    for i in reversed(range(len(scenario.loads))):
        yield replace(
            scenario,
            loads=scenario.loads[:i] + scenario.loads[i + 1 :],
        )
    if scenario.speeds is not None:
        yield replace(scenario, speeds=None)
    if scenario.vertices > 64:
        yield replace(
            scenario, vertices=max(64, (scenario.vertices // 2 + 7) // 8 * 8)
        )
    if scenario.iterations > 2:
        yield replace(scenario, iterations=scenario.iterations // 2)
    if scenario.load_balance != "off":
        yield replace(scenario, load_balance="off")
    if scenario.checkpoint is not None and scenario.membership_trace() is not None:
        trace = scenario.membership_trace()
        if trace is not None and not trace.has_failures:
            yield replace(scenario, checkpoint=None)
    # Drop the highest workstation when nothing references it.
    p = scenario.workstations
    if p > 2:
        trace = scenario.membership_trace()
        touches_last = any(
            ev.rank == p - 1 or ev.replacement == p - 1
            for ev in (trace.events if trace is not None else ())
        ) or (trace is not None and (p - 1) in trace.initially_inactive)
        if not touches_last and all(ls.rank != p - 1 for ls in scenario.loads):
            yield replace(
                scenario,
                workstations=p - 1,
                speeds=(
                    scenario.speeds[: p - 1]
                    if scenario.speeds is not None
                    else None
                ),
            )


def shrink_scenario(
    scenario: Scenario,
    *,
    invariants: Sequence[str] = INVARIANTS,
    max_attempts: int = 200,
) -> ShrinkResult:
    """Reduce *scenario* while it keeps violating *invariants*.

    Raises :class:`~repro.errors.ConfigurationError` when the input
    scenario does not fail at all — there is nothing to shrink, and
    silently returning it unchanged would look like a reproducer.
    """
    if max_attempts < 1:
        raise ConfigurationError(
            f"max_attempts must be >= 1, got {max_attempts}"
        )
    report = run_scenario(scenario, invariants=invariants)
    attempts = 1
    if report.ok:
        raise ConfigurationError(
            "the scenario passes every selected invariant; nothing to "
            "shrink (run `repro fuzz run` first to find a failing one)"
        )
    reductions = 0
    current, current_report = scenario, report
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            try:
                candidate = Scenario.from_dict(candidate.to_dict())
            except ReproError:
                continue  # reduction produced an invalid scenario
            cand_report = run_scenario(candidate, invariants=invariants)
            attempts += 1
            if not cand_report.ok:
                current, current_report = candidate, cand_report
                reductions += 1
                progress = True
                break  # restart the menu from the smaller scenario
    return ShrinkResult(
        scenario=current,
        report=current_report,
        attempts=attempts,
        reductions=reductions,
    )
