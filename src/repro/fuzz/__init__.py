"""Seeded adversarial scenario fuzzing (churn × load × failure).

The runtime's standing contracts — recovery reproduces the no-failure
values bit-for-bit, the reference and vectorized backends agree on every
virtual metric, collective counters never desynchronize, and an
unrecoverable world dies with a diagnosed :class:`ResilienceError` rather
than a crash — are each pinned by hand-written tests.  This package turns
them into an *oracle* and drives randomly composed scenarios at it:

* :mod:`~repro.fuzz.scenario` — the deterministic generator: a seed maps
  to a :class:`Scenario` (graph size, cluster shape, membership churn,
  competing-load steps, checkpoint policy, replication factor) that can
  be serialized to JSON, rebuilt into a runnable
  :class:`~repro.runtime.ProgramConfig`, and replayed exactly;
* :mod:`~repro.fuzz.oracle` — :func:`run_scenario` executes a scenario
  under every selected invariant and classifies the outcome
  (``recovered`` / ``diagnosed`` / ``crashed``);
* :mod:`~repro.fuzz.shrink` — :func:`shrink_scenario` greedily reduces a
  failing scenario (fewer events, fewer loads, smaller graph, fewer
  iterations, fewer machines) while it keeps failing, and prints the
  minimal reproducer as a runnable command line.

Everything is seeded through :mod:`repro.utils.rng`: the same
``--seed``/``--budget`` pair regenerates the identical scenario sequence
on any machine, which is what lets CI replay a corpus and a developer
replay CI.
"""

from repro.fuzz.oracle import (
    INVARIANTS,
    OracleReport,
    check_invariant_names,
    run_scenario,
)
from repro.fuzz.scenario import (
    LoadSpec,
    Scenario,
    generate_scenario,
    generate_scenarios,
)
from repro.fuzz.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "INVARIANTS",
    "LoadSpec",
    "OracleReport",
    "Scenario",
    "ShrinkResult",
    "check_invariant_names",
    "generate_scenario",
    "generate_scenarios",
    "run_scenario",
    "shrink_scenario",
]
