"""Deterministic adversarial scenarios: seed -> Scenario -> ProgramConfig.

A :class:`Scenario` is a *complete, serializable* description of one
adversarial run: the graph, the cluster (size, speeds, competing-load
steps), the membership churn (the :class:`~repro.net.loadmodel.MembershipTrace`
DSL verbatim, including unannounced ``fail`` events), the checkpoint
policy (the ``--checkpoint`` DSL, including the ``:rF`` replication
suffix), and what the oracle should expect of it.  Scenarios are plain
data on purpose: they round-trip through JSON, diff cleanly in a corpus
directory, and shrink by dropping pieces.

:func:`generate_scenario` is the seeded composer.  It replays the churn
it invents against the same active/standby bookkeeping the real
:class:`MembershipTrace` constructor enforces, so every generated
scenario is *valid by construction* — the fuzzer explores the runtime's
behavior space, not the parser's error space (the CLI error-path tests
own that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.net.loadmodel import MembershipTrace, StepLoad
from repro.utils.rng import SeedLike, as_generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph
    from repro.net.cluster import ClusterSpec
    from repro.runtime.program import ProgramConfig

__all__ = [
    "EXPECTATIONS",
    "LoadSpec",
    "Scenario",
    "SCENARIO_SCHEMA_VERSION",
    "generate_scenario",
    "generate_scenarios",
]

SCENARIO_SCHEMA_VERSION = 1

#: What the oracle may demand of a scenario's outcome: ``recovered`` (the
#: run must complete), ``diagnosed`` (it must die with a ResilienceError —
#: the deliberately-unrecoverable corpus entries), or ``any`` (either is
#: fine; crashing never is).
EXPECTATIONS = ("recovered", "diagnosed", "any")

_STRATEGIES = ("simple", "sort1", "sort2")
_LB_STYLES = ("off", "centralized", "distributed")

#: Rough virtual seconds per iteration per vertex on an unloaded uniform
#: pool — only used to place event times inside the run's lifetime, so a
#: 2x error merely shifts where churn lands.
_PER_VERTEX_ITERATION_S = 2.2e-5


@dataclass(frozen=True)
class LoadSpec:
    """A piecewise-constant competing load on one rank (StepLoad steps)."""

    rank: int
    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"load rank must be >= 0, got {self.rank}"
            )
        object.__setattr__(
            self,
            "steps",
            tuple((float(t), float(load)) for t, load in self.steps),
        )
        StepLoad(self.steps)  # validates ordering / non-negativity

    def as_trace(self) -> StepLoad:
        return StepLoad(self.steps)


@dataclass(frozen=True)
class Scenario:
    """One adversarial run, fully determined and JSON-serializable."""

    seed: int
    vertices: int
    workstations: int
    iterations: int
    strategy: str = "sort2"
    load_balance: str = "centralized"
    check_interval: int = 4
    #: Relative machine speeds; ``None`` means a uniform pool.
    speeds: tuple[float, ...] | None = None
    #: Membership churn in the :meth:`MembershipTrace.parse` DSL
    #: (``None`` = statically provisioned).
    membership: str | None = None
    #: Checkpoint policy in the ``--checkpoint`` DSL, ``:rF`` suffix
    #: included (``None`` = no checkpointing; then the membership may not
    #: contain ``fail`` events).
    checkpoint: str | None = None
    loads: tuple[LoadSpec, ...] = ()
    expect: str = "any"
    #: Optional human label (corpus entries name their edge case).
    name: str = ""

    def __post_init__(self) -> None:
        if self.vertices < 32:
            raise ConfigurationError(
                f"scenario needs >= 32 vertices for a meaningful mesh, "
                f"got {self.vertices}"
            )
        if self.workstations < 1:
            raise ConfigurationError(
                f"scenario needs >= 1 workstation, got {self.workstations}"
            )
        if self.iterations < 1:
            raise ConfigurationError(
                f"scenario needs >= 1 iteration, got {self.iterations}"
            )
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown schedule strategy {self.strategy!r}; known: "
                f"{', '.join(_STRATEGIES)}"
            )
        if self.load_balance not in _LB_STYLES:
            raise ConfigurationError(
                f"unknown load-balance style {self.load_balance!r}; known: "
                f"{', '.join(_LB_STYLES)}"
            )
        if self.check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.expect not in EXPECTATIONS:
            raise ConfigurationError(
                f"unknown expectation {self.expect!r}; known: "
                f"{', '.join(EXPECTATIONS)}"
            )
        if self.speeds is not None:
            object.__setattr__(
                self, "speeds", tuple(float(s) for s in self.speeds)
            )
            if len(self.speeds) != self.workstations:
                raise ConfigurationError(
                    f"speeds vector has {len(self.speeds)} entries, "
                    f"scenario has {self.workstations} workstations"
                )
            if any(s <= 0 for s in self.speeds):
                raise ConfigurationError(
                    f"speeds must be positive, got {list(self.speeds)}"
                )
        object.__setattr__(self, "loads", tuple(self.loads))
        for ls in self.loads:
            if ls.rank >= self.workstations:
                raise ConfigurationError(
                    f"load on rank {ls.rank} is out of range for "
                    f"{self.workstations} workstations"
                )
        # Validate the DSLs eagerly so a malformed scenario fails at
        # construction with the parser's actionable message, not inside
        # the rank threads.
        trace = self.membership_trace()
        from repro.runtime.resilience import resolve_checkpoint_policy

        policy = resolve_checkpoint_policy(self.checkpoint)
        if trace is not None and trace.has_failures and policy is None:
            raise ConfigurationError(
                "scenario contains unannounced 'fail' events but no "
                "checkpoint policy; recovery is impossible by "
                "construction — add a checkpoint (e.g. \"interval:2\") "
                "or drop the failures"
            )

    # ------------------------------------------------------------------ #
    # building the runnable pieces
    # ------------------------------------------------------------------ #

    def membership_trace(self) -> MembershipTrace | None:
        if self.membership is None or not self.membership.strip():
            return None
        try:
            return MembershipTrace.parse(self.membership, self.workstations)
        except ValueError as exc:
            raise ConfigurationError(
                f"scenario membership DSL is invalid: {exc}"
            ) from None

    def build_graph(self) -> "CSRGraph":
        from repro.graph import paper_mesh

        return paper_mesh(self.vertices, seed=self.seed)

    def build_y0(self, graph: "CSRGraph") -> np.ndarray:
        return np.random.default_rng(self.seed).uniform(
            0, 100, graph.num_vertices
        )

    def build_cluster(self) -> "ClusterSpec":
        from repro.net import heterogeneous_cluster, uniform_cluster

        if self.speeds is not None:
            cluster = heterogeneous_cluster(self.speeds, name="fuzz")
        else:
            cluster = uniform_cluster(self.workstations, name="fuzz")
        for ls in self.loads:
            cluster = cluster.with_load(ls.rank, ls.as_trace())
        return cluster

    def build_config(self, *, backend: str | None = None) -> "ProgramConfig":
        from repro.runtime import LoadBalanceConfig, ProgramConfig

        return ProgramConfig(
            iterations=self.iterations,
            strategy=self.strategy,
            backend=backend,
            initial_capabilities="equal",
            load_balance=(
                None
                if self.load_balance == "off"
                else LoadBalanceConfig(
                    check_interval=self.check_interval,
                    style=self.load_balance,
                )
            ),
            membership=self.membership,
            checkpoint=self.checkpoint,
        )

    def baseline(self) -> "Scenario":
        """The quiet twin: same computation, no churn/loads/checkpoints.

        Final values are a function of (graph, y0, iterations) only, so
        the baseline's values are the oracle's reference answer for
        *every* adversarial variation of this scenario.
        """
        return replace(
            self,
            membership=None,
            checkpoint=None,
            loads=(),
            expect="recovered",
            name=f"{self.name}-baseline" if self.name else "baseline",
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "seed": self.seed,
            "vertices": self.vertices,
            "workstations": self.workstations,
            "iterations": self.iterations,
            "strategy": self.strategy,
            "load_balance": self.load_balance,
            "check_interval": self.check_interval,
            "expect": self.expect,
        }
        if self.name:
            out["name"] = self.name
        if self.speeds is not None:
            out["speeds"] = list(self.speeds)
        if self.membership is not None:
            out["membership"] = self.membership
        if self.checkpoint is not None:
            out["checkpoint"] = self.checkpoint
        if self.loads:
            out["loads"] = [
                {"rank": ls.rank, "steps": [list(s) for s in ls.steps]}
                for ls in self.loads
            ]
        return out

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a scenario must be a JSON object, got "
                f"{type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ConfigurationError(
                f"scenario schema_version {version} is not supported "
                f"(this build reads version {SCENARIO_SCHEMA_VERSION})"
            )
        loads = tuple(
            LoadSpec(
                rank=int(entry["rank"]),
                steps=tuple(tuple(s) for s in entry["steps"]),
            )
            for entry in data.pop("loads", [])
        )
        speeds = data.pop("speeds", None)
        known = {
            "seed", "vertices", "workstations", "iterations", "strategy",
            "load_balance", "check_interval", "membership", "checkpoint",
            "expect", "name",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"scenario has unknown field(s) {sorted(unknown)}; known "
                f"fields: {sorted(known | {'loads', 'speeds', 'schema_version'})}"
            )
        try:
            return cls(
                loads=loads,
                speeds=tuple(speeds) if speeds is not None else None,
                **data,
            )
        except TypeError as exc:
            raise ConfigurationError(f"malformed scenario: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scenario is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    def reproducer_command(self) -> str:
        """A runnable one-liner that replays exactly this scenario."""
        compact = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return f"python -m repro fuzz run --scenario '{compact}'"


# ---------------------------------------------------------------------- #
# the seeded composer
# ---------------------------------------------------------------------- #


def _round_time(t: float) -> float:
    return round(float(t), 4)


@dataclass
class _Churn:
    """Replicates MembershipTrace's replay bookkeeping while composing."""

    active: set[int]
    joinable: set[int] = field(default_factory=set)  # standby or left
    dead: set[int] = field(default_factory=set)  # failed; never rejoins

    def options(self, *, failures_allowed: bool) -> list[str]:
        kinds: list[str] = []
        if len(self.active) > 1:
            kinds.append("leave")
        if self.joinable:
            kinds.extend(["join", "join"])  # joins weighted up: rarer pool
            if self.active:
                kinds.append("replace")
        if failures_allowed and len(self.active) > 1:
            kinds.extend(["fail", "fail"])
        return kinds


def generate_scenario(seed: SeedLike, *, name: str = "") -> Scenario:
    """Compose one valid adversarial scenario from *seed*.

    Deterministic: the same seed produces the identical scenario on any
    machine (all randomness flows through one
    :func:`~repro.utils.rng.as_generator` stream, consumed in a fixed
    order).
    """
    rng = as_generator(seed)
    scenario_seed = int(rng.integers(0, 2**31 - 1))
    p = int(rng.integers(2, 6))
    vertices = int(rng.integers(15, 51)) * 8  # 120..400
    iterations = int(rng.integers(6, 13))
    strategy = str(rng.choice(_STRATEGIES))
    load_balance = str(
        rng.choice(_LB_STYLES, p=[0.2, 0.5, 0.3])
    )
    check_interval = int(rng.integers(2, 6))

    speeds: tuple[float, ...] | None = None
    if rng.random() < 0.5:
        speeds = tuple(
            round(float(s), 2) for s in rng.uniform(0.5, 1.0, size=p)
        )

    checkpoint: str | None = None
    if rng.random() < 0.7:
        replication = int(rng.choice([1, 1, 2, 2, 3]))
        suffix = f":r{replication}" if replication != 1 else ""
        if rng.random() < 0.7:
            checkpoint = f"interval:{int(rng.integers(1, 5))}{suffix}"
        else:
            mtbf = round(float(rng.uniform(0.02, 0.5)), 3)
            checkpoint = f"cost:{mtbf}{suffix}"

    est_makespan = iterations * vertices * _PER_VERTEX_ITERATION_S

    standby: set[int] = set()
    if p >= 3 and rng.random() < 0.4:
        # Keep at least two machines initially active.
        n_standby = int(rng.integers(1, p - 1))
        standby = set(
            int(r) for r in rng.choice(p, size=n_standby, replace=False)
        )
    churn = _Churn(active=set(range(p)) - standby, joinable=set(standby))

    tokens = [f"standby:{r}" for r in sorted(standby)]
    n_events = int(rng.integers(0, 5)) if rng.random() < 0.8 else 0
    if standby and n_events == 0:
        n_events = 1  # a standby pool with no events is dead weight
    times = sorted(
        _round_time(t)
        for t in rng.uniform(0.05, 0.85, size=n_events) * est_makespan
    )
    for t in times:
        kinds = churn.options(failures_allowed=checkpoint is not None)
        if not kinds:
            break
        kind = str(rng.choice(kinds))
        if kind == "leave":
            r = int(rng.choice(sorted(churn.active)))
            churn.active.discard(r)
            churn.joinable.add(r)
            tokens.append(f"leave:{r}@{t}")
        elif kind == "join":
            r = int(rng.choice(sorted(churn.joinable)))
            churn.joinable.discard(r)
            churn.active.add(r)
            tokens.append(f"join:{r}@{t}")
        elif kind == "replace":
            old = int(rng.choice(sorted(churn.active)))
            new = int(rng.choice(sorted(churn.joinable)))
            churn.active.discard(old)
            churn.joinable.discard(new)
            churn.active.add(new)
            churn.joinable.add(old)
            tokens.append(f"replace:{old}->{new}@{t}")
        else:  # fail
            r = int(rng.choice(sorted(churn.active)))
            churn.active.discard(r)
            churn.dead.add(r)
            tokens.append(f"fail:{r}@{t}")
    membership = ", ".join(tokens) if tokens else None

    loads: list[LoadSpec] = []
    for _ in range(int(rng.integers(0, 3))):
        rank = int(rng.integers(0, p))
        if any(ls.rank == rank for ls in loads):
            continue
        n_steps = int(rng.integers(1, 4))
        step_times = sorted(
            _round_time(t)
            for t in rng.uniform(0.0, 0.9, size=n_steps) * est_makespan
        )
        steps = [(0.0, 0.0)] + [
            (t, round(float(rng.uniform(0.0, 2.5)), 2)) for t in step_times
        ]
        loads.append(LoadSpec(rank=rank, steps=tuple(steps)))

    has_failures = any(tok.startswith("fail:") for tok in tokens)
    return Scenario(
        seed=scenario_seed,
        vertices=vertices,
        workstations=p,
        iterations=iterations,
        strategy=strategy,
        load_balance=load_balance,
        check_interval=check_interval,
        speeds=speeds,
        membership=membership,
        checkpoint=checkpoint,
        loads=tuple(loads),
        # Without unannounced failures nothing may abort; with them a
        # correlated burst may legitimately exceed the replication factor,
        # so either a recovery or a diagnosed ResilienceError is fine.
        expect="any" if has_failures else "recovered",
        name=name,
    )


def generate_scenarios(seed: int, budget: int) -> list[Scenario]:
    """The canonical ``--seed S --budget N`` scenario sequence.

    Scenario *i* is derived from child ``i`` of ``SeedSequence(seed)``,
    so the sequence is a stable function of (seed, index): growing the
    budget extends it without perturbing earlier entries.
    """
    if seed < 0:
        raise ConfigurationError(
            f"fuzz seed must be a non-negative integer, got {seed} "
            f"(seeds feed numpy.random.SeedSequence, which rejects "
            f"negatives)"
        )
    if budget < 1:
        raise ConfigurationError(
            f"fuzz budget must be >= 1 scenario, got {budget} — pass "
            f"--budget N for N generated scenarios"
        )
    children = np.random.SeedSequence(seed).spawn(budget)
    return [
        generate_scenario(child, name=f"seed{seed}-{i}")
        for i, child in enumerate(children)
    ]
