"""Graph operations used by the partitioners and the runtime.

Everything here is vectorized over numpy/scipy per the hpc-parallel guide:
graph-sized loops are expressed as sparse-matrix operations, never Python
``for`` loops over vertices.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = [
    "to_scipy",
    "from_scipy",
    "connected_components",
    "largest_component",
    "laplacian",
    "bfs_levels",
]


def to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    """The graph's adjacency as a scipy CSR matrix (data = 1.0)."""
    n = graph.num_vertices
    data = np.ones(graph.indices.size, dtype=np.float64)
    return sp.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )


def from_scipy(
    mat: sp.spmatrix,
    *,
    coords: np.ndarray | None = None,
    vertex_weights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from any scipy sparse matrix.

    The matrix is symmetrized (max with its transpose) and the diagonal is
    dropped, so any sparsity pattern becomes a valid computational graph.
    """
    m = sp.csr_matrix(mat)
    if m.shape[0] != m.shape[1]:
        raise GraphError(f"adjacency must be square, got {m.shape}")
    m = m.maximum(m.T)
    m.setdiag(0)
    m.eliminate_zeros()
    coo = m.tocoo()
    mask = coo.row < coo.col
    edges = np.stack([coo.row[mask], coo.col[mask]], axis=1)
    return CSRGraph.from_edges(
        m.shape[0], edges, coords=coords, vertex_weights=vertex_weights
    )


def connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """(number of components, per-vertex component labels)."""
    n_comp, labels = sp.csgraph.connected_components(
        to_scipy(graph), directed=False
    )
    return int(n_comp), labels.astype(np.intp)


def largest_component(graph: CSRGraph) -> CSRGraph:
    """The induced subgraph on the largest connected component.

    Partition quality metrics assume connectivity; mesh generators call this
    to guarantee it.
    """
    n_comp, labels = connected_components(graph)
    if n_comp <= 1:
        return graph
    counts = np.bincount(labels)
    keep = labels == counts.argmax()
    new_id = np.cumsum(keep) - 1
    edges = graph.edge_array()
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    remapped = new_id[edges[mask]]
    coords = None if graph.coords is None else graph.coords[keep]
    weights = (
        None if graph.vertex_weights is None else graph.vertex_weights[keep]
    )
    return CSRGraph.from_edges(
        int(keep.sum()), remapped, coords=coords, vertex_weights=weights
    )


def laplacian(graph: CSRGraph) -> sp.csr_matrix:
    """The combinatorial Laplacian L = D - A (used by spectral bisection)."""
    adj = to_scipy(graph)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return sp.diags(deg).tocsr() - adj


def bfs_levels(graph: CSRGraph, start: int) -> np.ndarray:
    """BFS level of every vertex from *start* (-1 for unreachable).

    Used by tests as an independent locality oracle and by the pseudo-
    peripheral-vertex search in the spectral partitioner fallback.
    """
    if not (0 <= start < graph.num_vertices):
        raise GraphError(f"start vertex {start} out of range")
    order = sp.csgraph.breadth_first_order(
        to_scipy(graph), start, directed=False, return_predecessors=False
    )
    dist = sp.csgraph.shortest_path(
        to_scipy(graph), method="D", unweighted=True, indices=start
    )
    levels = np.where(np.isfinite(dist), dist, -1).astype(np.intp)
    del order
    return levels
