"""Mesh and graph generators for experiments and tests.

The headline generator is :func:`paper_mesh`, a synthetic stand-in for the
paper's Fig. 9 unstructured mesh (30,269 vertices / 44,929 edges): a
Delaunay triangulation of a jittered point cloud, thinned to the paper's
edge/vertex ratio while preserving connectivity and physical locality.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import scipy.sparse as sp
from scipy.spatial import Delaunay

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.mesh import Mesh
from repro.graph.ops import largest_component
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "grid_graph",
    "grid_mesh",
    "grid_mesh_3d",
    "delaunay_mesh",
    "perturbed_grid_mesh",
    "airfoil_mesh",
    "random_geometric_graph",
    "thin_to_edge_count",
    "paper_mesh",
    "streamed_grid_graph",
    "scale_mesh",
    "PAPER_MESH_VERTICES",
    "PAPER_MESH_EDGES",
    "SCALE_TIERS",
    "SCALE_FAMILIES",
]

#: Vertex/edge counts of the paper's Fig. 9 mesh.
PAPER_MESH_VERTICES = 30_269
PAPER_MESH_EDGES = 44_929


def grid_graph(nx: int, ny: int) -> CSRGraph:
    """A structured nx-by-ny grid graph with unit spacing coordinates.

    The regular baseline: every interior vertex has degree 4.
    """
    if nx < 1 or ny < 1:
        raise GraphError(f"grid dimensions must be >= 1, got {nx}x{ny}")
    idx = np.arange(nx * ny).reshape(ny, nx)
    horiz = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    vert = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = np.concatenate([horiz, vert], axis=0)
    xs, ys = np.meshgrid(np.arange(nx, dtype=float), np.arange(ny, dtype=float))
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
    return CSRGraph.from_edges(nx * ny, edges, coords=coords)


def grid_mesh(nx: int, ny: int) -> Mesh:
    """A structured grid triangulated into 2(nx-1)(ny-1) triangles."""
    if nx < 2 or ny < 2:
        raise GraphError("grid_mesh needs nx, ny >= 2")
    xs, ys = np.meshgrid(np.arange(nx, dtype=float), np.arange(ny, dtype=float))
    points = np.stack([xs.ravel(), ys.ravel()], axis=1)
    idx = np.arange(nx * ny).reshape(ny, nx)
    a = idx[:-1, :-1].ravel()
    b = idx[:-1, 1:].ravel()
    c = idx[1:, :-1].ravel()
    d = idx[1:, 1:].ravel()
    tris = np.concatenate(
        [np.stack([a, b, c], axis=1), np.stack([b, d, c], axis=1)], axis=0
    )
    return Mesh(points, tris)


def grid_mesh_3d(nx: int, ny: int, nz: int, *, jitter: float = 0.0,
                 seed: SeedLike = 0) -> Mesh:
    """A structured 3-D grid tetrahedralized (6 tets per cube).

    The paper's graph model covers vertices with "two- or three-dimensional
    coordinates"; this generator provides the 3-D case (optionally jittered
    into an unstructured cloud) for the coordinate-based orderings.
    """
    if nx < 2 or ny < 2 or nz < 2:
        raise GraphError("grid_mesh_3d needs nx, ny, nz >= 2")
    if not (0.0 <= jitter < 0.5):
        raise GraphError(f"jitter must be in [0, 0.5), got {jitter}")
    xs, ys, zs = np.meshgrid(
        np.arange(nx, dtype=float),
        np.arange(ny, dtype=float),
        np.arange(nz, dtype=float),
        indexing="ij",
    )
    points = np.stack([xs.ravel(), ys.ravel(), zs.ravel()], axis=1)
    if jitter:
        rng = as_generator(seed)
        points = points + rng.uniform(-jitter, jitter, size=points.shape)
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    # Corner index arrays for every cube (nx-1, ny-1, nz-1 cubes).
    c000 = idx[:-1, :-1, :-1].ravel()
    c100 = idx[1:, :-1, :-1].ravel()
    c010 = idx[:-1, 1:, :-1].ravel()
    c110 = idx[1:, 1:, :-1].ravel()
    c001 = idx[:-1, :-1, 1:].ravel()
    c101 = idx[1:, :-1, 1:].ravel()
    c011 = idx[:-1, 1:, 1:].ravel()
    c111 = idx[1:, 1:, 1:].ravel()
    # The standard 6-tetrahedron decomposition along the main diagonal
    # c000 -> c111 (all tets share that edge, so the mesh is conforming).
    tet_corners = [
        (c000, c100, c110, c111),
        (c000, c100, c101, c111),
        (c000, c010, c110, c111),
        (c000, c010, c011, c111),
        (c000, c001, c101, c111),
        (c000, c001, c011, c111),
    ]
    cells = np.concatenate(
        [np.stack(t, axis=1) for t in tet_corners], axis=0
    ).astype(np.intp)
    return Mesh(points, cells)


def delaunay_mesh(points: np.ndarray) -> Mesh:
    """The Delaunay triangulation of an arbitrary 2-D point cloud."""
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GraphError(f"delaunay_mesh expects (n, 2) points, got {pts.shape}")
    if pts.shape[0] < 3:
        raise GraphError("delaunay_mesh needs at least 3 points")
    tri = Delaunay(pts)
    return Mesh(pts, tri.simplices.astype(np.intp))


def perturbed_grid_mesh(
    nx: int, ny: int, *, jitter: float = 0.35, seed: SeedLike = 0
) -> Mesh:
    """A Delaunay mesh over a jittered grid: unstructured but uniform density.

    This is the workhorse synthetic "unstructured mesh from the physical
    domain" — vertices have 2-D coordinates and interactions are physically
    proximate, the property Sec. 3.1's transformations rely on.
    """
    if not (0.0 <= jitter < 0.5):
        raise GraphError(f"jitter must be in [0, 0.5), got {jitter}")
    rng = as_generator(seed)
    xs, ys = np.meshgrid(np.arange(nx, dtype=float), np.arange(ny, dtype=float))
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1)
    pts += rng.uniform(-jitter, jitter, size=pts.shape)
    return delaunay_mesh(pts)


def airfoil_mesh(
    n_points: int = 4000,
    *,
    seed: SeedLike = 0,
    chord: float = 4.0,
    thickness: float = 0.5,
) -> Mesh:
    """An airfoil-in-a-channel mesh: nonconvex domain, graded density.

    Points cluster near an elliptic "airfoil" cut out of a rectangular
    channel — the classic unstructured-CFD workload the paper's mesh comes
    from.  Triangles inside the airfoil are removed, making the domain
    nonconvex (so orderings must respect holes, a harder locality test than
    a convex cloud).
    """
    if n_points < 100:
        raise GraphError("airfoil_mesh needs at least 100 points")
    rng = as_generator(seed)
    # Channel: [-2c, 3c] x [-1.5c, 1.5c]; airfoil: ellipse at origin.
    width, height = 5.0 * chord, 3.0 * chord

    def inside_airfoil(p: np.ndarray) -> np.ndarray:
        return (p[:, 0] / (chord / 2.0)) ** 2 + (
            p[:, 1] / (thickness * chord / 2.0)
        ) ** 2 < 1.0

    # Graded sampling: more points near the airfoil surface.
    n_far = n_points // 2
    far = np.empty((n_far, 2))
    far[:, 0] = rng.uniform(-2.0 * chord, 3.0 * chord, n_far)
    far[:, 1] = rng.uniform(-1.5 * chord, 1.5 * chord, n_far)
    n_near = n_points - n_far
    theta = rng.uniform(0.0, 2.0 * math.pi, n_near)
    radial = 1.0 + rng.exponential(0.35, n_near)
    near = np.stack(
        [
            radial * (chord / 2.0) * np.cos(theta),
            radial * (thickness * chord / 2.0) * np.sin(theta),
        ],
        axis=1,
    )
    keep_near = (np.abs(near[:, 0]) < width / 2.0 + chord) & (
        np.abs(near[:, 1]) < height / 2.0
    )
    pts = np.concatenate([far, near[keep_near]], axis=0)
    pts = pts[~inside_airfoil(pts)]
    tri = Delaunay(pts)
    centroids = pts[tri.simplices].mean(axis=1)
    cells = tri.simplices[~inside_airfoil(centroids)].astype(np.intp)
    used = np.unique(cells)
    remap = -np.ones(pts.shape[0], dtype=np.intp)
    remap[used] = np.arange(used.size)
    return Mesh(pts[used], remap[cells])


def random_geometric_graph(
    n: int,
    radius: float | None = None,
    *,
    seed: SeedLike = 0,
    dim: int = 2,
) -> CSRGraph:
    """Uniform points in the unit square/cube, edges within *radius*.

    Default radius targets mean degree ~6 (triangulation-like).  The
    largest connected component is returned.
    """
    if n < 2:
        raise GraphError("random_geometric_graph needs n >= 2")
    if dim not in (2, 3):
        raise GraphError(f"dim must be 2 or 3, got {dim}")
    rng = as_generator(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, dim))
    if radius is None:
        target_degree = 6.0
        if dim == 2:
            radius = math.sqrt(target_degree / (math.pi * n))
        else:
            radius = (target_degree * 3.0 / (4.0 * math.pi * n)) ** (1.0 / 3.0)
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    graph = CSRGraph.from_edges(n, pairs, coords=pts)
    return largest_component(graph)


def thin_to_edge_count(
    graph: CSRGraph, m_target: int, *, seed: SeedLike = 0
) -> CSRGraph:
    """Remove edges down to *m_target* while keeping the graph connected.

    A spanning tree is always retained; beyond that, the geometrically
    longest edges are dropped first so the surviving edges stay local
    (physically proximate interactions, per the paper's graph model).
    """
    m = graph.num_edges
    n = graph.num_vertices
    if m_target > m:
        raise GraphError(f"cannot thin {m} edges up to {m_target}")
    if m_target < n - 1:
        raise GraphError(
            f"thinning below a spanning tree ({n - 1} edges) would disconnect"
        )
    if m_target == m:
        return graph
    edges = graph.edge_array()
    if graph.coords is not None:
        lengths = np.linalg.norm(
            graph.coords[edges[:, 0]] - graph.coords[edges[:, 1]], axis=1
        )
    else:
        lengths = as_generator(seed).uniform(size=edges.shape[0])
    # Build a spanning tree over shortest edges first (Kruskal via scipy MST).
    w = sp.csr_matrix(
        (lengths + 1e-12, (edges[:, 0], edges[:, 1])), shape=(n, n)
    )
    mst = sp.csgraph.minimum_spanning_tree(w).tocoo()
    tree_keys = set(
        zip(
            np.minimum(mst.row, mst.col).tolist(),
            np.maximum(mst.row, mst.col).tolist(),
        )
    )
    in_tree = np.fromiter(
        ((int(u), int(v)) in tree_keys for u, v in edges),
        dtype=bool,
        count=edges.shape[0],
    )
    extra_needed = m_target - int(in_tree.sum())
    non_tree_idx = np.flatnonzero(~in_tree)
    keep_extra = non_tree_idx[np.argsort(lengths[non_tree_idx])[:extra_needed]]
    keep = np.zeros(edges.shape[0], dtype=bool)
    keep[in_tree] = True
    keep[keep_extra] = True
    return CSRGraph.from_edges(
        n, edges[keep], coords=graph.coords, vertex_weights=graph.vertex_weights
    )


#: Named mesh sizes of the scale benchmark tier (target vertex counts; the
#: generated mesh lands within a percent or two of the target).
SCALE_TIERS = {
    "10k": 10_000,
    "100k": 100_000,
    "250k": 250_000,
    "500k": 500_000,
    "1m": 1_000_000,
    "4m": 4_000_000,
    "10m": 10_000_000,
}

#: Graph families available at scale-tier sizes.
SCALE_FAMILIES = ("grid", "geometric")


def streamed_grid_graph(
    nx: int, ny: int, *, block_rows: int = 256, with_coords: bool = True
) -> CSRGraph:
    """A structured grid built straight into CSR form, block by block.

    Identical to :func:`grid_graph` (same adjacency, same sorted neighbor
    order, same coordinates) but never materializes the global edge list:
    ``indptr`` comes from a closed-form degree formula and ``indices`` is
    filled in row blocks of bounded size, so peak construction memory is
    the output CSR plus O(``block_rows`` * nx) scratch.  This is what lets
    the scale tier construct multi-million-vertex meshes without the 4x
    edge-array blowup of the edge-list path.
    """
    if nx < 1 or ny < 1:
        raise GraphError(f"grid dimensions must be >= 1, got {nx}x{ny}")
    if block_rows < 1:
        raise GraphError(f"block_rows must be >= 1, got {block_rows}")
    cols = np.arange(nx, dtype=np.intp)
    # Closed-form degrees: 4 minus one per domain boundary the vertex sits on.
    row_deg = np.full(nx, 4, dtype=np.intp)
    row_deg[0] -= 1
    row_deg[-1] -= 1
    deg = np.tile(row_deg, ny)
    if ny == 1:
        deg -= 2  # no north and no south anywhere
    else:
        deg[:nx] -= 1       # first row: no north
        deg[-nx:] -= 1      # last row: no south
    indptr = np.concatenate([[0], np.cumsum(deg)]).astype(np.intp)
    indices = np.empty(int(indptr[-1]), dtype=np.intp)
    for r0 in range(0, ny, block_rows):
        r1 = min(r0 + block_rows, ny)
        rows = np.arange(r0, r1, dtype=np.intp)
        vs = rows[:, None] * nx + cols[None, :]
        # Candidate neighbors in ascending index order: N, W, E, S.
        cand = np.stack([vs - nx, vs - 1, vs + 1, vs + nx], axis=2)
        valid = np.stack(
            [
                np.broadcast_to((rows > 0)[:, None], vs.shape),
                np.broadcast_to((cols > 0)[None, :], vs.shape),
                np.broadcast_to((cols < nx - 1)[None, :], vs.shape),
                np.broadcast_to((rows < ny - 1)[:, None], vs.shape),
            ],
            axis=2,
        )
        indices[indptr[r0 * nx] : indptr[r1 * nx]] = cand[valid]
    coords = None
    if with_coords:
        xs, ys = np.meshgrid(
            np.arange(nx, dtype=float), np.arange(ny, dtype=float)
        )
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
    return CSRGraph(indptr, indices, coords=coords)


def scale_mesh(
    tier: str, *, family: str = "grid", seed: SeedLike = 0, exact: bool = False
) -> CSRGraph:
    """A scale-tier workload mesh: ``tier`` names the target vertex count.

    ``family="grid"`` is a square structured grid built with
    :func:`streamed_grid_graph` (exactly ``round(sqrt(n))**2`` vertices,
    natural row-major order — already a good 1-D ordering).  For tiers
    whose target is not a perfect square (100k, 500k, 10m) the grid
    therefore lands *near* the target, not on it: 100k -> 99,856
    (316x316), 500k -> 499,849 (707x707), 10m -> 9,998,244 (3162x3162).
    A :class:`RuntimeWarning` notes the deviation; pass ``exact=True`` to
    turn it into a :class:`GraphError` instead for callers that require
    the nominal count.  ``family="geometric"`` is a random geometric
    graph at mean degree ~6 (its largest connected component, so counts
    land slightly under the target; ``exact`` does not apply).
    """
    if tier not in SCALE_TIERS:
        known = ", ".join(SCALE_TIERS)
        raise GraphError(f"unknown scale tier {tier!r}; known: {known}")
    n = SCALE_TIERS[tier]
    if family == "grid":
        side = int(round(math.sqrt(n)))
        if side * side != n:
            if exact:
                raise GraphError(
                    f"scale tier {tier!r} targets {n} vertices but the "
                    f"square grid family only builds {side}x{side} = "
                    f"{side * side}; use a square tier or exact=False"
                )
            warnings.warn(
                f"scale_mesh({tier!r}, family='grid') builds {side}x{side} "
                f"= {side * side} vertices, not the nominal {n}",
                RuntimeWarning,
                stacklevel=2,
            )
        return streamed_grid_graph(side, side)
    if family == "geometric":
        return random_geometric_graph(n, seed=seed)
    raise GraphError(
        f"unknown scale family {family!r}; known: {', '.join(SCALE_FAMILIES)}"
    )


def paper_mesh(
    n_vertices: int = PAPER_MESH_VERTICES,
    n_edges: int | None = None,
    *,
    seed: SeedLike = 1995,
) -> CSRGraph:
    """A synthetic stand-in for the paper's Fig. 9 mesh.

    Builds a jittered-grid Delaunay mesh with ``n_vertices`` points and
    thins it to the paper's edge/vertex ratio (44,929 / 30,269 ≈ 1.484 by
    default).  Connectivity and 2-D locality are preserved, so partition
    quality and communication volume behave like the original workload.
    """
    if n_vertices < 9:
        raise GraphError("paper_mesh needs at least 9 vertices")
    if n_edges is None:
        n_edges = int(round(n_vertices * PAPER_MESH_EDGES / PAPER_MESH_VERTICES))
    side = int(math.ceil(math.sqrt(n_vertices)))
    mesh = perturbed_grid_mesh(side, side, jitter=0.35, seed=seed)
    graph = mesh.graph
    if graph.num_vertices > n_vertices:
        # Trim to exactly n_vertices by dropping the last grid points, then
        # keep the largest component.
        keep = np.zeros(graph.num_vertices, dtype=bool)
        keep[:n_vertices] = True
        edges = graph.edge_array()
        mask = keep[edges[:, 0]] & keep[edges[:, 1]]
        graph = largest_component(
            CSRGraph.from_edges(
                n_vertices, edges[mask], coords=graph.coords[:n_vertices]
            )
        )
    n_edges = min(n_edges, graph.num_edges)
    n_edges = max(n_edges, graph.num_vertices - 1)
    return thin_to_edge_count(graph, n_edges, seed=seed)
