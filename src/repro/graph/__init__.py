"""Computational-graph substrate: CSR graphs, meshes, generators, metrics."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    PAPER_MESH_EDGES,
    PAPER_MESH_VERTICES,
    airfoil_mesh,
    delaunay_mesh,
    grid_graph,
    grid_mesh,
    grid_mesh_3d,
    paper_mesh,
    perturbed_grid_mesh,
    random_geometric_graph,
    thin_to_edge_count,
)
from repro.graph.io import (
    load_graph_npz,
    load_mesh_npz,
    read_chaco,
    save_graph_npz,
    save_mesh_npz,
    write_chaco,
)
from repro.graph.mesh import Mesh
from repro.graph.metrics import (
    boundary_vertices,
    cut_curve,
    edge_cut,
    load_imbalance,
    locality_profile,
    mean_edge_span,
    ordering_bandwidth,
    partition_sizes,
)
from repro.graph.ops import (
    bfs_levels,
    connected_components,
    from_scipy,
    laplacian,
    largest_component,
    to_scipy,
)

__all__ = [
    "CSRGraph",
    "Mesh",
    "PAPER_MESH_EDGES",
    "PAPER_MESH_VERTICES",
    "airfoil_mesh",
    "bfs_levels",
    "boundary_vertices",
    "connected_components",
    "cut_curve",
    "delaunay_mesh",
    "edge_cut",
    "from_scipy",
    "grid_graph",
    "grid_mesh",
    "grid_mesh_3d",
    "laplacian",
    "largest_component",
    "load_graph_npz",
    "load_imbalance",
    "load_mesh_npz",
    "locality_profile",
    "mean_edge_span",
    "ordering_bandwidth",
    "paper_mesh",
    "partition_sizes",
    "perturbed_grid_mesh",
    "random_geometric_graph",
    "read_chaco",
    "save_graph_npz",
    "save_mesh_npz",
    "thin_to_edge_count",
    "to_scipy",
    "write_chaco",
]
