"""Partition and ordering quality metrics.

These quantify the two goals of Sec. 1 — load balance and data locality —
plus 1-D-specific measures of how well an ordering "encapsulates the
locality" of the graph (Sec. 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_permutation

__all__ = [
    "edge_cut",
    "boundary_vertices",
    "partition_sizes",
    "load_imbalance",
    "ordering_bandwidth",
    "mean_edge_span",
    "locality_profile",
    "cut_curve",
]


def _check_labels(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.intp)
    if labels.shape != (graph.num_vertices,):
        raise PartitionError(
            f"labels shape {labels.shape} != ({graph.num_vertices},)"
        )
    if labels.size and labels.min() < 0:
        raise PartitionError("negative partition labels")
    return labels


def edge_cut(graph: CSRGraph, labels: np.ndarray) -> int:
    """Number of undirected edges whose endpoints lie in different parts.

    Each cross edge is one nonlocal access per iteration in each direction,
    so the cut is the communication *volume* proxy the partitioners minimize.
    """
    labels = _check_labels(graph, labels)
    edges = graph.edge_array()
    if edges.size == 0:
        return 0
    return int(np.count_nonzero(labels[edges[:, 0]] != labels[edges[:, 1]]))


def boundary_vertices(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Boolean mask of vertices with at least one cross-partition edge.

    These are exactly the vertices the executor must gather/scatter.
    """
    labels = _check_labels(graph, labels)
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.intp), np.diff(graph.indptr))
    cross = labels[src] != labels[graph.indices]
    mask = np.zeros(n, dtype=bool)
    np.logical_or.at(mask, src[cross], True)
    return mask


def partition_sizes(labels: np.ndarray, num_parts: int) -> np.ndarray:
    """Vertex count per part (length ``num_parts``)."""
    labels = np.asarray(labels, dtype=np.intp)
    if labels.size and labels.max() >= num_parts:
        raise PartitionError(
            f"label {labels.max()} out of range for {num_parts} parts"
        )
    return np.bincount(labels, minlength=num_parts)


def load_imbalance(
    labels: np.ndarray,
    weights: np.ndarray,
    capabilities: np.ndarray,
) -> float:
    """max over parts of (assigned weight share / capability share).

    1.0 means every processor got work exactly proportional to its power
    (the paper's load-balance goal); 2.0 means some processor got twice its
    fair share.
    """
    labels = np.asarray(labels, dtype=np.intp)
    weights = np.asarray(weights, dtype=np.float64)
    cap = np.asarray(capabilities, dtype=np.float64)
    if weights.shape != labels.shape:
        raise PartitionError("weights and labels must have equal length")
    if np.any(cap <= 0):
        raise PartitionError("capabilities must be positive")
    p = cap.size
    part_w = np.bincount(labels, weights=weights, minlength=p)
    if labels.size and labels.max() >= p:
        raise PartitionError(f"label {labels.max()} >= {p} parts")
    share = part_w / weights.sum()
    fair = cap / cap.sum()
    return float(np.max(share / fair))


def ordering_bandwidth(graph: CSRGraph, perm: np.ndarray) -> int:
    """max |perm[u] - perm[v]| over edges: worst-case 1-D stretch."""
    perm = check_permutation(perm, graph.num_vertices)
    edges = graph.edge_array()
    if edges.size == 0:
        return 0
    return int(np.abs(perm[edges[:, 0]] - perm[edges[:, 1]]).max())


def mean_edge_span(graph: CSRGraph, perm: np.ndarray) -> float:
    """mean |perm[u] - perm[v]| over edges: average 1-D stretch.

    A good locality-improving transformation keeps this near the O(sqrt(n))
    of a planar mesh; a random permutation pushes it to ~n/3.
    """
    perm = check_permutation(perm, graph.num_vertices)
    edges = graph.edge_array()
    if edges.size == 0:
        return 0.0
    return float(np.abs(perm[edges[:, 0]] - perm[edges[:, 1]]).mean())


def cut_curve(
    graph: CSRGraph, perm: np.ndarray, part_counts: list[int] | np.ndarray
) -> dict[int, int]:
    """Edge cut of contiguous equal splits of the 1-D list, per part count.

    This operationalizes Sec. 3.1's goal — "achieve good partitioning for a
    wide range of partitions": one ordering is evaluated under many
    partition counts by splitting [0, n) into equal contiguous blocks.
    """
    perm = check_permutation(perm, graph.num_vertices)
    n = graph.num_vertices
    result: dict[int, int] = {}
    for p in part_counts:
        p = int(p)
        if p < 1:
            raise PartitionError(f"part count must be >= 1, got {p}")
        # Equal contiguous blocks over the 1-D positions.
        labels_1d = (perm.astype(np.float64) * p / n).astype(np.intp)
        labels_1d = np.minimum(labels_1d, p - 1)
        result[p] = edge_cut(graph, labels_1d)
    return result


def locality_profile(
    graph: CSRGraph,
    perm: np.ndarray,
    part_counts: list[int] | np.ndarray = (2, 4, 8, 16, 32),
) -> dict[str, object]:
    """Summary of an ordering's 1-D locality quality."""
    return {
        "bandwidth": ordering_bandwidth(graph, perm),
        "mean_span": mean_edge_span(graph, perm),
        "cut_curve": cut_curve(graph, perm, list(part_counts)),
    }
