"""Unstructured meshes: coordinates + triangles + the derived graph.

The paper's experimental workload is an unstructured 2-D mesh (Fig. 9:
30,269 vertices, 44,929 edges) whose edges define the irregular loop's
indirection array.  A :class:`Mesh` couples the geometry (needed by the
coordinate-based orderings of Sec. 3.1) to the computational graph (needed
by the inspector/executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["Mesh"]


@dataclass(frozen=True)
class Mesh:
    """A triangulated 2-D (or tetrahedral 3-D) mesh.

    ``points`` is (n, dim); ``cells`` is (t, dim+1) vertex indices per
    simplex.  The computational graph has one vertex per mesh point and one
    edge per simplex edge.
    """

    points: np.ndarray
    cells: np.ndarray

    def __post_init__(self) -> None:
        pts = np.ascontiguousarray(self.points, dtype=np.float64)
        cells = np.ascontiguousarray(self.cells, dtype=np.intp)
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "cells", cells)
        if pts.ndim != 2 or pts.shape[1] not in (2, 3):
            raise GraphError(f"points must be (n, 2) or (n, 3), got {pts.shape}")
        dim = pts.shape[1]
        if cells.ndim != 2 or cells.shape[1] != dim + 1:
            raise GraphError(
                f"cells must be (t, {dim + 1}) for dim={dim}, got {cells.shape}"
            )
        if cells.size and (cells.min() < 0 or cells.max() >= pts.shape[0]):
            raise GraphError("cell vertex indices out of range")

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        return self.cells.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @cached_property
    def graph(self) -> CSRGraph:
        """The computational graph induced by the simplex edges."""
        k = self.cells.shape[1]
        pairs = [
            self.cells[:, [i, j]] for i in range(k) for j in range(i + 1, k)
        ]
        edges = np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), np.intp)
        return CSRGraph.from_edges(self.num_points, edges, coords=self.points)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:
        return (
            f"Mesh(points={self.num_points}, cells={self.num_cells}, "
            f"edges={self.num_edges}, dim={self.dim})"
        )
