"""Compressed-sparse-row computational graphs.

The paper (Sec. 3.1) views unstructured data-parallel applications as
*computational graphs*: vertices are concurrent tasks (mesh nodes), edges are
interactions.  A :class:`CSRGraph` stores the symmetric adjacency structure
in CSR form — exactly the "indirection array" layout of the Fig. 8 loop
(``ia`` is our ``indices``; the per-vertex counts are encoded by ``indptr``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.utils.validation import check_permutation

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An undirected graph in CSR form.

    Invariants (validated at construction):

    * ``indptr`` has length ``n + 1``, is non-decreasing, starts at 0;
    * ``indices[indptr[v]:indptr[v+1]]`` are the neighbors of vertex ``v``;
    * adjacency is symmetric (u in adj(v) iff v in adj(u)) with no
      self-loops — the symmetry is what schedule_sort1/sort2 exploit;
    * ``coords`` (optional) holds the vertices' physical 2-D/3-D positions,
      required by the coordinate-based orderings (RCB, inertial, SFC).
    """

    indptr: np.ndarray
    indices: np.ndarray
    coords: np.ndarray | None = None
    vertex_weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.intp)
        indices = np.ascontiguousarray(self.indices, dtype=np.intp)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if indptr.ndim != 1 or indptr.size < 1:
            raise GraphError("indptr must be a 1-D array of length n+1")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1]={indptr[-1]} disagrees with len(indices)={indices.size}"
            )
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("neighbor indices out of range")
        if self.coords is not None:
            coords = np.ascontiguousarray(self.coords, dtype=np.float64)
            object.__setattr__(self, "coords", coords)
            if coords.ndim != 2 or coords.shape[0] != n or coords.shape[1] not in (2, 3):
                raise GraphError(
                    f"coords must be (n, 2) or (n, 3), got {coords.shape}"
                )
        if self.vertex_weights is not None:
            w = np.ascontiguousarray(self.vertex_weights, dtype=np.float64)
            object.__setattr__(self, "vertex_weights", w)
            if w.shape != (n,):
                raise GraphError(f"vertex_weights must have shape ({n},)")
            if np.any(w < 0):
                raise GraphError("vertex_weights must be non-negative")
        self._check_symmetric()

    def _check_symmetric(self) -> None:
        n = self.num_vertices
        if self.indices.size == 0:
            return
        src = np.repeat(np.arange(n, dtype=np.intp), np.diff(self.indptr))
        if np.any(src == self.indices):
            raise GraphError("graph has self-loops")
        fwd = src * n + self.indices
        rev = self.indices * n + src
        if not np.array_equal(np.sort(fwd), np.sort(rev)):
            raise GraphError("adjacency is not symmetric")

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice in CSR)."""
        return self.indices.size // 2

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def dim(self) -> int | None:
        """Embedding dimension (2 or 3), or None for abstract graphs."""
        return None if self.coords is None else self.coords.shape[1]

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor view for vertex *v* (no copy)."""
        if not (0 <= v < self.num_vertices):
            raise GraphError(f"vertex {v} out of range")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def weights(self) -> np.ndarray:
        """Vertex computational weights (default: uniform 1.0)."""
        if self.vertex_weights is not None:
            return self.vertex_weights
        return np.ones(self.num_vertices)

    def edge_array(self) -> np.ndarray:
        """(m, 2) array of undirected edges with u < v, sorted."""
        n = self.num_vertices
        src = np.repeat(np.arange(n, dtype=np.intp), np.diff(self.indptr))
        mask = src < self.indices
        edges = np.stack([src[mask], self.indices[mask]], axis=1)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edge_array():
            yield int(u), int(v)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_edges(
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        coords: np.ndarray | None = None,
        vertex_weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a symmetric CSR graph from an undirected edge list.

        Duplicate edges and self-loops are dropped.
        """
        if n < 0:
            raise GraphError(f"vertex count must be >= 0, got {n}")
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = np.empty((0, 2), dtype=np.intp)
        arr = arr.reshape(-1, 2).astype(np.intp)
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise GraphError("edge endpoints out of range")
        arr = arr[arr[:, 0] != arr[:, 1]]  # drop self-loops
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        if lo.size:
            key = lo * np.intp(n) + hi
            _, unique_idx = np.unique(key, return_index=True)
            lo, hi = lo[unique_idx], hi[unique_idx]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(indptr, src + 1, 1)
        indptr = np.cumsum(indptr)
        return CSRGraph(indptr, dst, coords=coords, vertex_weights=vertex_weights)

    def permute(self, perm: Sequence[int] | np.ndarray) -> "CSRGraph":
        """Relabel vertices: new label of old vertex ``v`` is ``perm[v]``.

        This applies the 1-D locality transformation T: V -> {0..n-1} of
        Sec. 3.1: vertex ``v`` of the input becomes vertex ``perm[v]`` of
        the output, with coords and weights carried along.
        """
        n = self.num_vertices
        perm = check_permutation(perm, n)
        inv = np.empty(n, dtype=np.intp)
        inv[perm] = np.arange(n, dtype=np.intp)
        edges = self.edge_array()
        new_edges = perm[edges]
        coords = None if self.coords is None else self.coords[inv]
        weights = (
            None if self.vertex_weights is None else self.vertex_weights[inv]
        )
        return CSRGraph.from_edges(
            n, new_edges, coords=coords, vertex_weights=weights
        )

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"dim={self.dim})"
        )
