"""Save/load graphs and meshes.

Two formats:

* ``.npz`` — exact binary round-trip via numpy (preferred).
* Chaco/METIS-style text — one header line ``n m`` then one line of
  neighbors per vertex (1-based), optionally preceded by coordinates; kept
  for interchange with classic partitioning tools, which is how meshes like
  Fig. 9's circulated in the mid-90s.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.mesh import Mesh

__all__ = [
    "save_graph_npz",
    "load_graph_npz",
    "save_mesh_npz",
    "load_mesh_npz",
    "write_chaco",
    "read_chaco",
]


def save_graph_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph (structure + coords + weights) to an ``.npz`` file."""
    payload: dict[str, np.ndarray] = {
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.coords is not None:
        payload["coords"] = graph.coords
    if graph.vertex_weights is not None:
        payload["vertex_weights"] = graph.vertex_weights
    np.savez_compressed(Path(path), **payload)


def load_graph_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_graph_npz`."""
    with np.load(Path(path)) as data:
        return CSRGraph(
            indptr=data["indptr"],
            indices=data["indices"],
            coords=data["coords"] if "coords" in data else None,
            vertex_weights=(
                data["vertex_weights"] if "vertex_weights" in data else None
            ),
        )


def save_mesh_npz(mesh: Mesh, path: str | os.PathLike) -> None:
    """Save a mesh (points + cells) to an ``.npz`` file."""
    np.savez_compressed(Path(path), points=mesh.points, cells=mesh.cells)


def load_mesh_npz(path: str | os.PathLike) -> Mesh:
    """Load a mesh saved by :func:`save_mesh_npz`."""
    with np.load(Path(path)) as data:
        return Mesh(points=data["points"], cells=data["cells"])


def write_chaco(graph: CSRGraph, path: str | os.PathLike, *, coords: bool = True) -> None:
    """Write a graph in Chaco/METIS text format (1-based adjacency lists)."""
    n = graph.num_vertices
    with open(Path(path), "w", encoding="ascii") as fh:
        has_coords = coords and graph.coords is not None
        fh.write(f"{n} {graph.num_edges}\n")
        for v in range(n):
            neigh = " ".join(str(int(u) + 1) for u in graph.neighbors(v))
            if has_coords:
                xy = " ".join(f"{c:.10g}" for c in graph.coords[v])
                fh.write(f"# {xy}\n")
            fh.write(neigh + "\n")


def read_chaco(path: str | os.PathLike) -> CSRGraph:
    """Read a graph written by :func:`write_chaco`."""
    lines = Path(path).read_text(encoding="ascii").splitlines()
    if not lines:
        raise GraphError(f"{path}: empty Chaco file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"{path}: malformed header {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    edges: list[tuple[int, int]] = []
    coords: list[list[float]] = []
    v = 0
    for line in lines[1:]:
        line = line.strip()
        if not line:
            v += 1  # isolated vertex: empty adjacency line
            continue
        if line.startswith("#"):
            coords.append([float(x) for x in line[1:].split()])
            continue
        for tok in line.split():
            u = int(tok) - 1
            if not (0 <= u < n):
                raise GraphError(f"{path}: neighbor {tok} out of range")
            if u > v:
                edges.append((v, u))
        v += 1
    if v != n:
        raise GraphError(f"{path}: expected {n} adjacency lines, got {v}")
    coord_arr = np.array(coords) if len(coords) == n else None
    graph = CSRGraph.from_edges(n, edges, coords=coord_arr)
    if graph.num_edges != m:
        raise GraphError(
            f"{path}: header claims {m} edges, file has {graph.num_edges}"
        )
    return graph
