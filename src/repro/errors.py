"""Exception hierarchy for the STANCE reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating here with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CommunicationError",
    "MailboxClosedError",
    "RankFailedError",
    "PartitionError",
    "OrderingError",
    "TranslationError",
    "ScheduleError",
    "RedistributionError",
    "LoadBalanceError",
    "ResilienceError",
    "ResilienceWarning",
    "GraphError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid cluster, network, or runtime configuration was supplied."""


class CommunicationError(ReproError):
    """A message-passing operation failed (bad rank, tag, or buffer)."""


class MailboxClosedError(CommunicationError):
    """A receive was attempted on a mailbox that has been shut down."""


class RankFailedError(ReproError):
    """One or more SPMD ranks raised an exception.

    Attributes
    ----------
    failures:
        Mapping of rank -> the exception raised by that rank.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = next(iter(self.failures.values()))
        super().__init__(
            f"{len(self.failures)} SPMD rank(s) failed (ranks {ranks}); "
            f"first error: {first!r}"
        )


class PartitionError(ReproError):
    """Interval partitioning or arrangement computation failed."""


class OrderingError(PartitionError):
    """A one-dimensional ordering is invalid (not a permutation, etc.)."""


class TranslationError(ReproError):
    """Global-to-local index translation failed (index out of range, etc.)."""


class ScheduleError(ReproError):
    """Communication-schedule construction or application failed."""


class RedistributionError(ReproError):
    """Data redistribution between interval partitions failed."""


class LoadBalanceError(ReproError):
    """The adaptive load-balancing protocol failed."""


class ResilienceError(ReproError):
    """Checkpointing or failure recovery failed (or is impossible —
    e.g. a rank failed with no checkpoint policy configured, or both a
    data owner and its replica partner died within one epoch)."""


class ResilienceWarning(UserWarning):
    """A resilience configuration was accepted but degraded — e.g. a
    replication factor larger than the active pool can honor, capped to
    the widest ring available."""


class GraphError(ReproError):
    """A computational graph or mesh is malformed."""
