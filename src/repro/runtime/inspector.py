"""The inspector (paper phase B): translate indices, generate schedules.

"Parallel loops can be transformed into an inspector and an executor.  The
inspector examines the data references and computes the off-processor data
to be fetched.  It also computes where the data will be stored once it is
received." (Sec. 2)

:func:`run_inspector` bundles the three strategy-specific schedule builders
with the kernel-plan address translation into the single per-rank
preprocessing step the executor phase consumes.  It is re-run whenever data
is redistributed (Sec. 3: "In adaptive environments ... phase B is executed
whenever data is redistributed").
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.kernels import KernelPlan, build_kernel_plan
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    InspectorCostModel,
    build_schedule_simple,
    build_schedule_sort1,
    build_schedule_sort2,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["STRATEGIES", "InspectorResult", "run_inspector"]

#: The schedule-construction strategies of Table 3.
STRATEGIES = ("simple", "sort1", "sort2")


@dataclass(frozen=True)
class InspectorResult:
    """Everything the executor phase needs for one partition epoch."""

    schedule: CommSchedule
    kernel_plan: KernelPlan
    strategy: str
    build_time: float  # virtual seconds spent building (0 if no ctx)


def run_inspector(
    graph: CSRGraph,
    partition: IntervalPartition,
    rank: int,
    *,
    strategy: str = "sort2",
    ctx: "RankContext | None" = None,
    cost_model: InspectorCostModel = InspectorCostModel(),
    backend: str | None = None,
) -> InspectorResult:
    """Build this rank's communication schedule and kernel plan.

    ``strategy`` is one of :data:`STRATEGIES`.  The ``simple`` strategy is
    an SPMD collective and therefore requires *ctx*; the sorting strategies
    run locally (ctx, when given, only receives the virtual time charge).

    ``backend`` selects the ``reference`` (scalar loop) or ``vectorized``
    (bulk numpy) implementation of the hot paths; both yield bit-identical
    schedules and plans and the same virtual-time charges.
    """
    if strategy not in STRATEGIES:
        raise ScheduleError(
            f"unknown inspector strategy {strategy!r}; pick from {STRATEGIES}"
        )
    t0 = ctx.clock if ctx is not None else 0.0
    tracer = getattr(ctx, "tracer", None)
    span = (
        tracer.span("inspector", label=strategy)
        if tracer is not None
        else nullcontext()
    )
    with span:
        if strategy == "simple":
            if ctx is None:
                raise ScheduleError(
                    "the 'simple' strategy is communication-based and needs "
                    "a RankContext"
                )
            if ctx.rank != rank:
                raise ScheduleError(
                    f"ctx.rank={ctx.rank} disagrees with rank={rank}"
                )
            schedule = build_schedule_simple(
                graph, partition, ctx=ctx, cost_model=cost_model,
                backend=backend,
            )
        elif strategy == "sort1":
            schedule = build_schedule_sort1(
                graph, partition, rank, ctx=ctx, cost_model=cost_model,
                backend=backend,
            )
        else:
            schedule = build_schedule_sort2(
                graph, partition, rank, ctx=ctx, cost_model=cost_model,
                backend=backend,
            )
        plan = build_kernel_plan(graph, partition, schedule, backend=backend)
    build_time = (ctx.clock - t0) if ctx is not None else 0.0
    if ctx is not None:
        metrics = getattr(ctx, "metrics", None)
        if metrics is not None:
            metrics.count("inspector.full_builds")
            metrics.observe("inspector.build_time", build_time)
    return InspectorResult(
        schedule=schedule,
        kernel_plan=plan,
        strategy=strategy,
        build_time=build_time,
    )
