"""Efficiency metrics for nonuniform and adaptive environments (Sec. 4).

Static/nonuniform:  E(p_1..p_n) = (1/T(all)) / sum_i 1/T(p_i)
where T(p_i) is the time processor i alone would need for the whole task.

Adaptive:  E = 1 / sum_i f_i(T), where f_i(T) is the fraction of the task
processor i *could* have completed during the parallel run's duration T.
The paper notes f_i is hard to measure on real machines; our simulated
processors integrate their capability traces exactly, so we can report it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.cluster import ClusterSpec

__all__ = [
    "nonuniform_efficiency",
    "adaptive_efficiency",
    "sequential_times",
    "cluster_efficiency",
    "adaptive_cluster_efficiency",
]


def nonuniform_efficiency(
    parallel_time: float, sequential_times_: Sequence[float]
) -> float:
    """E = (1/T_par) / sum_i (1/T_i) — Sec. 4's static definition.

    Equals classic efficiency T_seq/(p*T_par) when all machines are equal;
    bounded by 1 when there are no parallelization overheads.
    """
    if parallel_time <= 0:
        raise ConfigurationError(f"parallel_time must be > 0, got {parallel_time}")
    seq = np.asarray(sequential_times_, dtype=np.float64)
    if seq.size == 0 or np.any(seq <= 0):
        raise ConfigurationError("sequential times must be positive")
    return float((1.0 / parallel_time) / np.sum(1.0 / seq))


def adaptive_efficiency(fractions: Sequence[float]) -> float:
    """E = 1 / sum_i f_i(T) — Sec. 4's adaptive definition.

    ``fractions[i]`` is the fraction of the whole task processor i could
    have completed alone during the parallel run.
    """
    f = np.asarray(fractions, dtype=np.float64)
    if f.size == 0 or np.any(f < 0):
        raise ConfigurationError("fractions must be non-negative")
    total = float(f.sum())
    if total <= 0:
        raise ConfigurationError("at least one processor must have capacity")
    return 1.0 / total


def sequential_times(cluster: ClusterSpec, work_seconds: float) -> list[float]:
    """T(p_i): time each processor alone would need for the whole task.

    For dedicated machines this is work/speed; loaded machines integrate
    their competing-load trace from t=0.
    """
    if work_seconds <= 0:
        raise ConfigurationError(f"work_seconds must be > 0, got {work_seconds}")
    return [proc.finish_time(0.0, work_seconds) for proc in cluster.processors]


def cluster_efficiency(
    cluster: ClusterSpec, parallel_time: float, work_seconds: float
) -> float:
    """Static efficiency of a run on *cluster* doing *work_seconds* of
    unit-speed work in *parallel_time* virtual seconds."""
    return nonuniform_efficiency(
        parallel_time, sequential_times(cluster, work_seconds)
    )


def adaptive_cluster_efficiency(
    cluster: ClusterSpec, parallel_time: float, work_seconds: float
) -> float:
    """Adaptive efficiency with f_i integrated from the load traces.

    f_i(T) = (unit-speed work processor i could do in [0, T]) / total work.
    """
    if work_seconds <= 0:
        raise ConfigurationError(f"work_seconds must be > 0, got {work_seconds}")
    fractions = [
        proc.capacity(0.0, parallel_time) / work_seconds
        for proc in cluster.processors
    ]
    return adaptive_efficiency(fractions)
