"""Per-processor load monitoring (Sec. 3.5, phase D's first step).

"One metric we have used is the average computation time per data item.
Each processor computes this information by dividing the total time spent
on the computation by the number of data elements it owned."

:class:`LoadMonitor` accumulates (virtual compute seconds, items) samples
between load-balance checks and reports the average time per item over the
current window, which the controller inverts into a capability estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoadBalanceError

__all__ = ["LoadMonitor"]


@dataclass
class LoadMonitor:
    """Sliding-window accumulator of compute time per data item."""

    window_seconds: float = 0.0
    window_items: int = 0
    total_seconds: float = 0.0
    total_items: int = 0
    samples: int = field(default=0)

    def record(self, compute_seconds: float, items: int) -> None:
        """Record one phase's computation (one kernel sweep, typically)."""
        if compute_seconds < 0 or items < 0:
            raise LoadBalanceError(
                f"negative monitor sample: {compute_seconds}s / {items} items"
            )
        self.window_seconds += compute_seconds
        self.window_items += items
        self.total_seconds += compute_seconds
        self.total_items += items
        self.samples += 1

    @property
    def has_window(self) -> bool:
        return self.window_items > 0

    def avg_time_per_item(self) -> float:
        """Average compute seconds per data item over the current window."""
        if self.window_items == 0:
            raise LoadBalanceError(
                "no items recorded since the last reset; cannot estimate load"
            )
        return self.window_seconds / self.window_items

    def capability(self) -> float:
        """Estimated capability (items per second) over the current window."""
        t = self.avg_time_per_item()
        if t <= 0:
            raise LoadBalanceError("zero compute time recorded; cannot invert")
        return 1.0 / t

    def reset_window(self) -> None:
        """Start a new observation window (after each load-balance check)."""
        self.window_seconds = 0.0
        self.window_items = 0
