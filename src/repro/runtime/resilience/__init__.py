"""Fault tolerance: survive *unannounced* rank failures (Sec. 1's axis).

PR 4's elastic membership covered the announced half of the paper's
adaptive-availability axis — a machine leaves gracefully and its data
drains out first.  This subsystem covers the dominant availability event
on a real network of workstations: a machine dies mid-iteration, taking
its memory (and its block of the distributed list) with it.  Three
pluggable layers, mirroring the Phase D decomposition:

* :mod:`~repro.runtime.resilience.policy` — *when to checkpoint*:
  the :class:`CheckpointPolicy` protocol with the fixed
  :class:`IntervalCheckpoint` and the profitability-style
  :class:`CostModelCheckpoint` (Young's interval from the measured
  checkpoint cost and an MTBF estimate — the paper's cost-reasoning
  style applied to failures);
* :mod:`~repro.runtime.resilience.checkpoint` — *what a checkpoint is*:
  diskless partner replication; each data-holding rank ships its block
  (fields + vertex identity) in one :class:`~repro.net.message.PackedArrays`
  message to each of its ``replication_factor`` ring successors
  (:func:`replica_partners`) and snapshots its own block locally,
  priced analytically by :func:`estimate_checkpoint_cost` — ``k``
  successors survive any ``k`` correlated failures within one epoch's
  ring neighborhood;
* :mod:`~repro.runtime.resilience.recovery` — *how the world restarts*:
  survivors roll back to the checkpoint epoch and
  :func:`recover_redistribute_fields` reassembles it onto the shrunken
  active set, with each dead source's slabs shipped by its first
  surviving holder.

The driver hooks live in :class:`~repro.runtime.adaptive.session.AdaptiveSession`
(``fail`` events arrive through the same membership poll as joins and
leaves) and are configured through ``ProgramConfig.checkpoint`` /
``repro run --checkpoint "interval:4" --membership "fail:2@7.5"``.
"""

from repro.runtime.resilience.checkpoint import (
    Checkpoint,
    ResilienceState,
    effective_replication_factor,
    estimate_checkpoint_cost,
    normalize_partners,
    replica_partners,
    ring_partners,
    take_checkpoint,
)
from repro.runtime.resilience.policy import (
    POLICY_NAMES,
    CheckpointPolicy,
    CostModelCheckpoint,
    IntervalCheckpoint,
    format_checkpoint_policy,
    parse_checkpoint_policy,
    resolve_checkpoint_policy,
)
from repro.runtime.resilience.recovery import (
    check_recoverable,
    recover_redistribute_fields,
)

__all__ = [
    "Checkpoint",
    "CheckpointPolicy",
    "CostModelCheckpoint",
    "IntervalCheckpoint",
    "POLICY_NAMES",
    "ResilienceState",
    "check_recoverable",
    "effective_replication_factor",
    "estimate_checkpoint_cost",
    "format_checkpoint_policy",
    "normalize_partners",
    "parse_checkpoint_policy",
    "recover_redistribute_fields",
    "replica_partners",
    "resolve_checkpoint_policy",
    "ring_partners",
    "take_checkpoint",
]
