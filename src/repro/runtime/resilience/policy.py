"""Checkpoint policies: *when* to pay the replication cost.

The paper's Phase D decides whether a remap pays with an explicit
profitability test (predicted savings vs priced cost, Sec. 3.5).  The
resilience subsystem applies the same cost-reasoning style to the other
side of the adaptivity axis: how often to checkpoint when a machine may
die *unannounced*.  Two policies are provided:

* :class:`IntervalCheckpoint` — the fixed rule: checkpoint every *k*
  synchronized iterations, the analogue of the paper's fixed
  ``check_interval`` ("the frequency of load balancing is an important
  parameter, its selection is out of the scope of this paper");
* :class:`CostModelCheckpoint` — the profitability-style rule: pick the
  checkpoint interval from the *measured* checkpoint cost ``C`` and an
  operator-supplied mean-time-between-failures estimate ``M`` using
  Young's first-order optimum ``T* = sqrt(2 C M)`` [Young, CACM 1974],
  so an expensive checkpoint (big intervals, slow network) is taken
  rarely and a cheap one often — exactly the trade the
  ``scale-resilience`` experiments sweep.

Both policies are deterministic in replicated inputs only (iteration
number, the synchronized boundary clock, the synchronized measured cost),
so every rank reaches the identical conclusion without a message — the
same argument that makes the distributed rebalance strategy correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ResilienceError

__all__ = [
    "CheckpointPolicy",
    "IntervalCheckpoint",
    "CostModelCheckpoint",
    "POLICY_NAMES",
    "format_checkpoint_policy",
    "parse_checkpoint_policy",
    "resolve_checkpoint_policy",
]

#: Recognized policy names (the CLI DSL vocabulary of
#: :func:`parse_checkpoint_policy`).
POLICY_NAMES = ("interval", "cost")


@runtime_checkable
class CheckpointPolicy(Protocol):
    """One checkpoint-scheduling rule (evaluated redundantly per rank).

    ``due`` is consulted once per synchronized iteration boundary.  Its
    inputs are replicated — the 0-based iteration that just completed,
    the synchronized boundary clock, the clock of the last checkpoint,
    and its measured synchronized cost — and implementations must be
    deterministic in them: ranks that disagree on whether a checkpoint
    is due deadlock the replication ring.

    ``replication_factor`` is how many distinct ring successors each
    data-holding rank replicates to when an epoch is taken: ``k``
    successors survive any ``k`` correlated failures within one epoch's
    ring neighborhood, at ``k`` messages per owner per checkpoint.
    """

    name: str
    replication_factor: int

    def due(
        self,
        iteration: int,
        boundary_clock: float,
        *,
        last_checkpoint_clock: float,
        checkpoint_cost: float,
    ) -> bool:
        """Whether to checkpoint at the end of *iteration* (0-based)."""
        ...


def _check_replication_factor(factor: int) -> None:
    if factor < 1:
        raise ResilienceError(
            f"replication_factor must be >= 1 ring successor, got {factor}"
        )


@dataclass(frozen=True)
class IntervalCheckpoint:
    """Checkpoint every *k* synchronized iterations (the fixed rule)."""

    k: int
    name: str = "interval"
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ResilienceError(
                f"checkpoint interval must be >= 1 iteration, got {self.k}"
            )
        _check_replication_factor(self.replication_factor)

    def due(
        self,
        iteration: int,
        boundary_clock: float,
        *,
        last_checkpoint_clock: float,
        checkpoint_cost: float,
    ) -> bool:
        return (iteration + 1) % self.k == 0


@dataclass(frozen=True)
class CostModelCheckpoint:
    """Young's interval from the measured cost and a failure-rate estimate.

    ``mtbf`` is the operator's mean-time-between-failures estimate in
    *virtual* seconds (the replicated knowledge a real deployment gets
    from its fleet history).  With ``C`` the last checkpoint's measured
    synchronized cost, a checkpoint is due once
    ``boundary_clock - last_checkpoint_clock >= sqrt(2 * C * mtbf)`` —
    the first-order optimum balancing checkpoint overhead against the
    expected re-execution loss.  ``min_interval_s`` floors the interval
    so a near-zero measured cost (tiny runs) cannot trigger a
    checkpoint storm.
    """

    mtbf: float
    min_interval_s: float = 0.0
    name: str = "cost"
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if not (math.isfinite(self.mtbf) and self.mtbf > 0):
            raise ResilienceError(
                f"mtbf must be a finite positive virtual-second estimate, "
                f"got {self.mtbf}"
            )
        if self.min_interval_s < 0:
            raise ResilienceError(
                f"min_interval_s must be >= 0, got {self.min_interval_s}"
            )
        _check_replication_factor(self.replication_factor)

    def interval(self, checkpoint_cost: float) -> float:
        """The target interval ``max(sqrt(2 C M), min_interval_s)``."""
        return max(
            math.sqrt(2.0 * max(checkpoint_cost, 0.0) * self.mtbf),
            self.min_interval_s,
        )

    def due(
        self,
        iteration: int,
        boundary_clock: float,
        *,
        last_checkpoint_clock: float,
        checkpoint_cost: float,
    ) -> bool:
        elapsed = boundary_clock - last_checkpoint_clock
        return elapsed >= self.interval(checkpoint_cost)


def parse_checkpoint_policy(spec: str) -> CheckpointPolicy:
    """Parse the ``--checkpoint`` CLI mini-language.

    Two forms, each with an optional replication suffix::

        interval:K[:rF]   checkpoint every K synchronized iterations
        cost:MTBF[:rF]    Young's interval for an MTBF estimate (virtual s)

    ``:rF`` sets the replication factor — every data-holding rank ships
    its epoch to its F distinct ring successors, so F correlated
    failures per ring neighborhood stay recoverable ("interval:4:r2").
    Malformed specs raise :class:`~repro.errors.ResilienceError` with the
    offending token and the accepted vocabulary spelled out.
    """
    token = spec.strip()
    parts = [p.strip() for p in token.split(":")]
    name = parts[0]
    if name not in POLICY_NAMES:
        raise ResilienceError(
            f"unknown checkpoint policy {name or token!r}; known policies: "
            f"'interval:K' (every K iterations) and 'cost:MTBF' "
            f"(Young's interval for an MTBF estimate in virtual seconds), "
            f"each with an optional ':rF' replication-factor suffix"
        )
    if len(parts) < 2 or not parts[1]:
        raise ResilienceError(
            f"checkpoint policy {token!r} is missing its parameter: use "
            f"'interval:K' or 'cost:MTBF' (optionally ':rF' for F replicas)"
        )
    if len(parts) > 3:
        raise ResilienceError(
            f"checkpoint policy {token!r} has too many ':' segments: use "
            f"'interval:K[:rF]' or 'cost:MTBF[:rF]'"
        )
    replication = 1
    if len(parts) == 3:
        suffix = parts[2]
        if not suffix.startswith("r") or not suffix[1:].isdigit():
            raise ResilienceError(
                f"checkpoint policy {token!r}: the replication suffix must "
                f"look like 'r2' (an 'r' followed by a whole number of "
                f"ring successors), got {suffix!r}"
            )
        replication = int(suffix[1:])
    arg = parts[1]
    if name == "interval":
        try:
            k = int(arg)
        except ValueError:
            raise ResilienceError(
                f"checkpoint policy {token!r}: interval takes a whole "
                f"number of iterations, got {arg!r}"
            ) from None
        return IntervalCheckpoint(k, replication_factor=replication)
    try:
        mtbf = float(arg)
    except ValueError:
        raise ResilienceError(
            f"checkpoint policy {token!r}: cost takes an MTBF estimate in "
            f"virtual seconds, got {arg!r}"
        ) from None
    return CostModelCheckpoint(mtbf, replication_factor=replication)


def format_checkpoint_policy(policy: CheckpointPolicy) -> str:
    """The DSL spelling of *policy*: ``parse(format(p)) == p``.

    The replication suffix is omitted at the default ``r1`` so a spec
    without one survives parse→format→parse byte-identically; the MTBF
    is formatted with :func:`repr` so the float round-trips exactly.
    """
    if isinstance(policy, IntervalCheckpoint):
        base = f"interval:{policy.k}"
    elif isinstance(policy, CostModelCheckpoint):
        base = f"cost:{_format_float(policy.mtbf)}"
    else:
        raise ResilienceError(
            f"cannot format a {type(policy).__name__} as a --checkpoint "
            f"spec; only the built-in interval/cost policies have a DSL "
            f"spelling"
        )
    if policy.replication_factor != 1:
        base += f":r{policy.replication_factor}"
    return base


def _format_float(x: float) -> str:
    """Exact round-trip float text, integers spelled without '.0'."""
    return repr(int(x)) if x == int(x) else repr(x)


def resolve_checkpoint_policy(
    spec: "CheckpointPolicy | str | None",
) -> CheckpointPolicy | None:
    """Normalize a policy spec: an instance, a DSL string, or ``None``."""
    if spec is None or isinstance(spec, (IntervalCheckpoint, CostModelCheckpoint)):
        return spec
    if isinstance(spec, str):
        return parse_checkpoint_policy(spec)
    if isinstance(spec, CheckpointPolicy):
        return spec
    raise ResilienceError(
        f"cannot resolve a checkpoint policy from {type(spec).__name__}"
    )
