"""Partner-replication checkpoints: one packed message per rank.

A checkpoint makes the run survivable: every data-holding rank ships its
interval's fields **plus vertex identity** to a *partner* (the next active
rank on a ring over the active set) through the same
:class:`~repro.net.message.PackedArrays` wire format the Phase D
redistribution uses — one message, one per-message setup charge — and
keeps an in-memory snapshot of its own block.  If rank R later dies
unannounced, R's snapshot dies with it, but R's partner still holds the
replica; every survivor still holds its own snapshot.  Rolling the world
back to the checkpoint epoch therefore needs **no stable storage**: the
paper's testbed (workstations on a LAN) gets diskless checkpointing for
the price of one extra message per rank.

Like every other Phase D decision, the checkpoint is collective and built
from replicated knowledge only: the partition is replicated (Fig. 3), so
the ring assignment, the message sizes, and the identity segments are all
known to every rank without negotiation, and
:func:`estimate_checkpoint_cost` can price the whole exchange analytically
the same way :func:`~repro.runtime.adaptive.redistribution.estimate_remap_cost`
prices a remap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ResilienceError
from repro.net.message import Tags, unpack_arrays
from repro.partition.arrangement import Transfer
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.redistribution import (
    IDENTITY_NBYTES,
    _pack_slabs,
    _verify_slabs,
    network_pricing_params,
)
from repro.runtime.backend import resolve_backend
from repro.runtime.resilience.policy import CheckpointPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext
    from repro.net.network import NetworkModel

__all__ = [
    "Checkpoint",
    "ResilienceState",
    "ring_partners",
    "take_checkpoint",
    "estimate_checkpoint_cost",
]


def ring_partners(
    partition: IntervalPartition, active: np.ndarray
) -> dict[int, int]:
    """The replica assignment: each data-holding active rank → its partner.

    Partners are the ring successors over the *sorted active set*, so the
    assignment is a pure function of replicated knowledge (every rank
    computes the identical map without a message).  A pool with a single
    active rank has nobody to replicate to and gets an empty map — a
    failure there empties the active set, which the membership trace
    already forbids.
    """
    actives = [int(r) for r in np.flatnonzero(np.asarray(active, dtype=bool))]
    if len(actives) < 2:
        return {}
    succ = {r: actives[(i + 1) % len(actives)] for i, r in enumerate(actives)}
    return {r: succ[r] for r in actives if partition.size(r) > 0}


@dataclass
class Checkpoint:
    """One consistent epoch: everything needed to roll the world back.

    The metadata (epoch, iteration, partition, ring) is replicated on
    every rank; ``snapshot`` and ``replicas`` are the per-rank data
    halves — a rank holds its *own* block at the checkpoint partition
    plus the blocks of the owners whose partner it is.
    """

    epoch: int
    next_iteration: int  # first iteration NOT yet captured by this epoch
    clock: float  # synchronized post-checkpoint clock
    partition: IntervalPartition
    active: np.ndarray  # active mask when taken
    partners: dict[int, int]  # data owner -> replica holder
    snapshot: list[np.ndarray] = field(default_factory=list)
    replicas: dict[int, list[np.ndarray]] = field(default_factory=dict)


@dataclass
class ResilienceState:
    """One rank's checkpoint/recovery bookkeeping (session-owned)."""

    policy: CheckpointPolicy
    checkpoint: Checkpoint | None = None
    #: Measured synchronized cost of the last checkpoint (virtual s);
    #: identical on every rank, which is what lets
    #: :class:`~repro.runtime.resilience.policy.CostModelCheckpoint`
    #: decide without a message.
    measured_cost: float = 0.0
    epochs_taken: int = 0


def take_checkpoint(
    ctx: "RankContext",
    partition: IntervalPartition,
    fields: Sequence[np.ndarray],
    active: np.ndarray,
    *,
    next_iteration: int,
    epoch: int,
    tag: int = Tags.CHECKPOINT,
    backend: str | None = None,
) -> Checkpoint:
    """Replicate this epoch to the ring partners; SPMD collective.

    Every rank calls it at a synchronized boundary with its current block
    of *fields*.  Data-holding active ranks send one packed message
    (identity + every field) to their ring partner; every rank snapshots
    its own block locally; a trailing barrier makes the epoch's cost a
    synchronized span every rank measures identically.
    """
    backend = resolve_backend(backend)
    fields = [np.asarray(f) for f in fields]
    if not fields:
        raise ResilienceError("take_checkpoint needs at least one field")
    active = np.asarray(active, dtype=bool)
    rank = ctx.rank
    lo, hi = partition.interval(rank)
    for k, f in enumerate(fields):
        if f.shape[0] != hi - lo:
            raise ResilienceError(
                f"rank {rank}: field {k} has {f.shape[0]} elements, the "
                f"interval holds {hi - lo}"
            )
    partners = ring_partners(partition, active)

    # Outgoing: one packed message to the ring partner (if this rank
    # holds data and has one) — the interval as a single slab through
    # the shared wire-format implementation.
    partner = partners.get(rank)
    if partner is not None:
        ctx.send(
            partner,
            _pack_slabs(fields, [Transfer(rank, partner, lo, hi)], lo, backend),
            tag,
        )

    # Local snapshot: the rank's own half of the epoch (free of network
    # cost, like the retained-overlap copy of a redistribution).
    snapshot = [f.copy() for f in fields]

    # Incoming: the ring predecessor's replica, if it holds data.  The
    # ring is injective, so there is at most one.  The shared verify
    # checks identity against the replicated partition plus every field
    # segment's length and dtype (own fields are the dtype reference —
    # SPMD ranks run one program), so a malformed replica fails at
    # replication time, not mid-rollback.
    replicas: dict[int, list[np.ndarray]] = {}
    predecessors = [o for o, holder in partners.items() if holder == rank]
    for owner in sorted(predecessors):
        parts = unpack_arrays(ctx.recv(owner, tag))
        olo, ohi = partition.interval(owner)
        _verify_slabs(
            rank,
            f"checkpoint owner {owner}",
            parts,
            [Transfer(owner, rank, olo, ohi)],
            len(fields),
            fields,
            ResilienceError,
        )
        replicas[owner] = parts[1:]

    ctx.barrier()
    return Checkpoint(
        epoch=epoch,
        next_iteration=next_iteration,
        clock=ctx.clock,
        partition=partition,
        active=active.copy(),
        partners=partners,
        snapshot=snapshot,
        replicas=replicas,
    )


def estimate_checkpoint_cost(
    network: "NetworkModel",
    partition: IntervalPartition,
    active: np.ndarray,
    element_nbytes: int,
    *,
    num_fields: int = 1,
    shared_medium: bool | None = None,
) -> float:
    """Predicted virtual seconds for one checkpoint, without taking it.

    Prices exactly what :func:`take_checkpoint` ships: per data-holding
    active rank, one packed message of its interval's ``num_fields``
    payload copies plus one vertex-identity entry per element.  Shared
    media serialize all frames; switched fabrics overlap distinct
    destinations, approximated by the slowest single message — the same
    model as :func:`~repro.runtime.adaptive.redistribution.estimate_remap_cost`.
    """
    if element_nbytes <= 0:
        raise ResilienceError(
            f"element_nbytes must be > 0, got {element_nbytes}"
        )
    if num_fields < 1:
        raise ResilienceError(f"num_fields must be >= 1, got {num_fields}")
    partners = ring_partners(partition, active)
    if not partners:
        return 0.0
    per_element = num_fields * element_nbytes + IDENTITY_NBYTES
    latency, bandwidth, overhead, shared_medium = network_pricing_params(
        network, shared_medium
    )
    sizes = {owner: partition.size(owner) * per_element for owner in partners}
    fixed = len(sizes) * (overhead + latency)
    if shared_medium:
        return fixed + sum(sizes.values()) / bandwidth
    return fixed + max(sizes.values()) / bandwidth
