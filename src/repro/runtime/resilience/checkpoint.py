"""Partner-replication checkpoints: one packed message per rank.

A checkpoint makes the run survivable: every data-holding rank ships its
interval's fields **plus vertex identity** to a *partner* (the next active
rank on a ring over the active set) through the same
:class:`~repro.net.message.PackedArrays` wire format the Phase D
redistribution uses — one message, one per-message setup charge — and
keeps an in-memory snapshot of its own block.  If rank R later dies
unannounced, R's snapshot dies with it, but R's partner still holds the
replica; every survivor still holds its own snapshot.  Rolling the world
back to the checkpoint epoch therefore needs **no stable storage**: the
paper's testbed (workstations on a LAN) gets diskless checkpointing for
the price of one extra message per rank.

Like every other Phase D decision, the checkpoint is collective and built
from replicated knowledge only: the partition is replicated (Fig. 3), so
the ring assignment, the message sizes, and the identity segments are all
known to every rank without negotiation, and
:func:`estimate_checkpoint_cost` can price the whole exchange analytically
the same way :func:`~repro.runtime.adaptive.redistribution.estimate_remap_cost`
prices a remap.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import ResilienceError, ResilienceWarning
from repro.net.message import Tags, payload_nbytes, unpack_arrays
from repro.partition.arrangement import Transfer
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.redistribution import (
    IDENTITY_NBYTES,
    _pack_slabs,
    _verify_slabs,
    network_pricing_params,
)
from repro.runtime.backend import resolve_backend
from repro.runtime.resilience.policy import CheckpointPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext
    from repro.net.network import NetworkModel

__all__ = [
    "Checkpoint",
    "ResilienceState",
    "effective_replication_factor",
    "replica_partners",
    "ring_partners",
    "take_checkpoint",
    "estimate_checkpoint_cost",
]


def effective_replication_factor(
    replication_factor: int, num_active: int
) -> int:
    """The replication factor a pool of *num_active* ranks can honor.

    A ring of ``n`` active ranks has at most ``n - 1`` distinct successors,
    so ``k > n - 1`` is capped to ``n - 1`` — **with a warning** (echoed
    once per process; the ``warnings`` default filter deduplicates repeat
    occurrences).  This is the single capping rule every consumer agrees
    on: :func:`replica_partners` (and through it :func:`take_checkpoint`
    and :func:`estimate_checkpoint_cost`), and the configuration-time
    check in :func:`repro.runtime.program.run_program` behind the CLI's
    ``--replication``.
    """
    if replication_factor < 1:
        raise ResilienceError(
            f"replication_factor must be >= 1, got {replication_factor}"
        )
    if num_active < 0:
        raise ResilienceError(f"num_active must be >= 0, got {num_active}")
    k = min(replication_factor, max(num_active - 1, 0))
    if k < replication_factor:
        warnings.warn(
            f"replication_factor {replication_factor} exceeds what "
            f"{num_active} active rank(s) can honor; capped to {k} ring "
            f"successor(s) per owner",
            ResilienceWarning,
        )
    return k


def replica_partners(
    partition: IntervalPartition,
    active: np.ndarray,
    replication_factor: int = 1,
) -> dict[int, tuple[int, ...]]:
    """The replica assignment: each data-holding active rank → its holders.

    Holders are the next *replication_factor* distinct ring successors
    over the *sorted active set*, so the assignment is a pure function of
    replicated knowledge (every rank computes the identical map without a
    message).  A pool with fewer than ``replication_factor + 1`` active
    ranks degrades gracefully: every owner replicates to all other active
    ranks (the widest ring the pool affords) and
    :func:`effective_replication_factor` warns about the cap once.  A
    single active rank has nobody to replicate to and gets an empty map —
    a failure there empties the active set, which the membership trace
    already forbids.
    """
    actives = [int(r) for r in np.flatnonzero(np.asarray(active, dtype=bool))]
    k = effective_replication_factor(replication_factor, len(actives))
    if len(actives) < 2:
        return {}
    n = len(actives)
    index = {r: i for i, r in enumerate(actives)}
    return {
        r: tuple(actives[(index[r] + j) % n] for j in range(1, k + 1))
        for r in actives
        if partition.size(r) > 0
    }


def ring_partners(
    partition: IntervalPartition, active: np.ndarray
) -> dict[int, int]:
    """The single-successor (k=1) view: each data-holding rank → partner."""
    return {
        owner: holders[0]
        for owner, holders in replica_partners(partition, active, 1).items()
    }


def normalize_partners(
    partners: "Mapping[int, int | Sequence[int]]",
) -> dict[int, tuple[int, ...]]:
    """Accept both the k=1 ``owner -> rank`` map and the general
    ``owner -> (rank, ...)`` map, returning the general form.

    Validates the map: an owner replicating to itself or naming the same
    holder twice is a malformed assignment (it would silently lower the
    real replication degree) and raises
    :class:`~repro.errors.ResilienceError`.
    """
    out: dict[int, tuple[int, ...]] = {}
    for owner, holders in partners.items():
        if isinstance(holders, (int, np.integer)):
            holders = (int(holders),)
        else:
            holders = tuple(int(h) for h in holders)
        owner = int(owner)
        if owner in holders:
            raise ResilienceError(
                f"partner map: owner {owner} replicates to itself — a "
                f"failure would take both copies"
            )
        if len(set(holders)) != len(holders):
            raise ResilienceError(
                f"partner map: owner {owner} names duplicate holders "
                f"{holders} — the real replication degree is lower than "
                f"declared"
            )
        out[owner] = holders
    return out


@dataclass
class Checkpoint:
    """One consistent epoch: everything needed to roll the world back.

    The metadata (epoch, iteration, partition, ring) is replicated on
    every rank; ``snapshot`` and ``replicas`` are the per-rank data
    halves — a rank holds its *own* block at the checkpoint partition
    plus the blocks of the owners whose partner it is.
    """

    epoch: int
    next_iteration: int  # first iteration NOT yet captured by this epoch
    clock: float  # synchronized post-checkpoint clock
    partition: IntervalPartition
    active: np.ndarray  # active mask when taken
    partners: dict[int, tuple[int, ...]]  # data owner -> replica holders
    snapshot: list[np.ndarray] = field(default_factory=list)
    replicas: dict[int, list[np.ndarray]] = field(default_factory=dict)


@dataclass
class ResilienceState:
    """One rank's checkpoint/recovery bookkeeping (session-owned)."""

    policy: CheckpointPolicy
    checkpoint: Checkpoint | None = None
    #: Measured synchronized cost of the last checkpoint (virtual s);
    #: identical on every rank, which is what lets
    #: :class:`~repro.runtime.resilience.policy.CostModelCheckpoint`
    #: decide without a message.
    measured_cost: float = 0.0
    epochs_taken: int = 0


def take_checkpoint(
    ctx: "RankContext",
    partition: IntervalPartition,
    fields: Sequence[np.ndarray],
    active: np.ndarray,
    *,
    next_iteration: int,
    epoch: int,
    tag: int = Tags.CHECKPOINT,
    backend: str | None = None,
    replication_factor: int = 1,
) -> Checkpoint:
    """Replicate this epoch to the ring partners; SPMD collective.

    Every rank calls it at a synchronized boundary with its current block
    of *fields*.  Data-holding active ranks send one packed message
    (identity + every field) to each of their *replication_factor* ring
    successors; every rank snapshots its own block locally; a trailing
    barrier makes the epoch's cost a synchronized span every rank
    measures identically.  With ``replication_factor=1`` this is the
    single-partner diskless scheme; ``k`` successors survive any ``k``
    correlated failures within one epoch's ring neighborhood.
    """
    backend = resolve_backend(backend)
    fields = [np.asarray(f) for f in fields]
    if not fields:
        raise ResilienceError("take_checkpoint needs at least one field")
    active = np.asarray(active, dtype=bool)
    rank = ctx.rank
    lo, hi = partition.interval(rank)
    for k, f in enumerate(fields):
        if f.shape[0] != hi - lo:
            raise ResilienceError(
                f"rank {rank}: field {k} has {f.shape[0]} elements, the "
                f"interval holds {hi - lo}"
            )
    partners = replica_partners(partition, active, replication_factor)

    # Outgoing: one packed message per ring successor (if this rank
    # holds data) — the interval as a single slab through the shared
    # wire-format implementation, packed once and fanned out.  Sends go
    # in ring order so the virtual clock is deterministic.
    metrics = getattr(ctx, "metrics", None)
    for partner in partners.get(rank, ()):
        payload = _pack_slabs(
            fields, [Transfer(rank, partner, lo, hi)], lo, backend
        )
        if metrics is not None:
            metrics.count("cp.checkpoint_bytes", payload_nbytes(payload))
        ctx.send(partner, payload, tag)

    # Local snapshot: the rank's own half of the epoch (free of network
    # cost, like the retained-overlap copy of a redistribution).
    snapshot = [f.copy() for f in fields]

    # Incoming: every ring predecessor whose holder set names this rank
    # (at most ``replication_factor`` of them).  The shared verify
    # checks identity against the replicated partition plus every field
    # segment's length and dtype (own fields are the dtype reference —
    # SPMD ranks run one program), so a malformed replica fails at
    # replication time, not mid-rollback.
    replicas: dict[int, list[np.ndarray]] = {}
    predecessors = [o for o, holders in partners.items() if rank in holders]
    for owner in sorted(predecessors):
        parts = unpack_arrays(ctx.recv(owner, tag))
        olo, ohi = partition.interval(owner)
        _verify_slabs(
            rank,
            f"checkpoint owner {owner}",
            parts,
            [Transfer(owner, rank, olo, ohi)],
            len(fields),
            fields,
            ResilienceError,
        )
        replicas[owner] = parts[1:]

    ctx.barrier()
    return Checkpoint(
        epoch=epoch,
        next_iteration=next_iteration,
        clock=ctx.clock,
        partition=partition,
        active=active.copy(),
        partners=partners,
        snapshot=snapshot,
        replicas=replicas,
    )


def estimate_checkpoint_cost(
    network: "NetworkModel",
    partition: IntervalPartition,
    active: np.ndarray,
    element_nbytes: int,
    *,
    num_fields: int = 1,
    shared_medium: bool | None = None,
    replication_factor: int = 1,
) -> float:
    """Predicted virtual seconds for one checkpoint, without taking it.

    Prices exactly what :func:`take_checkpoint` ships: per data-holding
    active rank, one packed message per ring successor (``k`` of them
    under ``replication_factor=k``) of its interval's ``num_fields``
    payload copies plus one vertex-identity entry per element.  Shared
    media serialize all frames; switched fabrics overlap distinct
    sources but serialize each source's own fan-out, approximated by the
    slowest single source — the same style of model as
    :func:`~repro.runtime.adaptive.redistribution.estimate_remap_cost`.
    """
    if element_nbytes <= 0:
        raise ResilienceError(
            f"element_nbytes must be > 0, got {element_nbytes}"
        )
    if num_fields < 1:
        raise ResilienceError(f"num_fields must be >= 1, got {num_fields}")
    partners = replica_partners(partition, active, replication_factor)
    if not partners:
        return 0.0
    per_element = num_fields * element_nbytes + IDENTITY_NBYTES
    latency, bandwidth, overhead, shared_medium = network_pricing_params(
        network, shared_medium
    )
    # Per owner: all its replica copies leave through its own port.
    outgoing = {
        owner: partition.size(owner) * per_element * len(holders)
        for owner, holders in partners.items()
    }
    n_messages = sum(len(holders) for holders in partners.values())
    fixed = n_messages * (overhead + latency)
    if shared_medium:
        return fixed + sum(outgoing.values()) / bandwidth
    return fixed + max(outgoing.values()) / bandwidth
