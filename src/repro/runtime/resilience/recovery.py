"""Recovery: redistribute a checkpoint epoch around its dead owners.

After a ``fail`` event, the world rolls back to the last checkpoint: every
survivor restores its own snapshot, and the epoch's data must then move
from the *checkpoint* partition to a fresh partition over the shrunken
active set (chosen by the ordinary MCR profitability machinery, where the
dead rank holding elements makes the remap mandatory).

The exchange is the packed Phase D redistribution with one twist: slabs
whose *source* is a dead rank are shipped from the replica by that
rank's *first surviving* checkpoint holder instead — the plan is still
fully replicated (partition, ring, holder lists, and failure set are
shared knowledge), so no discovery round is needed and the receiver can
still verify every slab's vertex identity against the plan.  Under
k-successor replication an owner has up to ``k`` holders; exactly one
(the designated shipper) speaks for it, chosen identically on every
rank.  Replica slabs travel under a per-owner tag
(``Tags.RECOVERY_BASE + owner``) so a holder covering several dead
owners keeps their streams apart from each other and from its own slabs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import ResilienceError
from repro.net.message import Tags, unpack_arrays
from repro.partition.arrangement import Transfer, transfer_matrix
from repro.partition.intervals import IntervalPartition
from repro.runtime import reference as ref
from repro.runtime.adaptive.redistribution import (
    _extract_slabs,
    _pack_slabs,
    _place_slabs,
    _verify_slabs,
)
from repro.runtime.backend import resolve_backend
from repro.runtime.resilience.checkpoint import normalize_partners

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["check_recoverable", "recover_redistribute_fields"]


def check_recoverable(
    partition: IntervalPartition,
    partners: "Mapping[int, int | Sequence[int]]",
    failed: np.ndarray,
) -> None:
    """Fail loudly when the epoch cannot be reassembled.

    Every dead rank that owned data at the checkpoint must have at least
    one live replica holder.  Two ways to lose: the owner never had a
    partner (a single-active-rank pool), or the owner *and all k of its
    holders* died within one epoch — the correlated-failure limit of
    k-successor partner replication (k=1 is the classic ring-edge double
    failure).
    """
    failed = np.asarray(failed, dtype=bool)
    holder_map = normalize_partners(partners)
    for owner in sorted(int(r) for r in np.flatnonzero(failed)):
        if partition.size(owner) == 0:
            continue
        holders = holder_map.get(owner, ())
        if not holders:
            raise ResilienceError(
                f"rank {owner} failed holding {partition.size(owner)} "
                f"elements but the checkpoint epoch has no replica partner "
                f"for it; its data is unrecoverable"
            )
        if all(failed[h] for h in holders):
            k = len(holders)
            who = (
                f"its replica partner {holders[0]} both"
                if k == 1
                else f"all {k} of its replica holders {list(holders)}"
            )
            raise ResilienceError(
                f"rank {owner} and {who} "
                f"failed within one checkpoint epoch; the interval "
                f"[{partition.interval(owner)[0]}, "
                f"{partition.interval(owner)[1]}) is unrecoverable "
                f"(k-successor partner replication survives k failures "
                f"per epoch per ring neighborhood — checkpoint more "
                f"often or raise the replication factor)"
            )


def _recovery_tag(owner: int) -> int:
    tag = Tags.RECOVERY_BASE + owner
    if tag >= Tags.USER_BASE:
        raise ResilienceError(
            f"rank {owner} exceeds the recovery tag space "
            f"(world must stay below {Tags.USER_BASE - Tags.RECOVERY_BASE} "
            f"ranks)"
        )
    return tag


def recover_redistribute_fields(
    ctx: "RankContext",
    old: IntervalPartition,
    new: IntervalPartition,
    fields: Sequence[np.ndarray],
    *,
    failed: np.ndarray,
    partners: "Mapping[int, int | Sequence[int]]",
    replicas: Mapping[int, Sequence[np.ndarray]],
    backend: str | None = None,
) -> list[np.ndarray]:
    """Move the restored epoch from *old* to *new* homes; SPMD collective.

    Survivors call it with their restored snapshot (*old*-block fields);
    dead ranks participate with nothing (their snapshot died with them)
    and must own nothing under *new*.  *partners*/*replicas* come from the
    checkpoint being recovered (holder lists under k-successor
    replication; the bare ``owner -> rank`` form is accepted for k=1);
    *failed* is the cumulative failure mask at detection time.  Each rank
    returns its *new*-block fields.
    """
    backend = resolve_backend(backend)
    fields = [np.asarray(f) for f in fields]
    if not fields:
        raise ResilienceError(
            "recover_redistribute_fields needs at least one field"
        )
    failed = np.asarray(failed, dtype=bool)
    rank = ctx.rank
    alive = not failed[rank]
    holder_map = normalize_partners(partners)
    check_recoverable(old, holder_map, failed)
    # The designated shipper for each dead data owner: its first live
    # holder, in ring-successor order — replicated knowledge, so every
    # rank names the same shipper without a message.
    shippers: dict[int, int] = {}
    for owner in (int(r) for r in np.flatnonzero(failed)):
        if old.size(owner) == 0:
            continue
        shippers[owner] = next(
            h for h in holder_map[owner] if not failed[h]
        )
    if np.any(failed & (new.sizes() > 0)):
        bad = np.flatnonzero(failed & (new.sizes() > 0)).tolist()
        raise ResilienceError(
            f"recovery partition assigns elements to failed ranks {bad}"
        )
    old_lo, old_hi = old.interval(rank)
    if alive:
        for k, f in enumerate(fields):
            if f.shape[0] != old_hi - old_lo:
                raise ResilienceError(
                    f"rank {rank}: restored field {k} has {f.shape[0]} "
                    f"elements, the checkpoint interval holds "
                    f"{old_hi - old_lo}"
                )
    transfers = transfer_matrix(old, new)
    new_lo, new_hi = new.interval(rank)
    outs = [
        np.empty((new_hi - new_lo,) + f.shape[1:], dtype=f.dtype)
        for f in fields
    ]

    # Retained overlap (alive ranks only; a dead rank owns nothing new).
    keep_lo = max(old_lo, new_lo)
    keep_hi = min(old_hi, new_hi)
    if alive and keep_lo < keep_hi:
        for f, out in zip(fields, outs):
            if backend == "reference":
                ref.slab_unpack_loop(
                    out,
                    keep_lo - new_lo,
                    ref.slab_pack_loop(f, keep_lo - old_lo, keep_hi - old_lo),
                )
            else:
                out[keep_lo - new_lo : keep_hi - new_lo] = f[
                    keep_lo - old_lo : keep_hi - old_lo
                ]

    # Group the plan's slabs by who really ships them.
    own_out: dict[int, list[Transfer]] = {}  # dest -> slabs (this rank's data)
    replica_out: dict[tuple[int, int], list[Transfer]] = {}  # (owner, dest)
    incoming_live: dict[int, list[Transfer]] = {}  # live source -> slabs
    incoming_dead: dict[int, list[Transfer]] = {}  # dead owner -> slabs
    for tr in transfers:
        if failed[tr.source]:
            if shippers[tr.source] == rank:
                replica_out.setdefault((tr.source, tr.dest), []).append(tr)
            if tr.dest == rank:
                incoming_dead.setdefault(tr.source, []).append(tr)
        else:
            if tr.source == rank and tr.dest != rank:
                own_out.setdefault(tr.dest, []).append(tr)
            if tr.dest == rank and tr.source != rank:
                incoming_live.setdefault(tr.source, []).append(tr)

    # Sends first (buffered), destinations in ascending order so the
    # virtual clock is deterministic: own slabs, then replica slabs.
    for dest in sorted(own_out):
        ctx.send(
            dest,
            _pack_slabs(fields, own_out[dest], old_lo, backend),
            Tags.REDISTRIBUTE,
        )
    for owner, dest in sorted(replica_out):
        if dest == rank:
            continue  # placed locally below, no message
        olo, _ = old.interval(owner)
        ctx.send(
            dest,
            _pack_slabs(
                list(replicas[owner]), replica_out[(owner, dest)], olo, backend
            ),
            _recovery_tag(owner),
        )

    # Live incoming, ascending source order.
    for source in sorted(incoming_live):
        slabs = incoming_live[source]
        parts = unpack_arrays(ctx.recv(source, Tags.REDISTRIBUTE))
        _verify_slabs(rank, f"rank {source}", parts, slabs, len(fields),
                      outs, ResilienceError)
        _place_slabs(outs, slabs, parts[1:], new_lo, backend)

    # Dead owners' slabs, ascending owner order: from the local replica
    # when this rank is the designated shipper, else from its message.
    for owner in sorted(incoming_dead):
        slabs = incoming_dead[owner]
        holder = shippers[owner]
        if holder == rank:
            olo, _ = old.interval(owner)
            parts = _extract_slabs(list(replicas[owner]), slabs, olo, backend)
            _place_slabs(outs, slabs, parts, new_lo, backend)
        else:
            parts = unpack_arrays(ctx.recv(holder, _recovery_tag(owner)))
            _verify_slabs(
                rank,
                f"partner {holder} (owner {owner})",
                parts,
                slabs,
                len(fields),
                outs,
                ResilienceError,
            )
            _place_slabs(outs, slabs, parts[1:], new_lo, backend)
    return outs
