"""Phases B-D of the paper's Fig. 1 runtime: inspector/executor (Secs.
3.2-3.3), redistribution (Sec. 3.4), adaptive load balancing (Sec. 3.5)."""

from repro.runtime.backend import (
    BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.runtime.controller import Decision, LoadBalanceConfig, controller_check
from repro.runtime.distributed_lb import distributed_check
from repro.runtime.efficiency import (
    adaptive_cluster_efficiency,
    adaptive_efficiency,
    cluster_efficiency,
    nonuniform_efficiency,
    sequential_times,
)
from repro.runtime.executor import ExecutorCostModel, gather, gather_fields, scatter
from repro.runtime.inspector import STRATEGIES, InspectorResult, run_inspector
from repro.runtime.kernels import (
    KernelCostModel,
    KernelPlan,
    build_kernel_plan,
    run_sequential,
    sequential_kernel,
    sequential_kernel_reference,
)
from repro.runtime.monitor import LoadMonitor
from repro.runtime.prediction import (
    CapabilityPredictor,
    ExponentialSmoothingPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    make_predictor,
)
from repro.runtime.program import (
    ProgramConfig,
    ProgramReport,
    RankStats,
    run_program,
)
from repro.runtime.redistribution import estimate_remap_cost, redistribute
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    InspectorCostModel,
    build_schedule_no_dedup,
    build_schedule_simple,
    build_schedule_sort1,
    build_schedule_sort2,
    local_references,
)
from repro.runtime.verify import ConsistencyReport, check_global_consistency
from repro.runtime.translation import (
    DistributedTranslationTable,
    IntervalTranslationTable,
    ReplicatedTranslationTable,
    table_home,
)

__all__ = [
    "BACKENDS",
    "CapabilityPredictor",
    "CommSchedule",
    "ConsistencyReport",
    "build_schedule_no_dedup",
    "check_global_consistency",
    "Decision",
    "ExponentialSmoothingPredictor",
    "LastValuePredictor",
    "LinearTrendPredictor",
    "MovingAveragePredictor",
    "distributed_check",
    "make_predictor",
    "DistributedTranslationTable",
    "ExecutorCostModel",
    "InspectorCostModel",
    "InspectorResult",
    "IntervalTranslationTable",
    "KernelCostModel",
    "KernelPlan",
    "LoadBalanceConfig",
    "LoadMonitor",
    "ProgramConfig",
    "ProgramReport",
    "RankStats",
    "ReplicatedTranslationTable",
    "STRATEGIES",
    "adaptive_cluster_efficiency",
    "adaptive_efficiency",
    "build_kernel_plan",
    "build_schedule_simple",
    "build_schedule_sort1",
    "build_schedule_sort2",
    "cluster_efficiency",
    "controller_check",
    "estimate_remap_cost",
    "gather",
    "gather_fields",
    "get_backend",
    "local_references",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "nonuniform_efficiency",
    "run_inspector",
    "run_program",
    "run_sequential",
    "scatter",
    "sequential_kernel",
    "sequential_kernel_reference",
    "sequential_times",
    "table_home",
]
