"""Deprecated home of interval redistribution (Sec. 3.4 mechanics).

The exchange moved into the Phase D subsystem:
:mod:`repro.runtime.adaptive` (``redistribute`` / ``redistribute_fields``
/ ``estimate_remap_cost``), gaining packed multi-field messages and
backend-paired packing on the way.  This shim keeps the old entry points
importable; they warn once per call site.
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

from repro.runtime.adaptive.redistribution import (
    estimate_remap_cost as _estimate_remap_cost,
)
from repro.runtime.adaptive.redistribution import redistribute as _redistribute

__all__ = ["redistribute", "estimate_remap_cost"]


def redistribute(*args: Any, **kwargs: Any) -> np.ndarray:
    """Deprecated alias of :func:`repro.runtime.adaptive.redistribute`."""
    warnings.warn(
        "repro.runtime.redistribution.redistribute moved to "
        "repro.runtime.adaptive; import it from there",
        DeprecationWarning,
        stacklevel=2,
    )
    return _redistribute(*args, **kwargs)


def estimate_remap_cost(*args: Any, **kwargs: Any) -> float:
    """Deprecated alias of :func:`repro.runtime.adaptive.estimate_remap_cost`."""
    warnings.warn(
        "repro.runtime.redistribution.estimate_remap_cost moved to "
        "repro.runtime.adaptive; import it from there",
        DeprecationWarning,
        stacklevel=2,
    )
    return _estimate_remap_cost(*args, **kwargs)
