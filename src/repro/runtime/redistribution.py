"""Data redistribution between interval partitions (Sec. 3.4 mechanics).

Given old and new partitions of the same 1-D list, every rank can compute
the full transfer pattern locally (the partitions are replicated knowledge,
like the Fig. 3 interval list), so the exchange needs no pattern-discovery
round: each rank sends its outgoing slabs and receives exactly the incoming
slabs the shared plan predicts.

:func:`estimate_remap_cost` is the analytic cost the load-balancing
controller uses for its profitability test before actually moving anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RedistributionError
from repro.net.message import Tags
from repro.partition.arrangement import Transfer, transfer_matrix
from repro.partition.intervals import IntervalPartition

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext
    from repro.net.network import NetworkModel

__all__ = ["redistribute", "estimate_remap_cost"]


def redistribute(
    ctx: "RankContext",
    old: IntervalPartition,
    new: IntervalPartition,
    local_data: np.ndarray,
    *,
    tag: int = Tags.REDISTRIBUTE,
) -> np.ndarray:
    """Move this rank's block from the *old* to the *new* partition.

    SPMD collective: all ranks call it with their old-block data; each
    returns its new-block data.  One message per transfer slab, matching
    the message accounting of
    :func:`repro.partition.arrangement.message_count`.
    """
    local_data = np.asarray(local_data)
    old_lo, old_hi = old.interval(ctx.rank)
    if local_data.shape[0] != old_hi - old_lo:
        raise RedistributionError(
            f"rank {ctx.rank}: data has {local_data.shape[0]} elements, old "
            f"interval holds {old_hi - old_lo}"
        )
    transfers = transfer_matrix(old, new)
    new_lo, new_hi = new.interval(ctx.rank)
    out = np.empty((new_hi - new_lo,) + local_data.shape[1:],
                   dtype=local_data.dtype)

    # Retained overlap: the slab (if any) that stays on this rank.
    keep_lo = max(old_lo, new_lo)
    keep_hi = min(old_hi, new_hi)
    if keep_lo < keep_hi:
        out[keep_lo - new_lo : keep_hi - new_lo] = local_data[
            keep_lo - old_lo : keep_hi - old_lo
        ]

    # Outgoing slabs (in global order, so per-destination FIFO order is
    # deterministic and matches the receiver's expectation).
    for tr in transfers:
        if tr.source == ctx.rank:
            ctx.send(tr.dest, np.ascontiguousarray(
                local_data[tr.lo - old_lo : tr.hi - old_lo]), tag)

    # Incoming slabs: receive per (source, slab) in plan order.
    for tr in transfers:
        if tr.dest == ctx.rank:
            payload = np.asarray(ctx.recv(tr.source, tag))
            if payload.shape[0] != tr.count:
                raise RedistributionError(
                    f"rank {ctx.rank}: slab from {tr.source} has "
                    f"{payload.shape[0]} elements, plan says {tr.count}"
                )
            out[tr.lo - new_lo : tr.hi - new_lo] = payload
    return out


def estimate_remap_cost(
    network: "NetworkModel",
    old: IntervalPartition,
    new: IntervalPartition,
    element_nbytes: int,
    *,
    shared_medium: bool | None = None,
) -> float:
    """Predicted virtual seconds to redistribute, without doing it.

    On a shared medium (Ethernet) all frames serialize, so the estimate is
    the sum of per-message fixed costs plus total bytes over the shared
    bandwidth.  On switched fabrics transfers to distinct destinations can
    overlap; we approximate with the per-destination maximum.
    """
    if element_nbytes <= 0:
        raise RedistributionError(
            f"element_nbytes must be > 0, got {element_nbytes}"
        )
    transfers = transfer_matrix(old, new)
    if not transfers:
        return 0.0
    latency = float(getattr(network, "latency", 1e-3))
    bandwidth = float(getattr(network, "bandwidth", 1.25e6))
    overhead = float(getattr(network, "per_message_overhead", 5e-4))
    if shared_medium is None:
        from repro.net.network import SharedEthernet

        shared_medium = isinstance(network, SharedEthernet)
    fixed = len(transfers) * (overhead + latency)
    if shared_medium:
        total_bytes = sum(tr.count for tr in transfers) * element_nbytes
        return fixed + total_bytes / bandwidth
    by_link: dict[tuple[int, int], int] = {}
    for tr in transfers:
        key = (tr.source, tr.dest)
        by_link[key] = by_link.get(key, 0) + tr.count * element_nbytes
    slowest = max(by_link.values())
    return fixed + slowest / bandwidth
