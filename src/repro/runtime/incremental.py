"""Incremental inspector rebuild: epoch-to-epoch Phase B deltas.

The paper re-runs all of Phase B "whenever data is redistributed"
(Sec. 3).  Most redistributions, though, only *shift interval
boundaries*: after a remap the typical rank keeps almost all of its
block, so almost all of its ghost set, send lists and translated kernel
addresses are unchanged.  This module exploits that:

* :func:`diff_interval` computes a rank's boundary diff between two
  :class:`~repro.partition.intervals.IntervalPartition` objects — the
  kept intersection plus up to two *lost* and two *gained* contiguous
  ranges (pure interval arithmetic, O(1));
* :class:`IncrementalInspector` caches the rank's **cross references**
  (the off-block adjacency entries — exactly the inspector's raw input
  that survives a boundary shift) and *patches* the previous
  :class:`~repro.runtime.schedule.CommSchedule` and
  :class:`~repro.runtime.kernels.KernelPlan` into the new partition's,
  touching O(diff x degree + boundary) data instead of O(n/p + refs);
* a deterministic crossover test (predicted patch cost vs. the cost of
  the last full build, both in :class:`InspectorCostModel` units) falls
  back to :func:`~repro.runtime.inspector.run_inspector` when the diff
  is too large to be worth patching — "learned per run" because the
  full-cost side tracks the sizes observed at the most recent full
  build.

**Bit-identity contract.**  The patched schedule and plan are equal,
array for array, to what a from-scratch ``sort1``/``sort2`` build would
produce (both backends): the ghost buffer is ``np.unique`` of the same
cross-reference multiset, the recv side reuses
:func:`~repro.runtime.schedule_builders._recv_side_sorted` verbatim, and
the send side runs the same ``dest * n + src`` pair-key dedup as
:func:`~repro.runtime.schedule_builders._send_side`.  The property suite
in ``tests/test_incremental.py`` pins this through randomized remap
sequences.

The patch path requires the sorting strategies' symmetry assumption
(an edge's reference appears in both endpoint rows — already mandatory
for ``sort1``/``sort2``); the ``simple`` strategy's request-ordered
ghost buffers cannot be patched and are rejected at construction.

Virtual time: a patch charges ``"inspector-incremental"`` — a
deterministic function of the diff's structural sizes, identical across
backends (the incremental path is a single numpy implementation), and
much smaller than a full build's charge.  That shrinkage feeds the
session's learned ``rebuild_cost_estimate``, making *more* remaps pass
the profitability test — a perf change that also improves adaptive
quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.inspector import InspectorResult, run_inspector
from repro.runtime.kernels import KernelPlan
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    InspectorCostModel,
    _charge,
    _recv_side_sorted,
    local_references,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "IntervalDiff",
    "diff_interval",
    "classify_elements",
    "IncrementalInspector",
    "inspector_results_equal",
]


@dataclass(frozen=True)
class IntervalDiff:
    """One rank's boundary diff between two interval partitions.

    ``kept`` is the (possibly empty) intersection ``[keep_lo, keep_hi)``;
    ``lost``/``gained`` are the up-to-two contiguous half-open ranges the
    rank gave up / acquired.  Together they tile the old and new
    intervals exactly: ``kept + lost == old`` and ``kept + gained == new``
    with no overlaps (the property suite pins this).
    """

    rank: int
    old_lo: int
    old_hi: int
    new_lo: int
    new_hi: int
    keep_lo: int
    keep_hi: int
    lost: tuple[tuple[int, int], ...]
    gained: tuple[tuple[int, int], ...]

    @property
    def n_kept(self) -> int:
        return self.keep_hi - self.keep_lo

    @property
    def n_lost(self) -> int:
        return sum(hi - lo for lo, hi in self.lost)

    @property
    def n_gained(self) -> int:
        return sum(hi - lo for lo, hi in self.gained)

    @property
    def is_empty(self) -> bool:
        """True when the rank's interval did not move at all."""
        return not self.lost and not self.gained


def diff_interval(
    old: IntervalPartition, new: IntervalPartition, rank: int
) -> IntervalDiff:
    """Classify *rank*'s elements as kept/gained/lost between partitions."""
    if old.num_elements != new.num_elements:
        raise ScheduleError(
            f"cannot diff partitions of {old.num_elements} vs "
            f"{new.num_elements} elements"
        )
    lo0, hi0 = old.interval(rank)
    lo1, hi1 = new.interval(rank)
    keep_lo, keep_hi = max(lo0, lo1), min(hi0, hi1)
    if keep_hi <= keep_lo:
        # Disjoint (or one side empty): everything moved.
        keep_lo = keep_hi = lo1
        lost = ((lo0, hi0),) if hi0 > lo0 else ()
        gained = ((lo1, hi1),) if hi1 > lo1 else ()
    else:
        lost = tuple(
            (lo, hi)
            for lo, hi in ((lo0, keep_lo), (keep_hi, hi0))
            if hi > lo
        )
        gained = tuple(
            (lo, hi)
            for lo, hi in ((lo1, keep_lo), (keep_hi, hi1))
            if hi > lo
        )
    return IntervalDiff(
        rank=rank,
        old_lo=lo0, old_hi=hi0, new_lo=lo1, new_hi=hi1,
        keep_lo=keep_lo, keep_hi=keep_hi,
        lost=lost, gained=gained,
    )


def classify_elements(
    old: IntervalPartition, new: IntervalPartition, rank: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(kept, gained, lost) global indices for *rank* — the materialized
    form of :func:`diff_interval`, used by the property suite."""
    d = diff_interval(old, new, rank)
    kept = np.arange(d.keep_lo, d.keep_hi, dtype=np.intp)
    gained = _ranges_arange(d.gained)
    lost = _ranges_arange(d.lost)
    return kept, gained, lost


def _ranges_arange(ranges: tuple[tuple[int, int], ...]) -> np.ndarray:
    if not ranges:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(
        [np.arange(lo, hi, dtype=np.intp) for lo, hi in ranges]
    )


def _in_ranges(
    x: np.ndarray, ranges: tuple[tuple[int, int], ...]
) -> np.ndarray:
    mask = np.zeros(x.shape, dtype=bool)
    for lo, hi in ranges:
        mask |= (x >= lo) & (x < hi)
    return mask


def _range_refs(graph: CSRGraph, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
    """All adjacency references whose source lies in ``[lo, hi)``."""
    start, stop = graph.indptr[lo], graph.indptr[hi]
    nbr = graph.indices[start:stop].astype(np.intp, copy=False)
    counts = graph.indptr[lo + 1 : hi + 1] - graph.indptr[lo:hi]
    src = np.repeat(np.arange(lo, hi, dtype=np.intp), counts)
    return src, nbr


def _range_ref_count(graph: CSRGraph, ranges: tuple[tuple[int, int], ...]) -> int:
    return int(sum(graph.indptr[hi] - graph.indptr[lo] for lo, hi in ranges))


def _sorted_unique(x: np.ndarray) -> np.ndarray:
    """``np.unique`` for 1-D integer arrays via an explicit sort.

    Bit-identical output (sorted distinct values) but without the hash
    machinery ``np.unique`` runs through on small arrays — the patch
    path calls this twice per rebuild on boundary-sized inputs, where
    the hash setup alone costs more than the whole sort.
    """
    if x.size == 0:
        return x.astype(np.intp)
    s = np.sort(x)
    keep = np.empty(s.size, dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def _send_side_from_cross(
    partition: IntervalPartition,
    rank: int,
    cross_src: np.ndarray,
    cross_nbr: np.ndarray,
) -> dict[int, np.ndarray]:
    """``_send_side`` recomputed from the cached cross references.

    Bit-identical to :func:`repro.runtime.schedule_builders._send_side`:
    the cross arrays hold exactly the off-block reference multiset that
    function derives from scratch, and ``np.unique`` of the same pair-key
    multiset yields the same sorted array.
    """
    if cross_src.size == 0:
        return {}
    lo, hi = partition.interval(rank)
    dest = partition.owner_of(cross_nbr)
    n = partition.num_elements
    pair_key = dest * np.intp(n) + cross_src
    uniq = _sorted_unique(pair_key)
    u_dest = uniq // n
    u_src = uniq % n
    send_lists: dict[int, np.ndarray] = {}
    change = np.flatnonzero(np.diff(u_dest)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [uniq.size]])
    for s, e in zip(starts, ends):
        d = int(u_dest[s])
        send_lists[d] = (u_src[s:e] - lo).astype(np.intp)
    return send_lists


def inspector_results_equal(a: InspectorResult, b: InspectorResult) -> bool:
    """Array-for-array equality of two inspector results (schedule and
    kernel plan; build times and strategies are excluded on purpose)."""
    sa, sb = a.schedule, b.schedule
    if sa.rank != sb.rank or not np.array_equal(sa.ghost_globals, sb.ghost_globals):
        return False
    if sorted(sa.send_lists) != sorted(sb.send_lists):
        return False
    if any(not np.array_equal(sa.send_lists[d], sb.send_lists[d])
           for d in sa.send_lists):
        return False
    if sorted(sa.recv_lists) != sorted(sb.recv_lists):
        return False
    if any(not np.array_equal(sa.recv_lists[s], sb.recv_lists[s])
           for s in sa.recv_lists):
        return False
    pa, pb = a.kernel_plan, b.kernel_plan
    return (
        pa.rank == pb.rank
        and pa.n_local == pb.n_local
        and np.array_equal(pa.slots, pb.slots)
        and np.array_equal(pa.starts, pb.starts)
        and np.array_equal(pa.counts, pb.counts)
    )


class IncrementalInspector:
    """Per-rank incremental Phase B state.

    Construction runs one full inspector build (charged as usual) and
    caches the rank's cross references; :meth:`rebuild` then patches the
    cached result to each new partition, falling back to a full
    :func:`run_inspector` when the crossover test says the diff is too
    large (or the intersection is empty).

    The instance assumes the *graph* is immutable for its lifetime and
    diffs each new partition against the partition its current result
    was built for — which is what the recovery path needs, where the
    session's own ``partition`` transits through the checkpoint's.
    """

    #: Strategies whose schedules the patch path reproduces.
    PATCHABLE = ("sort1", "sort2")

    def __init__(
        self,
        graph: CSRGraph,
        partition: IntervalPartition,
        rank: int,
        *,
        strategy: str = "sort2",
        ctx: "RankContext | None" = None,
        cost_model: InspectorCostModel = InspectorCostModel(),
        backend: str | None = None,
    ):
        if strategy not in self.PATCHABLE:
            raise ScheduleError(
                f"incremental rebuild requires a sorting strategy "
                f"{self.PATCHABLE}, got {strategy!r} (the simple "
                f"strategy's request-ordered ghost buffers cannot be "
                f"patched)"
            )
        self.graph = graph
        self.rank = rank
        self.strategy = strategy
        self.ctx = ctx
        self.cost_model = cost_model
        self.backend = backend
        self.num_patches = 0
        self.num_full_rebuilds = 0
        self.last_mode = "full"
        self.last_patch_cost = 0.0
        self.result = self._full_build(partition)

    # ------------------------------------------------------------------ #
    # full-build path (also the fallback)
    # ------------------------------------------------------------------ #

    def _full_build(self, partition: IntervalPartition) -> InspectorResult:
        result = run_inspector(
            self.graph,
            partition,
            self.rank,
            strategy=self.strategy,
            ctx=self.ctx,
            cost_model=self.cost_model,
            backend=self.backend,
        )
        self._capture(partition, result)
        return result

    def _capture(
        self, partition: IntervalPartition, result: InspectorResult
    ) -> None:
        """Refresh the cross-reference cache and full-cost sizes.

        Bookkeeping only — it mirrors information the build just derived,
        so no extra virtual time is charged.
        """
        lo, hi = partition.interval(self.rank)
        src, nbr = local_references(self.graph, partition, self.rank)
        off_mask = (nbr < lo) | (nbr >= hi)
        self.cross_src = src[off_mask].astype(np.intp)
        self.cross_nbr = nbr[off_mask].astype(np.intp)
        # Positions of the off-block references within the block's
        # reference array (== the kernel plan's slot order), ascending.
        # The patch path uses these to locate every slot it must rewrite
        # in O(boundary) instead of scanning all O(refs) slot values.
        self._off_pos = np.flatnonzero(off_mask)
        self.partition = partition
        self.result = result
        self._sizes = {
            "refs": int(nbr.size),
            "ghosts": result.schedule.ghost_size,
            "sends": result.schedule.send_volume,
        }

    def _full_cost_estimate(self) -> float:
        """Virtual cost of a full rebuild at the last observed sizes.

        Mirrors the sort1/sort2 charge formulas in
        :mod:`repro.runtime.schedule_builders`; the sizes track the most
        recent (full or patched) build, so the estimate is learned per
        run rather than fixed up front.
        """
        cm = self.cost_model
        s = self._sizes
        cost = (
            cm.sec_per_ref * s["refs"]
            + cm.sec_per_translate * s["ghosts"]
            + cm.sort_cost(s["ghosts"])
        )
        if self.strategy == "sort1":
            return cost + cm.sort_cost(s["sends"])
        return cost + cm.sec_per_linear_op * s["sends"]

    def _patch_cost_estimate(self, d: IntervalDiff) -> float:
        """Predicted virtual cost of patching through *d* (pre-patch).

        Upper-bounds the actual ``"inspector-incremental"`` charge using
        only structural quantities known before any work happens, so the
        full-vs-patch decision is deterministic and backend-identical.
        """
        cm = self.cost_model
        diff_refs = _range_ref_count(self.graph, d.lost) + _range_ref_count(
            self.graph, d.gained
        )
        cross = int(self.cross_src.size)
        s = self._sizes
        return (
            cm.sec_per_ref * diff_refs
            + 2.0 * cm.sec_per_linear_op * cross
            + cm.sec_per_translate * s["ghosts"]
            + cm.sort_cost(diff_refs)
            + cm.sec_per_linear_op * (s["ghosts"] + s["sends"])
        )

    # ------------------------------------------------------------------ #
    # the patch path
    # ------------------------------------------------------------------ #

    def rebuild(
        self,
        new_partition: IntervalPartition,
        *,
        force: str | None = None,
    ) -> InspectorResult:
        """Phase B for *new_partition*: patch if profitable, else full.

        ``force`` pins the decision for tests and measurements:
        ``"patch"`` always patches (provided the intersection is
        non-empty), ``"full"`` always rebuilds, ``None`` (default) runs
        the crossover test.
        """
        if force not in (None, "patch", "full"):
            raise ScheduleError(f"force must be None/'patch'/'full', got {force!r}")
        d = diff_interval(self.partition, new_partition, self.rank)
        patchable = d.n_kept > 0
        if force == "patch":
            if not patchable:
                raise ScheduleError(
                    f"rank {self.rank}: cannot force a patch across a "
                    f"disjoint interval move"
                )
            take_patch = True
        elif force == "full":
            take_patch = False
        else:
            take_patch = patchable and (
                self._patch_cost_estimate(d) < self._full_cost_estimate()
            )
        if not take_patch:
            self.num_full_rebuilds += 1
            self.last_mode = "full"
            self.last_patch_cost = 0.0
            return self._full_build(new_partition)
        result = self._patch(new_partition, d)
        self.num_patches += 1
        self.last_mode = "patched"
        # The full path counts itself inside run_inspector; the patch
        # path is the other arm of the same decision.
        metrics = getattr(self.ctx, "metrics", None)
        if metrics is not None:
            metrics.count("inspector.patch_builds")
        return result

    def _patch(
        self, new_partition: IntervalPartition, d: IntervalDiff
    ) -> InspectorResult:
        graph = self.graph
        rank = self.rank
        ctx = self.ctx
        t0 = ctx.clock if ctx is not None else 0.0
        lo1, hi1 = d.new_lo, d.new_hi

        # --- cross-reference update ----------------------------------- #
        # Keep entries whose source stays owned and whose target did not
        # just become local; the target cannot enter the kept interval
        # (it was off the OLD block, and kept is a subset of it).
        keep = (self.cross_src >= d.keep_lo) & (self.cross_src < d.keep_hi)
        if d.gained:
            keep &= ~_in_ranges(self.cross_nbr, d.gained)
        kept_src = self.cross_src[keep]
        kept_nbr = self.cross_nbr[keep]
        added_src = [kept_src]
        added_nbr = [kept_nbr]
        added = 0
        # Gained vertices contribute their own off-block references.
        for glo, ghi in d.gained:
            src_g, nbr_g = _range_refs(graph, glo, ghi)
            off = (nbr_g < lo1) | (nbr_g >= hi1)
            src_off = src_g[off]
            added_src.append(src_off)
            added_nbr.append(nbr_g[off])
            added += src_off.size
        # Lost vertices turn kept->lost edges into cross references; the
        # sorting strategies' symmetry assumption lets us find them by
        # scanning the lost rows for neighbors in the kept interval.
        back_rows = []
        for llo, lhi in d.lost:
            src_l, nbr_l = _range_refs(graph, llo, lhi)
            back = (nbr_l >= d.keep_lo) & (nbr_l < d.keep_hi)
            back_src = nbr_l[back]
            added_src.append(back_src)
            added_nbr.append(src_l[back])
            back_rows.append(back_src)
            added += back_src.size
        cross_src = np.concatenate(added_src)
        cross_nbr = np.concatenate(added_nbr)

        # --- exceptional slot positions ------------------------------- #
        # Every kept-row slot the kernel-plan patch must rewrite, located
        # in O(boundary) work: the cached off-block positions, plus —
        # via the same symmetry — references into the lost ranges, found
        # by expanding only the rows the lost-row scan just named.
        s0 = int(graph.indptr[d.keep_lo] - graph.indptr[d.old_lo])
        s1 = int(graph.indptr[d.keep_hi] - graph.indptr[d.old_lo])
        o = self._off_pos
        i0, i1 = np.searchsorted(o, (s0, s1))
        exc_pos = o[i0:i1]
        back_all = (
            np.concatenate(back_rows) if back_rows else np.empty(0, np.intp)
        )
        if back_all.size:
            gs = _sorted_unique(back_all)
            lens = graph.indptr[gs + 1] - graph.indptr[gs]
            row0 = graph.indptr[gs] - graph.indptr[d.old_lo]
            shift = row0 - np.concatenate(
                [np.zeros(1, np.intp), np.cumsum(lens[:-1])]
            )
            cand = np.repeat(shift, lens) + np.arange(
                int(lens.sum()), dtype=np.intp
            )
            vals = self.result.kernel_plan.slots[cand]
            k_lo = d.keep_lo - d.old_lo
            k_hi = d.keep_hi - d.old_lo
            lost_pos = cand[(vals < k_lo) | (vals >= k_hi)]
            exc_pos = _sorted_unique(np.concatenate([exc_pos, lost_pos]))

        # --- schedule -------------------------------------------------- #
        # Same pipeline as _sorted_schedule, fed the patched multiset:
        # unique ghost set, run-grouped recv side, pair-key send side.
        ghost_globals = _sorted_unique(cross_nbr)
        recv_lists, ghost_globals = _recv_side_sorted(
            new_partition, rank, ghost_globals
        )
        send_lists = _send_side_from_cross(
            new_partition, rank, cross_src, cross_nbr
        )
        schedule = CommSchedule(
            rank=rank,
            partition=new_partition,
            send_lists=send_lists,
            recv_lists=recv_lists,
            ghost_globals=ghost_globals,
        )
        plan, off_pos = self._patch_kernel_plan(
            new_partition, d, ghost_globals, exc_pos - s0
        )

        # --- virtual charge ------------------------------------------- #
        # Deterministic in the diff's structural sizes (and trivially
        # backend-identical: the patch is a single numpy implementation).
        cm = self.cost_model
        diff_refs = _range_ref_count(graph, d.lost) + _range_ref_count(
            graph, d.gained
        )
        sends = int(sum(a.size for a in send_lists.values()))
        cost = (
            cm.sec_per_ref * diff_refs
            + cm.sec_per_linear_op * int(self.cross_src.size + cross_src.size)
            + cm.sec_per_translate * int(ghost_globals.size)
            + cm.sort_cost(added)
            + cm.sec_per_linear_op * (int(ghost_globals.size) + sends)
        )
        _charge(ctx, cost, "inspector-incremental")
        self.last_patch_cost = cost

        build_time = (ctx.clock - t0) if ctx is not None else 0.0
        result = InspectorResult(
            schedule=schedule,
            kernel_plan=plan,
            strategy=self.strategy,
            build_time=build_time,
        )
        self.cross_src = cross_src
        self.cross_nbr = cross_nbr
        self._off_pos = off_pos
        self.partition = new_partition
        self.result = result
        self._sizes = {
            "refs": int(graph.indptr[hi1] - graph.indptr[lo1]),
            "ghosts": schedule.ghost_size,
            "sends": schedule.send_volume,
        }
        return result

    def _patch_kernel_plan(
        self,
        new_partition: IntervalPartition,
        d: IntervalDiff,
        ghost_globals: np.ndarray,
        exc: np.ndarray,
    ) -> tuple[KernelPlan, np.ndarray]:
        """Remap kept rows' slots by a constant shift plus boundary
        fixups; translate gained rows from scratch.  Bit-identical to
        :func:`~repro.runtime.kernels.build_kernel_plan` output.

        *exc* holds the positions (relative to the kept slot segment,
        ascending) of every kept-row reference whose target is not in
        the kept interval — the only slots the uniform shift gets wrong.
        Also returns the new off-block reference positions (the
        ``_off_pos`` cache for the next patch).
        """
        graph = self.graph
        old_plan = self.result.kernel_plan
        old_ghost = self.result.schedule.ghost_globals
        n_local0 = old_plan.n_local
        lo0 = d.old_lo
        lo1, hi1 = d.new_lo, d.new_hi
        n_local1 = hi1 - lo1
        g1 = ghost_globals.size

        # A kept row's reference into the kept interval maps by the
        # uniform shift lo0 - lo1 (global g: old slot g - lo0, new slot
        # g - lo1): one streaming add over the kept segment, then the
        # O(boundary)-sized exception set is remapped individually.
        s0 = int(graph.indptr[d.keep_lo] - graph.indptr[lo0])
        s1 = int(graph.indptr[d.keep_hi] - graph.indptr[lo0])
        old_slots = old_plan.slots[s0:s1]

        # Assemble straight into the final array (fresh-left | kept |
        # fresh-right) so the kept segment is written exactly once.
        slots = np.empty(
            int(graph.indptr[hi1] - graph.indptr[lo1]), dtype=np.intp
        )
        left = [r for r in d.gained if r[1] <= d.keep_lo]
        right = [r for r in d.gained if r[0] >= d.keep_hi]
        head = sum(
            int(graph.indptr[ghi] - graph.indptr[glo]) for glo, ghi in left
        )
        mapped = slots[head : head + (s1 - s0)]
        np.add(old_slots, lo0 - lo1, out=mapped)
        kept_off = np.empty(0, dtype=np.intp)
        if exc.size:
            es = old_slots[exc]
            g = np.empty(es.size, dtype=np.intp)
            was_local = es < n_local0
            g[was_local] = es[was_local] + lo0
            g[~was_local] = old_ghost[es[~was_local] - n_local0]
            new_slot = np.empty(es.size, dtype=np.intp)
            now_local = (g >= lo1) & (g < hi1)
            new_slot[now_local] = g[now_local] - lo1
            off = g[~now_local]
            if off.size:
                if g1 == 0:
                    raise ScheduleError(
                        f"rank {self.rank}: kept row references a global "
                        f"missing from the patched ghost buffer "
                        f"(asymmetric adjacency?)"
                    )
                pos = np.searchsorted(ghost_globals, off)
                ok = (pos < g1) & (
                    ghost_globals[np.minimum(pos, g1 - 1)] == off
                )
                if not np.all(ok):
                    raise ScheduleError(
                        f"rank {self.rank}: kept row references a global "
                        f"missing from the patched ghost buffer "
                        f"(asymmetric adjacency?)"
                    )
                new_slot[~now_local] = n_local1 + pos
            mapped[exc] = new_slot
            kept_off = head + exc[~now_local]

        # Gained rows: fresh translation (their references are all in the
        # patched ghost buffer or the new local block by construction),
        # written into the pre-sized output segment; returns the
        # positions of the row range's off-block references.
        def fresh(out: np.ndarray, base: int, glo: int, ghi: int) -> np.ndarray:
            nbr = graph.indices[graph.indptr[glo] : graph.indptr[ghi]]
            local = (nbr >= lo1) & (nbr < hi1)
            out[local] = nbr[local] - lo1
            off_idx = np.flatnonzero(~local)
            off = nbr[off_idx]
            if off.size:
                if g1 == 0:
                    raise ScheduleError(
                        f"rank {self.rank}: gained row has off-block "
                        f"references but the patched ghost buffer is empty"
                    )
                pos = np.searchsorted(ghost_globals, off)
                ok = (pos < g1) & (
                    ghost_globals[np.minimum(pos, g1 - 1)] == off
                )
                if not np.all(ok):
                    raise ScheduleError(
                        f"rank {self.rank}: gained row references a global "
                        f"missing from the patched ghost buffer"
                    )
                out[off_idx] = n_local1 + pos
            return base + off_idx

        off_parts = []
        cursor = 0
        for glo, ghi in left:
            m = int(graph.indptr[ghi] - graph.indptr[glo])
            off_parts.append(fresh(slots[cursor : cursor + m], cursor, glo, ghi))
            cursor += m
        off_parts.append(kept_off)
        cursor = head + (s1 - s0)
        for glo, ghi in right:
            m = int(graph.indptr[ghi] - graph.indptr[glo])
            off_parts.append(fresh(slots[cursor : cursor + m], cursor, glo, ghi))
            cursor += m
        # Each piece is ascending and pieces cover disjoint ascending
        # position ranges, so the concatenation is already sorted.
        off_pos = np.concatenate(off_parts)

        counts = np.asarray(
            graph.indptr[lo1 + 1 : hi1 + 1] - graph.indptr[lo1:hi1],
            dtype=np.intp,
        )
        # starts is the running sum of counts, which for contiguous rows
        # is just the indptr offsets — identical values to the
        # zeros+cumsum in build_kernel_plan, one subtraction instead.
        starts = np.asarray(
            graph.indptr[lo1:hi1] - graph.indptr[lo1], dtype=np.intp
        )
        plan = KernelPlan(
            rank=self.rank,
            n_local=n_local1,
            slots=slots,
            starts=starts,
            counts=counts,
        )
        return plan, off_pos
