"""Scalar (per-element loop) implementations of the runtime hot paths.

This module is the ``reference`` backend of :mod:`repro.runtime.backend`: a
faithful transcription of the paper-era per-element code — explicit Python
loops, scalar binary searches, hash-table dicts — for every operation the
``vectorized`` backend expresses as bulk numpy.  Each function documents the
vectorized counterpart it must match **bit for bit**; the differential suite
(``tests/test_backend_equivalence.py``) enforces the match on random meshes,
partitions, and capability vectors.

Keep these implementations boring and obviously correct: they are the
oracle the fast paths are diffed against, and the baseline the ``scale-*``
benchmarks measure speedups over.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ScheduleError
from repro.partition.intervals import IntervalPartition

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.csr import CSRGraph

__all__ = [
    "dereference_loop",
    "recv_side_sorted_loop",
    "sorted_schedule_parts_loop",
    "no_dedup_parts_loop",
    "dedup_first_seen_loop",
    "group_by_owner_loop",
    "kernel_slots_loop",
    "pack_loop",
    "unpack_loop",
    "scatter_add_loop",
    "scatter_replace_loop",
    "slab_pack_loop",
    "slab_unpack_loop",
    "iota_loop",
]


def dereference_loop(
    partition: IntervalPartition, global_indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element binary-search dereference (paper Fig. 3, scalar form).

    Matches :meth:`IntervalPartition.dereference` (one ``searchsorted``
    call) element for element.
    """
    bounds = partition.bounds.tolist()
    owners = partition.owners
    gi = np.asarray(global_indices, dtype=np.intp)
    owner = np.empty(gi.size, dtype=np.intp)
    local = np.empty(gi.size, dtype=np.intp)
    n = partition.num_elements
    for k, g in enumerate(gi.tolist()):
        if g < 0 or g >= n:
            from repro.errors import PartitionError

            raise PartitionError(f"global index out of range [0, {n})")
        b = bisect_right(bounds, g) - 1
        owner[k] = owners[b]
        local[k] = g - bounds[b]
    return owner, local


def _owned_refs(
    graph: "CSRGraph", partition: IntervalPartition, rank: int
) -> tuple[int, int, list[int], list[int]]:
    """(lo, hi, ref sources, ref targets) walked vertex by vertex."""
    lo, hi = partition.interval(rank)
    indptr = graph.indptr
    indices = graph.indices
    src: list[int] = []
    nbr: list[int] = []
    for v in range(lo, hi):
        for k in range(int(indptr[v]), int(indptr[v + 1])):
            src.append(v)
            nbr.append(int(indices[k]))
    return lo, hi, src, nbr


def recv_side_sorted_loop(
    partition: IntervalPartition,
    rank: int,
    off_globals_sorted: np.ndarray,
) -> dict[int, np.ndarray]:
    """Recv lists for a ghost buffer in ascending global order, walked
    entry by entry (matches ``_recv_side_sorted``'s run grouping)."""
    bounds = partition.bounds.tolist()
    owners = partition.owners.tolist()
    ghost_list = np.asarray(off_globals_sorted, dtype=np.intp).tolist()
    recv_lists: dict[int, np.ndarray] = {}
    run_start = 0
    run_owner: int | None = None
    for i, g in enumerate(ghost_list):
        owner = owners[bisect_right(bounds, g) - 1]
        if owner == rank:
            raise ScheduleError(
                f"rank {rank}: off-processor reference resolved to itself"
            )
        if owner != run_owner:
            if run_owner is not None:
                recv_lists[run_owner] = np.arange(run_start, i, dtype=np.intp)
            run_owner = owner
            run_start = i
    if run_owner is not None:
        recv_lists[run_owner] = np.arange(
            run_start, len(ghost_list), dtype=np.intp
        )
    return recv_lists


def sorted_schedule_parts_loop(
    graph: "CSRGraph", partition: IntervalPartition, rank: int
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray], np.ndarray, dict[str, int]]:
    """Scalar construction of the sort1/sort2 schedule parts.

    Returns ``(send_lists, recv_lists, ghost_globals, sizes)`` equal to what
    :func:`repro.runtime.schedule_builders._sorted_schedule` derives with
    ``np.unique`` / fancy indexing.
    """
    lo, hi, src, nbr = _owned_refs(graph, partition, rank)
    bounds = partition.bounds.tolist()
    owners = partition.owners.tolist()

    # Dedup off-processor references through a hash table, then sort — the
    # ghost buffer is laid out in ascending global order.
    ghost_set: dict[int, None] = {}
    send_pairs: dict[tuple[int, int], None] = {}
    for s, g in zip(src, nbr):
        if lo <= g < hi:
            continue
        ghost_set[g] = None
        dest = owners[bisect_right(bounds, g) - 1]
        send_pairs[(dest, s)] = None
    ghost_list = sorted(ghost_set)
    ghost_globals = np.asarray(ghost_list, dtype=np.intp)
    recv_lists = recv_side_sorted_loop(partition, rank, ghost_globals)

    # Send side: by symmetry, destination d needs exactly my vertices with
    # an edge into d's block, in ascending local order.
    send_accum: dict[int, list[int]] = {}
    for dest, s in sorted(send_pairs):
        send_accum.setdefault(dest, []).append(s - lo)
    send_lists = {
        dest: np.asarray(locals_, dtype=np.intp)
        for dest, locals_ in send_accum.items()
    }

    sizes = {
        "refs": len(nbr),
        "ghosts": len(ghost_list),
        "sends": sum(int(a.size) for a in send_lists.values()),
    }
    return send_lists, recv_lists, ghost_globals, sizes


def no_dedup_parts_loop(
    graph: "CSRGraph", partition: IntervalPartition, rank: int
) -> tuple[dict[int, np.ndarray], np.ndarray]:
    """Scalar parts of the no-dedup schedule: one entry per cross edge.

    Returns ``(send_lists, off_sorted)`` matching the lexsort-based grouping
    in :func:`repro.runtime.schedule_builders.build_schedule_no_dedup`.
    """
    lo, hi, src, nbr = _owned_refs(graph, partition, rank)
    bounds = partition.bounds.tolist()
    owners = partition.owners.tolist()
    off: list[int] = []
    pairs: list[tuple[int, int]] = []  # (dest, src) per cross edge, walk order
    for s, g in zip(src, nbr):
        if lo <= g < hi:
            continue
        off.append(g)
        pairs.append((owners[bisect_right(bounds, g) - 1], s))
    off_sorted = np.asarray(sorted(off), dtype=np.intp)
    send_accum: dict[int, list[int]] = {}
    for dest, s in sorted(pairs):  # stable: duplicates are identical pairs
        send_accum.setdefault(dest, []).append(s - lo)
    send_lists = {
        dest: np.asarray(locals_, dtype=np.intp)
        for dest, locals_ in send_accum.items()
    }
    return send_lists, off_sorted


def dedup_first_seen_loop(values: np.ndarray) -> np.ndarray:
    """Dedup preserving first-appearance order (the paper's hash table).

    Matches the ``np.unique(..., return_index=True)`` + stable-argsort idiom
    used by the simple strategy.
    """
    seen: dict[int, None] = {}
    for v in np.asarray(values, dtype=np.intp).tolist():
        seen[v] = None
    return np.fromiter(seen, dtype=np.intp, count=len(seen))


def group_by_owner_loop(
    owners: np.ndarray,
) -> dict[int, np.ndarray]:
    """Positions per owner value, preserving order within each group.

    Matches the vectorized stable ``argsort`` grouping: the returned dict
    maps each distinct owner to the positions where it occurs.
    """
    groups: dict[int, list[int]] = {}
    for pos, o in enumerate(np.asarray(owners, dtype=np.intp).tolist()):
        groups.setdefault(int(o), []).append(pos)
    return {o: np.asarray(p, dtype=np.intp) for o, p in groups.items()}


def kernel_slots_loop(
    nbr: np.ndarray, lo: int, hi: int, ghost_globals: np.ndarray
) -> np.ndarray:
    """Per-reference address translation into the [local | ghost] buffer.

    Matches the ``searchsorted``-based translation in
    :func:`repro.runtime.kernels.build_kernel_plan` for both sorted and
    request-ordered ghost buffers.
    """
    n_local = hi - lo
    lookup = {int(g): i for i, g in enumerate(ghost_globals)}
    slots = np.empty(nbr.size, dtype=np.intp)
    for k, g in enumerate(np.asarray(nbr, dtype=np.intp).tolist()):
        if lo <= g < hi:
            slots[k] = g - lo
        else:
            try:
                slots[k] = n_local + lookup[g]
            except KeyError:
                raise ScheduleError(
                    f"reference {g} missing from ghost buffer"
                ) from None
    return slots


# ---------------------------------------------------------------------- #
# executor buffer pack/unpack (phase C)
# ---------------------------------------------------------------------- #


def pack_loop(data: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Copy ``data[idx]`` into a fresh send buffer, one element at a time."""
    buf = np.empty((idx.size,) + data.shape[1:], dtype=data.dtype)
    for k, i in enumerate(idx.tolist()):
        buf[k] = data[i]
    return buf


def unpack_loop(ghost: np.ndarray, pos: np.ndarray, payload: np.ndarray) -> None:
    """Place received elements into their ghost slots, one at a time."""
    for k, p in enumerate(pos.tolist()):
        ghost[p] = payload[k]


def scatter_add_loop(
    local: np.ndarray, idx: np.ndarray, payload: np.ndarray
) -> None:
    """Accumulate contributions element by element (matches ``np.add.at``,
    which also applies duplicates in index order)."""
    for k, i in enumerate(idx.tolist()):
        local[i] += payload[k]


def scatter_replace_loop(
    local: np.ndarray, idx: np.ndarray, payload: np.ndarray
) -> None:
    """Overwrite elements one at a time (last duplicate wins, as with
    fancy-index assignment)."""
    for k, i in enumerate(idx.tolist()):
        local[i] = payload[k]


# ---------------------------------------------------------------------- #
# redistribution slab pack/unpack (phase D)
# ---------------------------------------------------------------------- #


def slab_pack_loop(data: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Copy the contiguous slab ``data[start:stop]`` into a fresh send
    buffer one element at a time (matches ``np.ascontiguousarray`` of the
    vectorized slice)."""
    buf = np.empty((stop - start,) + data.shape[1:], dtype=data.dtype)
    for k in range(stop - start):
        buf[k] = data[start + k]
    return buf


def slab_unpack_loop(out: np.ndarray, start: int, payload: np.ndarray) -> None:
    """Place a received slab at ``out[start:...]`` one element at a time
    (matches the vectorized slice assignment)."""
    for k in range(payload.shape[0]):
        out[start + k] = payload[k]


def iota_loop(lo: int, hi: int) -> np.ndarray:
    """Build the vertex-identity run [lo, hi) one element at a time
    (matches ``np.arange(lo, hi, dtype=np.intp)``)."""
    arr = np.empty(hi - lo, dtype=np.intp)
    for k in range(hi - lo):
        arr[k] = lo + k
    return arr
