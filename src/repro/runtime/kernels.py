"""The irregular loop (paper Fig. 8) and its parallel execution plan.

The paper's kernel, verbatim::

    for each vertex i:
        t[i] = sum over neighbors j of y[ia(j)]
    for each vertex i:
        y[i] = t[i] / degree(i)

i.e. one Jacobi-style neighbor-averaging sweep through an indirection
array.  :func:`sequential_kernel` is the single-machine reference;
:class:`KernelPlan` is the per-rank compiled form produced by the
inspector (address-translated slots into the combined [local | ghost]
buffer), applied with a fully vectorized ``add.reduceat``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.schedule import CommSchedule

__all__ = [
    "KernelCostModel",
    "KernelPlan",
    "build_kernel_plan",
    "sequential_kernel",
    "sequential_kernel_reference",
    "run_sequential",
]


@dataclass(frozen=True)
class KernelCostModel:
    """Virtual cost of one kernel sweep, per reference and per vertex.

    Defaults calibrated so the paper's workload (30,269 vertices, 44,929
    edges, 500 iterations) takes ~0.2 virtual seconds per iteration on a
    speed-1.0 workstation — matching Table 4's 97.61 s single-machine run.
    """

    sec_per_reference: float = 2.0e-6
    sec_per_vertex: float = 0.5e-6

    def sweep_seconds(self, n_references: int, n_vertices: int) -> float:
        return (
            self.sec_per_reference * n_references
            + self.sec_per_vertex * n_vertices
        )


def sequential_kernel(graph: CSRGraph, y: np.ndarray) -> np.ndarray:
    """One vectorized sweep of the Fig. 8 loop over the whole graph."""
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (graph.num_vertices,):
        raise ScheduleError(
            f"y has shape {y.shape}, expected ({graph.num_vertices},)"
        )
    deg = graph.degrees
    gathered = y[graph.indices]
    sums = np.zeros(graph.num_vertices)
    nonzero = deg > 0
    starts = graph.indptr[:-1]
    # reduceat misbehaves on empty segments; guard by computing only rows
    # with neighbors and fixing empty rows to keep their value.
    if gathered.size:
        seg_sums = np.add.reduceat(gathered, starts[nonzero])
        sums[nonzero] = seg_sums
    out = y.copy()
    out[nonzero] = sums[nonzero] / deg[nonzero]
    return out


def sequential_kernel_reference(graph: CSRGraph, y: np.ndarray) -> np.ndarray:
    """Literal transcription of Fig. 8 (pure Python loops) — test oracle."""
    n = graph.num_vertices
    t = np.zeros(n)
    k = 0
    out = np.array(y, dtype=np.float64, copy=True)
    for i in range(n):
        cnt = int(graph.indptr[i + 1] - graph.indptr[i])
        for _ in range(cnt):
            t[i] += y[graph.indices[k]]
            k += 1
    for i in range(n):
        cnt = int(graph.indptr[i + 1] - graph.indptr[i])
        if cnt:
            out[i] = t[i] / cnt
    return out


def run_sequential(
    graph: CSRGraph, y0: np.ndarray, iterations: int
) -> np.ndarray:
    """Run the Fig. 8 loop *iterations* times sequentially (the oracle for
    the parallel runs and the T(p_i) baseline of the Sec. 4 efficiency)."""
    y = np.asarray(y0, dtype=np.float64).copy()
    for _ in range(iterations):
        y = sequential_kernel(graph, y)
    return y


@dataclass(frozen=True)
class KernelPlan:
    """Per-rank compiled kernel: translated addresses, ready to sweep.

    ``slots`` indexes the combined ``[local | ghost]`` value buffer;
    ``starts``/``counts`` delimit each owned vertex's neighbor segment —
    the executor-phase output of the paper's address translation.
    """

    rank: int
    n_local: int
    slots: np.ndarray
    starts: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.starts.shape != self.counts.shape or self.starts.ndim != 1:
            raise ScheduleError("starts/counts must be equal-length 1-D")
        if self.starts.size != self.n_local:
            raise ScheduleError(
                f"plan covers {self.starts.size} vertices, block holds "
                f"{self.n_local}"
            )

    @property
    def n_references(self) -> int:
        return int(self.slots.size)

    def sweep(self, local_y: np.ndarray, ghost: np.ndarray) -> np.ndarray:
        """One vectorized kernel sweep over this rank's vertices."""
        combined = np.concatenate([local_y, ghost]) if ghost.size else local_y
        out = np.array(local_y, dtype=np.float64, copy=True)
        if self.slots.size == 0:
            return out
        gathered = combined[self.slots]
        nonzero = self.counts > 0
        seg_sums = np.add.reduceat(gathered, self.starts[nonzero])
        out[nonzero] = seg_sums / self.counts[nonzero]
        return out

    def sweep_reference(self, local_y: np.ndarray, ghost: np.ndarray) -> np.ndarray:
        """Loop transcription of Fig. 8 over local data — test oracle."""
        combined = np.concatenate([local_y, ghost]) if ghost.size else local_y
        out = np.array(local_y, dtype=np.float64, copy=True)
        for i in range(self.n_local):
            cnt = int(self.counts[i])
            if not cnt:
                continue
            t = 0.0
            for k in range(self.starts[i], self.starts[i] + cnt):
                t += combined[self.slots[k]]
            out[i] = t / cnt
        return out


def build_kernel_plan(
    graph: CSRGraph,
    partition: IntervalPartition,
    schedule: CommSchedule,
    *,
    backend: str | None = None,
) -> KernelPlan:
    """Translate the global Fig. 8 indirection into local+ghost slots.

    The address translation of Sec. 2 item 4: local neighbors become
    offsets into the local block; off-processor neighbors become
    ``n_local + position`` in the (sorted or request-ordered) ghost buffer.
    """
    from repro.runtime.backend import resolve_backend

    rank = schedule.rank
    lo, hi = partition.interval(rank)
    n_local = hi - lo
    start, stop = graph.indptr[lo], graph.indptr[hi]
    nbr = graph.indices[start:stop]
    counts = np.diff(graph.indptr[lo : hi + 1]).astype(np.intp)
    if resolve_backend(backend) == "reference":
        from repro.runtime.reference import kernel_slots_loop

        try:
            slots = kernel_slots_loop(nbr, lo, hi, schedule.ghost_globals)
        except ScheduleError as exc:
            raise ScheduleError(f"rank {rank}: {exc}") from None
    else:
        slots = np.empty(nbr.size, dtype=np.intp)
        local_mask = (nbr >= lo) & (nbr < hi)
        slots[local_mask] = nbr[local_mask] - lo
        off = nbr[~local_mask]
        if off.size:
            ghost = schedule.ghost_globals
            if ghost.size == 0:
                raise ScheduleError(
                    f"rank {rank}: off-processor references but empty ghost "
                    "buffer"
                )
            pos = np.searchsorted(ghost, off)
            ok = (pos < ghost.size) & (
                ghost[np.minimum(pos, ghost.size - 1)] == off
            )
            if not np.all(ok):
                # Request-ordered ghost buffers (simple strategy) are not
                # sorted; fall back to a dictionary translation.
                lookup = {int(g): i for i, g in enumerate(ghost)}
                try:
                    pos = np.fromiter(
                        (lookup[int(g)] for g in off),
                        dtype=np.intp,
                        count=off.size,
                    )
                except KeyError as exc:
                    raise ScheduleError(
                        f"rank {rank}: reference {exc} missing from ghost "
                        "buffer"
                    ) from None
            slots[~local_mask] = n_local + pos
    # An empty interval (a drained or standby rank under elastic
    # membership) has no vertices and therefore no segment starts.
    starts = np.zeros(counts.size, dtype=np.intp)
    if counts.size:
        starts[1:] = np.cumsum(counts[:-1])
    return KernelPlan(
        rank=rank, n_local=n_local, slots=slots, starts=starts, counts=counts
    )
