"""Spawn real OS processes and run a rank function on each.

This is the real-world counterpart of :class:`repro.net.spmd.SPMDRunner`:
``run_real_spmd(cluster, fn, *args)`` executes ``fn(ctx, *args)`` on one
OS process per rank, connected pairwise by loopback TCP sockets, and
returns the same :class:`~repro.net.spmd.SPMDResult` shape (per-rank
return values and final clocks — wall seconds here, virtual in the sim).

Bootstrap protocol (parent <-> workers over ``multiprocessing.Pipe``):

1. each worker binds a listener on ``127.0.0.1:0`` and reports its port;
2. the parent broadcasts the full port list;
3. worker ``r`` dials every rank ``s < r`` (announcing its own rank in a
   4-byte hello) and accepts connections from every rank ``s > r`` —
   deadlock-free because listeners are bound before any port is reported,
   so a dial can complete before the acceptor reaches ``accept()``;
4. every worker runs one initial barrier, aligning the latched clocks'
   epoch across ranks, then calls the rank function.

Failure semantics mirror the sim runner: a worker that raises sends an
error-shutdown frame to its peers (their blocked receives wake with
:class:`~repro.errors.MailboxClosedError`), secondary mailbox-closed
errors are filtered, and the parent raises
:class:`~repro.errors.RankFailedError` with the primary exceptions.  A
worker that dies without reporting (killed, segfault) is surfaced as a
:class:`~repro.errors.CommunicationError` naming the rank and exit code.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import struct
import time
import traceback
from typing import Any, Callable

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    MailboxClosedError,
    RankFailedError,
)
import logging

from repro.net.cluster import ClusterSpec
from repro.net.comm import resolve_recv_timeout
from repro.net.framing import decode_payload, encode_payload
from repro.net.trace import TraceLog
from repro.obs.logconf import configure_logging
from repro.runtime.procs.context import RealCommunicator, RealRankContext

_log = logging.getLogger("repro.procs")

__all__ = ["run_real_spmd"]

#: How long the parent waits for the socket-mesh bootstrap phase.
_BOOTSTRAP_TIMEOUT = 60.0
_HELLO = struct.Struct("<i")


def _resolve_start_method(explicit: str | None) -> str:
    """Start method: explicit arg > ``REPRO_MP_START`` env > fork if
    available (fast; the cluster/graph are inherited, not pickled)."""
    method = explicit or os.environ.get("REPRO_MP_START")
    if method:
        if method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"multiprocessing start method {method!r} not available; "
                f"pick from {multiprocessing.get_all_start_methods()}"
            )
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _build_mesh(
    rank: int, size: int, listener: socket.socket, ports: list[int]
) -> dict[int, socket.socket]:
    """Connect this rank to every peer; returns peer -> socket."""
    peers: dict[int, socket.socket] = {}
    for s in range(rank):
        sock = socket.create_connection(
            ("127.0.0.1", ports[s]), timeout=_BOOTSTRAP_TIMEOUT
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(_HELLO.pack(rank))
        peers[s] = sock
    listener.settimeout(_BOOTSTRAP_TIMEOUT)
    for _ in range(size - 1 - rank):
        sock, _addr = listener.accept()
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = b""
        while len(hello) < _HELLO.size:
            chunk = sock.recv(_HELLO.size - len(hello))
            if not chunk:
                raise CommunicationError(
                    f"rank {rank}: peer hung up during mesh handshake"
                )
            hello += chunk
        (peer,) = _HELLO.unpack(hello)
        if not (rank < peer < size):
            raise CommunicationError(
                f"rank {rank}: bad hello from alleged rank {peer}"
            )
        peers[peer] = sock
    listener.close()
    return peers


def _worker_main(
    rank: int,
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    conn: Any,
    recv_timeout: float,
    trace: bool,
    trace_capacity: int | None,
) -> None:
    comm: RealCommunicator | None = None
    configure_logging(rank=rank)
    try:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(cluster.size)
        conn.send(("port", listener.getsockname()[1]))
        kind, ports = conn.recv()
        if kind != "ports":  # pragma: no cover - protocol invariant
            raise CommunicationError(f"unexpected control message {kind!r}")
        peers = _build_mesh(rank, cluster.size, listener, ports)
        comm = RealCommunicator(
            cluster, rank, peers, recv_timeout=recv_timeout,
            trace=trace, trace_capacity=trace_capacity,
        )
        ctx = RealRankContext(comm)
        ctx.barrier()  # align the latched-clock epoch across ranks
        value = fn(ctx, *args, **kwargs)
        # Snapshot the span buffer BEFORE the close (close discards the
        # communicator); ship it through the framing codec so the wire
        # format is the one the rest of the real world already speaks.
        blob = None
        if trace:
            kind_, meta, body = encode_payload(comm.trace.events())
            blob = (kind_, bytes(meta), bytes(body))
        comm.close(clean=True)
        comm = None
        conn.send(("ok", value, ctx.clock, blob))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        if comm is not None:
            comm.close(clean=False)
        try:
            conn.send(("error", exc))
        except Exception:
            conn.send(
                ("error-text",
                 f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )
    finally:
        conn.close()


def _decode_error(msg: tuple) -> BaseException:
    if msg[0] == "error":
        return msg[1]
    return CommunicationError(f"remote rank error: {msg[1]}")


def run_real_spmd(
    cluster: ClusterSpec,
    fn: Callable[..., Any],
    *args: Any,
    trace: bool = False,
    trace_capacity: int | None = None,
    recv_timeout: float | None = None,
    start_method: str | None = None,
    **kwargs: Any,
):
    """Execute ``fn(ctx, *args, **kwargs)`` on one OS process per rank.

    Returns a :class:`~repro.net.spmd.SPMDResult` whose ``clocks`` are
    barrier-aligned wall seconds.  ``fn`` and all arguments must be
    picklable under the ``spawn`` start method; under ``fork`` (the
    default where available) they are inherited.
    """
    from repro.net.spmd import SPMDResult  # local import: avoid a cycle

    timeout = resolve_recv_timeout(recv_timeout)
    size = cluster.size
    mp = multiprocessing.get_context(_resolve_start_method(start_method))
    conns = []
    procs = []
    try:
        for r in range(size):
            parent_conn, child_conn = mp.Pipe()
            p = mp.Process(
                target=_worker_main,
                args=(r, cluster, fn, args, kwargs, child_conn, timeout,
                      trace, trace_capacity),
                name=f"repro-rank-{r}",
                daemon=True,
            )
            p.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(p)

        # Phase 1: collect listener ports, broadcast the full list.
        ports: list[int] = [0] * size
        deadline = time.monotonic() + _BOOTSTRAP_TIMEOUT
        for r in range(size):
            if not conns[r].poll(max(0.0, deadline - time.monotonic())):
                raise CommunicationError(
                    f"rank {r}: socket bootstrap timed out after "
                    f"{_BOOTSTRAP_TIMEOUT}s"
                )
            kind, port = conns[r].recv()
            if kind != "port":
                raise CommunicationError(
                    f"rank {r}: unexpected control message {kind!r}"
                )
            ports[r] = port
        for r in range(size):
            conns[r].send(("ports", ports))

        # Phase 2: collect results.  Workers self-police deadlocks via
        # recv_timeout, so the parent only errors on ranks that die
        # without reporting.
        values: list[Any] = [None] * size
        clocks: list[float] = [0.0] * size
        blobs: list[tuple | None] = [None] * size
        failures: dict[int, BaseException] = {}
        pending = set(range(size))
        while pending:
            progressed = False
            for r in sorted(pending):
                if conns[r].poll(0.05):
                    progressed = True
                    try:
                        msg = conns[r].recv()
                    except (EOFError, Exception) as exc:
                        failures[r] = CommunicationError(
                            f"rank {r}: undecodable result from worker: {exc}"
                        )
                        pending.discard(r)
                        continue
                    if msg[0] == "ok":
                        values[r], clocks[r] = msg[1], msg[2]
                        blobs[r] = msg[3]
                    else:
                        failures[r] = _decode_error(msg)
                    pending.discard(r)
                elif procs[r].exitcode is not None:
                    progressed = True
                    failures[r] = CommunicationError(
                        f"rank {r}: worker process died without reporting "
                        f"(exit code {procs[r].exitcode})"
                    )
                    pending.discard(r)
            if not progressed:
                time.sleep(0.01)
    finally:
        for p in procs:
            p.join(timeout=10.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for c in conns:
            c.close()

    if failures:
        primary = {
            r: e
            for r, e in failures.items()
            if not isinstance(e, MailboxClosedError)
        }
        raise RankFailedError(primary or failures)

    merged = TraceLog(enabled=trace, capacity=trace_capacity)
    if trace:
        for r in range(size):
            if blobs[r] is None:
                continue
            kind, meta, body = blobs[r]
            merged.extend(decode_payload(kind, meta, body))
        _log.debug(
            "merged %d trace event(s) from %d worker(s)", len(merged), size
        )

    return SPMDResult(
        values=values,
        clocks=clocks,
        trace=merged,
        cluster=cluster,
    )
