"""Real-process rank contexts: the :class:`RankContext` API over sockets.

One :class:`RealCommunicator` lives in each worker OS process.  It owns the
peer sockets, one receiver thread per peer (depositing decoded frames into
the rank's :class:`~repro.net.mailbox.Mailbox`, which provides the same
(source, tag) matching and FIFO guarantees as the sim world), and the
rank's **latched wall clock**.

Latched wall clock
------------------
The adaptive runtime makes *replicated* collective decisions: every rank
evaluates the same predicate (checkpoint due? membership change? remap
profitable?) on inputs that must be identical, or the SPMD protocol
deadlocks.  Several of those inputs are reads of ``ctx.clock`` taken right
after a barrier.  A naive ``time.monotonic()`` clock would return a
slightly different value on every rank and desynchronize the decisions.

Instead, ``ctx.clock`` is a *stored* value that advances in two ways:

* every communication/compute operation latches it forward to the rank's
  current wall time (``max`` keeps it monotonic), so spans measured as
  ``ctx.clock - t0`` reflect real elapsed time; and
* :meth:`RealRankContext.barrier` runs an explicit max-agreement round
  (gather entry clocks to rank 0, broadcast the max ``M``): every rank
  **sets** its clock to the same ``M`` and re-bases its wall offset.

Reads between operations therefore return a stable, rank-agreed value at
every barrier boundary — exactly the property the sim world's virtual
clocks provide — while still measuring real wall time between barriers.
``compute``/``charge`` only latch (the host already did the work for
real); modeled virtual costs are never added to the real clock.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import CommunicationError, MailboxClosedError
from repro.net.cluster import ClusterSpec
from repro.net.framing import (
    KIND_SHUTDOWN,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)
from repro.net.mailbox import Mailbox
from repro.net.message import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    Tags,
    pack_arrays,
    payload_nbytes,
    unpack_arrays,
)
from repro.net.trace import TraceEvent, TraceLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

__all__ = ["RealCommunicator", "RealRankContext"]


class RealCommunicator:
    """Per-process shared state for one real-world SPMD run.

    Exposes the attributes runtime code reaches for on the sim
    :class:`~repro.net.comm.Communicator` — notably ``network`` (the
    analytic pricing model used by the load-balancing strategy's
    profitability test) and ``recv_timeout``.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        rank: int,
        peers: dict[int, socket.socket],
        *,
        recv_timeout: float,
        trace: bool = False,
        trace_capacity: int | None = None,
    ):
        self.cluster = cluster
        self.size = cluster.size
        self.rank = rank
        #: Analytic network model instance: real sends do not consult it,
        #: but replicated cost estimates (remap/checkpoint pricing inside
        #: the adaptive strategy) do, exactly as in the sim world.
        self.network = cluster.make_network()
        self.recv_timeout = recv_timeout
        #: Per-process event log over the latched wall clock; the worker
        #: ships its events back to the parent on clean shutdown.
        self.trace = TraceLog(enabled=trace, capacity=trace_capacity)
        self.mailbox = Mailbox(rank)
        self._peers = dict(peers)
        self._t0 = time.perf_counter()
        self._closing = False
        self._clean_peers: set[int] = set()
        self._readers = [
            threading.Thread(
                target=self._reader,
                args=(peer, sock),
                name=f"repro-real-{rank}-recv-{peer}",
                daemon=True,
            )
            for peer, sock in self._peers.items()
        ]
        for t in self._readers:
            t.start()

    # -------------------------------------------------------------- #
    # wire I/O
    # -------------------------------------------------------------- #

    def wall(self) -> float:
        """Raw wall seconds since this communicator was created."""
        return time.perf_counter() - self._t0

    def send_payload(self, dest: int, tag: int, payload: Any) -> int:
        """Encode and write one payload frame to *dest* (never self);
        returns the wire size in bytes."""
        sock = self._peers.get(dest)
        if sock is None:
            raise CommunicationError(
                f"rank {self.rank}: no socket to rank {dest}"
            )
        kind, meta, body = encode_payload(payload)
        try:
            return send_frame(sock, self.rank, tag, kind, meta, body)
        except OSError as exc:
            raise CommunicationError(
                f"rank {self.rank}: send to rank {dest} (tag {tag}) failed: "
                f"{exc}"
            ) from exc

    def _reader(self, peer: int, sock: socket.socket) -> None:
        """Receiver loop: one per peer socket, deposits into the mailbox."""
        try:
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    # EOF: clean only if the peer announced it first.
                    if peer not in self._clean_peers and not self._closing:
                        self.mailbox.close()
                    return
                if frame.kind == KIND_SHUTDOWN:
                    clean = bool(pickle.loads(frame.meta))
                    if clean:
                        self._clean_peers.add(peer)
                        continue  # keep draining until EOF
                    self.mailbox.close()  # error cascade, like sim shutdown
                    return
                now = self.wall()
                msg = Message(
                    frame.source,
                    self.rank,
                    frame.tag,
                    decode_payload(frame.kind, frame.meta, frame.body),
                    frame.nbytes,
                    send_time=now,
                    arrival_time=now,
                )
                self.mailbox.deposit(msg)
        except MailboxClosedError:
            return  # our own rank already failed; drop the stream
        except Exception:
            if not self._closing:
                self.mailbox.close()

    def close(self, *, clean: bool) -> None:
        """Announce departure to all peers and tear the sockets down.

        A clean close lets peers keep running (their receives of anything
        still in flight succeed; a receive that *waits* on us afterwards
        hits their ``recv_timeout``).  An error close makes every peer's
        mailbox close, waking blocked receivers with
        :class:`~repro.errors.MailboxClosedError` — the same failure
        cascade the sim world's ``Communicator.shutdown`` produces.
        """
        self._closing = True
        meta = pickle.dumps(bool(clean))
        for peer, sock in self._peers.items():
            try:
                send_frame(sock, self.rank, 0, KIND_SHUTDOWN, meta, b"")
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        deadline = time.monotonic() + (5.0 if clean else 2.0)
        for t in self._readers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        for sock in self._peers.values():
            try:
                sock.close()
            except OSError:
                pass


class RealRankContext:
    """The per-rank API, backed by real sockets and a latched wall clock.

    Implements the same surface as :class:`~repro.net.comm.RankContext`;
    rank functions, collectives, the executor, and the adaptive session
    run unmodified on either.
    """

    def __init__(self, comm: RealCommunicator):
        self._comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.proc = comm.cluster.processors[comm.rank]
        self._clock = 0.0
        self._offset = 0.0
        self.metrics = MetricsRegistry()
        #: Spans over the latched wall clock: the same kinds and nesting
        #: as the sim world, so sim-vs-real span structure is comparable.
        self.tracer = Tracer(comm.trace, comm.rank, clock_fn=self._now)

    # -------------------------------------------------------------- #
    # latched wall clock
    # -------------------------------------------------------------- #

    def _now(self) -> float:
        return self._comm.wall() + self._offset

    def _latch(self) -> None:
        now = self._now()
        if now > self._clock:
            self._clock = now

    def _adopt(self, agreed: float) -> None:
        """Set the clock to a barrier-agreed value and re-base the offset."""
        self._clock = max(self._clock, float(agreed))
        self._offset = self._clock - self._comm.wall()

    @property
    def clock(self) -> float:
        """Latched wall time in seconds (see module docstring)."""
        return self._clock

    def charge(self, seconds: float) -> None:
        """Validate like the sim world, then latch (wall time is not
        advanced by modeled costs — the host clock is authoritative)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._latch()

    def compute(self, work_seconds: float, *, label: str = "") -> None:
        """Latch the clock forward to now: the computation already ran on
        the host, so its real duration is captured by the latch."""
        if work_seconds < 0:
            raise ValueError(f"work_seconds must be >= 0, got {work_seconds}")
        t0 = self._clock
        self._latch()
        self._comm.trace.record(
            TraceEvent("compute", self.rank, t0, self._clock, label=label)
        )

    def compute_items(
        self, n_items: int, sec_per_item: float, *, label: str = ""
    ) -> None:
        if n_items < 0 or sec_per_item < 0:
            raise ValueError("n_items and sec_per_item must be >= 0")
        self._latch()

    # -------------------------------------------------------------- #
    # point-to-point
    # -------------------------------------------------------------- #

    def send(self, dest: int, payload: Any, tag: int = Tags.USER_BASE) -> None:
        if not (0 <= dest < self.size):
            raise CommunicationError(f"send to invalid rank {dest}")
        if dest == self.rank:
            self._latch()
            msg = Message(
                self.rank, dest, tag, payload, payload_nbytes(payload),
                send_time=self._clock, arrival_time=self._clock,
            )
            self._comm.mailbox.deposit(msg)
            return
        t0 = self._now()
        nbytes = self._comm.send_payload(dest, tag, payload)
        self._latch()
        self._comm.trace.record(
            TraceEvent("send", self.rank, t0, self._clock,
                       nbytes=nbytes, peer=dest, tag=tag)
        )
        self.metrics.count("net.messages_sent")
        self.metrics.count("net.bytes_sent", nbytes)

    def multicast(
        self, dests: Sequence[int], payload: Any, tag: int = Tags.USER_BASE
    ) -> None:
        """Sequential unicasts: loopback TCP has no hardware multicast."""
        for d in dests:
            if d != self.rank:
                self.send(d, payload, tag)

    def send_packed(
        self, dest: int, arrays: Sequence[np.ndarray], tag: int = Tags.USER_BASE
    ) -> None:
        self.send(dest, pack_arrays(list(arrays)), tag)

    def recv_packed(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> list[np.ndarray]:
        return unpack_arrays(self.recv(source, tag))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        return_message: bool = False,
    ) -> Any:
        t0 = self._now()
        msg = self._comm.mailbox.receive(
            source, tag, timeout=self._comm.recv_timeout
        )
        self._latch()
        self._note_recv(msg, t0)
        return msg if return_message else msg.payload

    def _note_recv(self, msg: Message, t0: float) -> None:
        """Record one delivered message (all receive paths, so the bulk
        drain and the scalar path report identical counts and bytes)."""
        self._comm.trace.record(
            TraceEvent("recv", self.rank, t0, self._clock,
                       nbytes=msg.nbytes, peer=msg.source, tag=msg.tag)
        )
        self.metrics.count("net.messages_recv")
        self.metrics.count("net.bytes_recv", msg.nbytes)
        self.metrics.observe("net.recv_wait", max(self._clock - t0, 0.0))
        self.metrics.gauge_max(
            "net.mailbox_depth", self._comm.mailbox.pending_count()
        )

    def recv_expected(
        self, sources: Iterable[int], tag: int = ANY_TAG
    ) -> dict[int, Message]:
        comm = self._comm
        pending = set(sources)
        if self.rank in pending:
            raise CommunicationError(
                "recv_expected cannot expect a message from self"
            )
        received: dict[int, Message] = {}
        while pending:
            t0 = self._now()
            msg = comm.mailbox.receive(
                ANY_SOURCE, tag, timeout=comm.recv_timeout
            )
            if msg.source not in pending:
                raise CommunicationError(
                    f"rank {self.rank}: unexpected message from rank "
                    f"{msg.source} (tag {msg.tag}) while expecting "
                    f"{sorted(pending)}"
                )
            received[msg.source] = msg
            pending.discard(msg.source)
            self._latch()
            self._note_recv(msg, t0)
        self._latch()
        return received

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self._comm.mailbox.probe(source, tag)

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: int,
        *,
        send_tag: int = Tags.USER_BASE,
        recv_tag: int | None = None,
    ) -> Any:
        self.send(dest, payload, send_tag)
        return self.recv(source, recv_tag if recv_tag is not None else send_tag)

    # -------------------------------------------------------------- #
    # collectives
    # -------------------------------------------------------------- #

    def barrier(self) -> None:
        """Max-agreement barrier: all ranks leave with **identical** clocks.

        Rank 0 collects every rank's entry clock (tag ``Tags.BARRIER``,
        received per-source so back-to-back barriers cannot interleave),
        takes the max — including its own wall time at the moment the last
        entry arrived, which is the true all-arrived instant — and
        broadcasts it.  The internal sends/receives deliberately bypass
        the latch so the adopted value is ``>=`` every rank's clock,
        keeping the clock monotonic *and* rank-agreed.
        """
        self._latch()
        t0 = self._clock
        self.metrics.count("net.barriers")
        if self.size == 1:
            return
        comm = self._comm
        if self.rank == 0:
            entries = [self._clock]
            for r in range(1, self.size):
                msg = comm.mailbox.receive(
                    r, Tags.BARRIER, timeout=comm.recv_timeout
                )
                entries.append(float(msg.payload))
            agreed = max(max(entries), self._now())
            for r in range(1, self.size):
                comm.send_payload(r, Tags.BARRIER, agreed)
        else:
            comm.send_payload(0, Tags.BARRIER, self._clock)
            msg = comm.mailbox.receive(
                0, Tags.BARRIER, timeout=comm.recv_timeout
            )
            agreed = float(msg.payload)
        self._adopt(agreed)
        comm.trace.record(
            TraceEvent("barrier", self.rank, t0, self._clock)
        )
        self.metrics.observe("net.barrier_wait", max(self._clock - t0, 0.0))

    def bcast(self, payload: Any, root: int = 0, *, tag: int = Tags.BCAST) -> Any:
        from repro.net.collectives import bcast

        return bcast(self, payload, root=root, tag=tag)

    def gather(
        self, payload: Any, root: int = 0, *, tag: int = Tags.GATHER
    ) -> list[Any] | None:
        from repro.net.collectives import gather

        return gather(self, payload, root=root, tag=tag)

    def allgather(self, payload: Any) -> list[Any]:
        from repro.net.collectives import allgather

        return allgather(self, payload)

    def scatter(self, parts: Sequence[Any] | None, root: int = 0) -> Any:
        from repro.net.collectives import scatter

        return scatter(self, parts, root=root)

    def reduce(
        self, value: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any | None:
        from repro.net.collectives import reduce as _reduce

        return _reduce(self, value, op, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        from repro.net.collectives import allreduce

        return allreduce(self, value, op)

    def alltoallv(
        self,
        outgoing: dict[int, Any],
        recv_from: Iterable[int],
        *,
        tag: int = Tags.ALLTOALL,
    ) -> dict[int, Any]:
        from repro.net.collectives import alltoallv

        return alltoallv(self, outgoing, recv_from, tag=tag)

    # -------------------------------------------------------------- #
    # misc
    # -------------------------------------------------------------- #

    @property
    def trace(self) -> TraceLog:
        return self._comm.trace

    @property
    def cluster(self) -> ClusterSpec:
        return self._comm.cluster

    def capability_snapshot(self) -> np.ndarray:
        return self._comm.cluster.capability_ratios(self.clock)

    def __repr__(self) -> str:
        return (
            f"RealRankContext(rank={self.rank}, size={self.size}, "
            f"clock={self.clock:.6f})"
        )
