"""Real-process execution world: the RankContext API on actual OS cores.

The sim world (:mod:`repro.net.comm`) runs ranks as threads with virtual
clocks; this package runs the *same rank functions* as real
``multiprocessing`` processes connected by loopback TCP sockets, with the
virtual clock replaced by a barrier-synchronized wall clock.  Select it
with ``world="real"`` on :func:`repro.net.spmd.run_spmd`,
:class:`repro.runtime.program.ProgramConfig`, or ``repro run --world real``.
"""

from repro.runtime.procs.context import RealCommunicator, RealRankContext
from repro.runtime.procs.runner import run_real_spmd

__all__ = ["RealCommunicator", "RealRankContext", "run_real_spmd"]
