"""Data redistribution between interval partitions (Sec. 3.4 mechanics).

Given old and new partitions of the same 1-D list, every rank can compute
the full transfer pattern locally (the partitions are replicated knowledge,
like the Fig. 3 interval list), so the exchange needs no pattern-discovery
round: each rank sends its outgoing slabs and receives exactly the incoming
slabs the shared plan predicts.

:func:`redistribute_fields` is the workhorse: it moves *k* field arrays
plus the vertex identity of every moved element in **one** packed message
per peer (:class:`repro.net.message.PackedArrays`), so a remap pays the
per-message setup cost once per peer instead of once per field.  The
identity segment lets the receiver verify each slab against the shared
plan — a desynchronized partition (ranks disagreeing about who owns what)
fails loudly instead of silently scattering data.  Buffer packing
dispatches on the runtime backend (:mod:`repro.runtime.backend`):
``vectorized`` copies whole slabs with numpy slicing, ``reference`` copies
element by element; both produce bit-identical buffers and charge
identical virtual time.

:func:`estimate_remap_cost` is the analytic cost the rebalancing strategy
uses for its profitability test before actually moving anything, and
:func:`transfer_plan_summary` exposes the structural facts of a plan (the
golden regression tests pin them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import RedistributionError
from repro.net.message import Tags, pack_arrays, payload_nbytes, unpack_arrays
from repro.partition.arrangement import Transfer, transfer_matrix
from repro.partition.intervals import IntervalPartition
from repro.runtime import reference as ref
from repro.runtime.backend import resolve_backend

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext
    from repro.net.network import NetworkModel

__all__ = [
    "redistribute",
    "redistribute_fields",
    "estimate_remap_cost",
    "network_pricing_params",
    "transfer_plan_summary",
    "IDENTITY_NBYTES",
]

#: Wire size of one vertex-identity entry (``np.intp`` on the simulated
#: testbed's 64-bit hosts), counted by :func:`estimate_remap_cost`.
IDENTITY_NBYTES = np.dtype(np.intp).itemsize


def _transfers_by_peer(
    transfers: Sequence[Transfer], rank: int
) -> tuple[dict[int, list[Transfer]], dict[int, list[Transfer]]]:
    """This rank's (outgoing by dest, incoming by source) slab groups.

    Slabs keep the plan's global order inside each group, so sender and
    receiver agree on segment layout without negotiation.
    """
    outgoing: dict[int, list[Transfer]] = {}
    incoming: dict[int, list[Transfer]] = {}
    for tr in transfers:
        if tr.source == rank:
            outgoing.setdefault(tr.dest, []).append(tr)
        if tr.dest == rank:
            incoming.setdefault(tr.source, []).append(tr)
    return outgoing, incoming


# The packed wire format of one slab group — THE single implementation.
# Both the Phase D remap (here) and the resilience recovery
# (:mod:`repro.runtime.resilience.recovery`) ship slabs through these
# three helpers, so the backend-paired pack/verify/place semantics (and
# the bit-identical reference/vectorized contract) cannot diverge between
# the two exchanges.


def _extract_slabs(
    source_fields: Sequence[np.ndarray],
    slabs: Sequence[Transfer],
    src_lo: int,
    backend: str,
) -> list[np.ndarray]:
    """Per-field concatenated slab payloads (no identity, not packed).

    *src_lo* is the global start of the block *source_fields* covers.
    """
    if backend == "reference":
        return [
            np.concatenate(
                [
                    ref.slab_pack_loop(f, tr.lo - src_lo, tr.hi - src_lo)
                    for tr in slabs
                ]
            )
            for f in source_fields
        ]
    return [
        np.concatenate([f[tr.lo - src_lo : tr.hi - src_lo] for tr in slabs])
        for f in source_fields
    ]


def _pack_slabs(
    source_fields: Sequence[np.ndarray],
    slabs: Sequence[Transfer],
    src_lo: int,
    backend: str,
):
    """One packed [identity, field0, ...] payload for a slab group.

    *src_lo* is the global start of the block *source_fields* covers
    (the sender's interval — or, on the recovery path, the dead owner's).
    """
    if backend == "reference":
        identity = np.concatenate(
            [ref.iota_loop(tr.lo, tr.hi) for tr in slabs]
        )
    else:
        identity = np.concatenate(
            [np.arange(tr.lo, tr.hi, dtype=np.intp) for tr in slabs]
        )
    return pack_arrays(
        [identity] + _extract_slabs(source_fields, slabs, src_lo, backend)
    )


def _verify_slabs(
    rank: int,
    origin: str,
    parts: Sequence[np.ndarray],
    slabs: Sequence[Transfer],
    num_fields: int,
    outs: Sequence[np.ndarray],
    error_cls: type[Exception] = RedistributionError,
) -> None:
    """Check one received payload against the shared plan's prediction."""
    if len(parts) != 1 + num_fields:
        raise error_cls(
            f"rank {rank}: packed message from {origin} has "
            f"{len(parts)} segments, plan expects {1 + num_fields}"
        )
    expected = np.concatenate(
        [np.arange(tr.lo, tr.hi, dtype=np.intp) for tr in slabs]
    )
    identity = parts[0]
    if identity.shape != expected.shape or not np.array_equal(
        identity, expected
    ):
        raise error_cls(
            f"rank {rank}: slab from {origin} carries vertex "
            f"identities that do not match the shared transfer plan "
            f"(desynchronized exchange?)"
        )
    for f_idx, out in enumerate(outs):
        part = parts[1 + f_idx]
        if part.shape[0] != expected.size or part.dtype != out.dtype:
            raise error_cls(
                f"rank {rank}: field {f_idx} slab from {origin} does "
                f"not match the plan ({part.shape[0]} elements of "
                f"{part.dtype}, expected {expected.size} of {out.dtype})"
            )


def _place_slabs(
    outs: Sequence[np.ndarray],
    slabs: Sequence[Transfer],
    parts: Sequence[np.ndarray],
    new_lo: int,
    backend: str,
) -> None:
    """Place verified per-field slab payloads into the new-block arrays."""
    for f_idx, out in enumerate(outs):
        part = parts[f_idx]
        offset = 0
        for tr in slabs:
            segment = part[offset : offset + tr.count]
            if backend == "reference":
                ref.slab_unpack_loop(out, tr.lo - new_lo, segment)
            else:
                out[tr.lo - new_lo : tr.hi - new_lo] = segment
            offset += tr.count


def redistribute_fields(
    ctx: "RankContext",
    old: IntervalPartition,
    new: IntervalPartition,
    fields: Sequence[np.ndarray],
    *,
    tag: int = Tags.REDISTRIBUTE,
    backend: str | None = None,
) -> list[np.ndarray]:
    """Move this rank's block of *k* fields from *old* to *new* homes.

    SPMD collective: all ranks call it with their old-block fields; each
    returns its new-block fields.  One packed message per peer carries the
    vertex identity plus every field's slab; the receiver checks identity
    against the shared plan before placing anything.
    """
    backend = resolve_backend(backend)
    fields = [np.asarray(f) for f in fields]
    if not fields:
        raise RedistributionError("redistribute_fields needs at least one field")
    old_lo, old_hi = old.interval(ctx.rank)
    for k, f in enumerate(fields):
        if f.shape[0] != old_hi - old_lo:
            raise RedistributionError(
                f"rank {ctx.rank}: field {k} has {f.shape[0]} elements, old "
                f"interval holds {old_hi - old_lo}"
            )
    transfers = transfer_matrix(old, new)
    new_lo, new_hi = new.interval(ctx.rank)
    outs = [
        np.empty((new_hi - new_lo,) + f.shape[1:], dtype=f.dtype)
        for f in fields
    ]

    # Retained overlap: the slab (if any) that stays on this rank.
    keep_lo = max(old_lo, new_lo)
    keep_hi = min(old_hi, new_hi)
    if keep_lo < keep_hi:
        for f, out in zip(fields, outs):
            if backend == "reference":
                ref.slab_unpack_loop(
                    out,
                    keep_lo - new_lo,
                    ref.slab_pack_loop(f, keep_lo - old_lo, keep_hi - old_lo),
                )
            else:
                out[keep_lo - new_lo : keep_hi - new_lo] = f[
                    keep_lo - old_lo : keep_hi - old_lo
                ]

    outgoing, incoming = _transfers_by_peer(transfers, ctx.rank)

    # Outgoing: one packed message per destination peer, slabs in global
    # order inside it.  Peers are walked in ascending order so the virtual
    # clock is deterministic regardless of plan enumeration details.
    for dest in sorted(outgoing):
        ctx.send(dest, _pack_slabs(fields, outgoing[dest], old_lo, backend), tag)

    # Incoming: one packed message per source peer, verified against the
    # plan's identity prediction, then placed slab by slab.
    for source in sorted(incoming):
        slabs = incoming[source]
        parts = unpack_arrays(ctx.recv(source, tag))
        _verify_slabs(
            ctx.rank, f"rank {source}", parts, slabs, len(fields), outs
        )
        _place_slabs(outs, slabs, parts[1:], new_lo, backend)
    return outs


def redistribute(
    ctx: "RankContext",
    old: IntervalPartition,
    new: IntervalPartition,
    local_data: np.ndarray,
    *,
    tag: int = Tags.REDISTRIBUTE,
    backend: str | None = None,
) -> np.ndarray:
    """Move one field between partitions (single-field convenience form).

    Equivalent to ``redistribute_fields(ctx, old, new, [local_data])[0]``:
    the exchange still ships vertex identity alongside the data in one
    packed message per peer.
    """
    return redistribute_fields(
        ctx, old, new, [np.asarray(local_data)], tag=tag, backend=backend
    )[0]


def network_pricing_params(
    network: "NetworkModel", shared_medium: bool | None = None
) -> tuple[float, float, float, bool]:
    """``(latency, bandwidth, per_message_overhead, shared?)`` of *network*.

    The one extraction every analytic exchange price shares —
    :func:`estimate_remap_cost` here and
    :func:`~repro.runtime.resilience.estimate_checkpoint_cost` — so the
    two estimates stay comparable by construction and a changed default
    can never make them silently diverge.
    """
    latency = float(getattr(network, "latency", 1e-3))
    bandwidth = float(getattr(network, "bandwidth", 1.25e6))
    overhead = float(getattr(network, "per_message_overhead", 5e-4))
    if shared_medium is None:
        from repro.net.network import SharedEthernet

        shared_medium = isinstance(network, SharedEthernet)
    return latency, bandwidth, overhead, bool(shared_medium)


def estimate_remap_cost(
    network: "NetworkModel",
    old: IntervalPartition,
    new: IntervalPartition,
    element_nbytes: int,
    *,
    num_fields: int = 1,
    include_identity: bool = True,
    shared_medium: bool | None = None,
) -> float:
    """Predicted virtual seconds to redistribute, without doing it.

    Prices the packed exchange :func:`redistribute_fields` performs: per
    moved element, ``num_fields`` payload copies of *element_nbytes* plus
    (by default) one vertex-identity entry, and one per-peer message setup.
    On a shared medium (Ethernet) all frames serialize, so the estimate is
    the sum of per-message fixed costs plus total bytes over the shared
    bandwidth.  On switched fabrics transfers to distinct destinations can
    overlap; we approximate with the per-destination maximum.
    """
    if element_nbytes <= 0:
        raise RedistributionError(
            f"element_nbytes must be > 0, got {element_nbytes}"
        )
    if num_fields < 1:
        raise RedistributionError(
            f"num_fields must be >= 1, got {num_fields}"
        )
    transfers = transfer_matrix(old, new)
    if not transfers:
        return 0.0
    per_element = num_fields * element_nbytes + (
        IDENTITY_NBYTES if include_identity else 0
    )
    latency, bandwidth, overhead, shared_medium = network_pricing_params(
        network, shared_medium
    )
    n_messages = len({(tr.source, tr.dest) for tr in transfers})
    fixed = n_messages * (overhead + latency)
    if shared_medium:
        total_bytes = sum(tr.count for tr in transfers) * per_element
        return fixed + total_bytes / bandwidth
    by_link: dict[tuple[int, int], int] = {}
    for tr in transfers:
        key = (tr.source, tr.dest)
        by_link[key] = by_link.get(key, 0) + tr.count * per_element
    slowest = max(by_link.values())
    return fixed + slowest / bandwidth


def transfer_plan_summary(
    old: IntervalPartition,
    new: IntervalPartition,
    *,
    num_fields: int = 1,
    element_nbytes: int = 8,
) -> dict:
    """Structural facts of one remap's transfer plan (deterministic).

    Returns the slab list, the packed per-peer message count, the moved
    element total, and each packed message's wire size for ``num_fields``
    fields of *element_nbytes* — the facts the golden regression fixture
    pins so redistribution semantics cannot silently drift.
    """
    transfers = transfer_matrix(old, new)
    by_peer: dict[tuple[int, int], int] = {}
    for tr in transfers:
        key = (tr.source, tr.dest)
        by_peer[key] = by_peer.get(key, 0) + tr.count
    message_nbytes = {}
    for (source, dest), count in sorted(by_peer.items()):
        dummy = [np.empty(count, dtype=np.intp)] + [
            np.empty(count, dtype=f"V{element_nbytes}")
            for _ in range(num_fields)
        ]
        message_nbytes[f"{source}->{dest}"] = payload_nbytes(
            pack_arrays(dummy)
        )
    return {
        "transfers": [
            [tr.source, tr.dest, tr.lo, tr.hi] for tr in transfers
        ],
        "moved_elements": int(sum(tr.count for tr in transfers)),
        "packed_messages": len(by_peer),
        "packed_message_nbytes": message_nbytes,
    }
