"""Elastic processor membership: grow/shrink the active rank set at runtime.

The paper's adaptive environments (Secs. 1, 3.4-3.5) include machines whose
*availability* changes during a run — a workstation is reclaimed by its
owner, an idle one joins the pool.  This module is the runtime half of that
scenario family; the environment half (:class:`MembershipEvent` /
:class:`MembershipTrace`) lives with the load traces in
:mod:`repro.net.loadmodel` and rides on :class:`~repro.net.cluster.ClusterSpec`.

The design keeps the paper's replicated-knowledge philosophy: the
membership trace, like the Fig. 3 interval list, is replicated on every
rank, so membership changes need no discovery protocol.  The simulated SPMD
world always spans the *full* pool — standby machines stay reachable (a
resource-manager daemon runs there) but own an **empty interval**, compute
nothing, and exchange no data.  A leave therefore is: shrink the active
mask, repartition onto the survivors (through the ordinary
:func:`~repro.runtime.adaptive.strategy.decide` profitability function,
where an inactive rank holding data makes the current split infeasible and
the remap mandatory), drain the departing rank's fields through the packed
:func:`~repro.runtime.adaptive.redistribution.redistribute_fields`
exchange, and rebuild translation tables and schedules for the new
communicator — the departed rank's schedule and kernel plan become empty.
A join re-runs the profitability test: the extra capability is only
adopted when the predicted savings over the remaining iterations beat the
transfer cost.

:class:`ElasticState` is the per-rank state machine
:class:`~repro.runtime.adaptive.session.AdaptiveSession` polls at iteration
boundaries; :func:`membership_decision` is the replicated decision each
event triggers.  Both are deterministic in (trace, synchronized clock), so
every rank reaches the identical conclusion without a decision broadcast —
the same argument that makes
:class:`~repro.runtime.adaptive.strategy.DistributedStrategy` correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import LoadBalanceError
from repro.net.loadmodel import MembershipEvent, MembershipTrace
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.strategy import Decision, LoadBalanceConfig, decide

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "MembershipEvent",
    "MembershipTrace",
    "ElasticState",
    "membership_decision",
    "resolve_membership",
]


def resolve_membership(
    spec: "MembershipTrace | str | None", world_size: int
) -> MembershipTrace | None:
    """Normalize a membership spec: a trace, a CLI DSL string, or ``None``.

    The string form is :meth:`MembershipTrace.parse`'s mini-language
    (``"standby:3, join:3@5.0, leave:0@9.5"``), which is what
    ``repro run --membership`` accepts.
    """
    if spec is None or isinstance(spec, MembershipTrace):
        if (
            isinstance(spec, MembershipTrace)
            and spec.world_size != world_size
        ):
            raise LoadBalanceError(
                f"membership trace spans {spec.world_size} ranks, the world "
                f"has {world_size}"
            )
        return spec
    if isinstance(spec, str):
        try:
            return MembershipTrace.parse(spec, world_size)
        except ValueError as exc:
            raise LoadBalanceError(f"bad membership spec: {exc}") from None
    raise LoadBalanceError(
        f"cannot resolve a membership trace from {type(spec).__name__}"
    )


@dataclass
class ElasticState:
    """One rank's view of the evolving active set (replicated, poll-driven).

    ``poll`` must be called at a *synchronized* virtual time (right after a
    barrier), so every rank consumes the identical event window and updates
    the identical mask — the session enforces that call discipline.
    """

    trace: MembershipTrace
    active: np.ndarray = field(init=False)
    #: Cumulative unannounced-failure mask: memory on these machines is
    #: gone (checkpoint replicas included).  Cleared for a rank that
    #: rejoins — repaired hardware arrives blank, like any standby joiner.
    failed: np.ndarray = field(init=False)
    last_poll: float = field(init=False, default=0.0)
    events_seen: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.active = self.trace.active_mask(0.0)
        self.failed = self.trace.failed_mask(0.0)

    @property
    def num_active(self) -> int:
        return int(self.active.sum())

    def poll(self, t: float) -> list[MembershipEvent]:
        """Consume events in ``(last_poll, t]`` and update the masks."""
        if t < self.last_poll:
            raise LoadBalanceError(
                f"membership poll moved backwards: {self.last_poll} -> {t}"
            )
        events = self.trace.events_between(self.last_poll, t)
        self.last_poll = t
        if events:
            self.active = self.trace.active_mask(t)
            self.failed = self.trace.failed_mask(t)
            self.events_seen += len(events)
        return events


def membership_decision(
    ctx: "RankContext",
    partition: IntervalPartition,
    active: np.ndarray,
    remaining_iterations: int,
    config: LoadBalanceConfig,
    *,
    force: bool = False,
    iteration_span: float | None = None,
) -> Decision:
    """The replicated decision one membership-event batch triggers.

    Every rank evaluates :func:`decide` redundantly from replicated inputs
    only — the cluster's effective speeds at the current (synchronized)
    clock, the active mask, and the last iteration's synchronized duration
    — so no load reports or decision broadcasts move.  Departures come out
    mandatory on their own: the departing rank still holds elements while
    inactive, which makes the current split's predicted time infinite.
    Joins are a pure profitability test; a rejected join leaves the joiner
    active but empty, to be picked up by a later periodic check once it is
    worth the transfer.

    *iteration_span* anchors the per-item times in real virtual seconds.
    The effective speeds fix only the *ratios* between machines; the span
    of the last barrier-to-barrier iteration (identical on every rank — a
    synchronized clock minus a synchronized clock) supplies the absolute
    scale: if the slowest rank ran ``size_r`` items in ``span`` seconds,
    one item of unit work costs ``span / max(size_r / eff_r)``.  Without a
    span the test falls back to unit work of 1 s/item, which only affects
    the join profitability threshold, never the proportions.
    """
    eff = ctx.cluster.effective_speeds(ctx.clock)
    unit_work = 1.0
    if iteration_span is not None and iteration_span > 0:
        slowest = float(np.max(partition.sizes() / eff))
        if slowest > 0:
            unit_work = iteration_span / slowest
    times = unit_work / eff
    return decide(
        ctx,
        partition,
        times,
        remaining_iterations,
        config,
        active=np.asarray(active, dtype=bool),
        force=force,
    )
