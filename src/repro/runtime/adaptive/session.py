"""The Phase D session: one owner for the monitor→decide→remap→rebuild loop.

Before this subsystem existed, the loop of Sec. 3.5 — monitor the load,
run the profitability check, redistribute, re-run the inspector — was
hand-wired separately in ``run_program``, the adaptive-refinement app, and
several benchmarks.  :class:`AdaptiveSession` is the single code path all
of them drive now:

* :meth:`record` feeds the per-iteration load sample to the monitor
  ("average computation time per data item");
* :meth:`maybe_rebalance` runs the configured
  :class:`~repro.runtime.adaptive.strategy.RebalanceStrategy` at the
  check interval and, when the decision says remap, performs the packed
  redistribution and the inspector rebuild;
* :meth:`remap_to` is the unconditional form for *adaptive applications*
  (paper footnote 1), where the computational structure itself changes and
  the caller supplies the new (typically weighted) partition.

The session also does the bookkeeping Tables 4-5 are made of: virtual time
spent in checks and remaps, check/remap counts, and the host seconds of
the redistribution exchange (what the ``scale-adaptive`` benchmarks
compare across backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import LoadBalanceError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.redistribution import redistribute_fields
from repro.runtime.adaptive.strategy import (
    LoadBalanceConfig,
    NoBalancing,
    RebalanceStrategy,
    make_strategy,
)
from repro.runtime.inspector import InspectorResult, run_inspector
from repro.runtime.monitor import LoadMonitor
from repro.runtime.schedule_builders import InspectorCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["SessionStats", "AdaptiveSession"]


@dataclass
class SessionStats:
    """Per-rank Phase D bookkeeping for one session."""

    inspector_time: float = 0.0  # virtual s: initial schedule build
    lb_check_time: float = 0.0  # virtual s: strategy checks
    remap_time: float = 0.0  # virtual s: redistribute + rebuild + barrier
    num_checks: int = 0
    num_remaps: int = 0
    redistribute_host_s: float = 0.0  # host s inside the packed exchange


@dataclass
class AdaptiveSession:
    """One rank's Phase D state machine (SPMD: every rank owns one).

    Construction runs the inspector (Phase B) for the initial partition;
    thereafter the session keeps ``partition`` and ``inspector`` consistent
    through every remap, so callers always read the current schedule and
    kernel plan from it.
    """

    ctx: "RankContext"
    graph: CSRGraph
    partition: IntervalPartition
    total_iterations: int
    lb: "LoadBalanceConfig | str | None" = None
    strategy: "RebalanceStrategy | None" = None
    schedule_strategy: str = "sort2"
    inspector_cost: InspectorCostModel = field(default_factory=InspectorCostModel)
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.total_iterations < 1:
            raise LoadBalanceError(
                f"total_iterations must be >= 1, got {self.total_iterations}"
            )
        explicit_off = self.lb == "off"
        if isinstance(self.lb, str):
            self.lb = (
                None if explicit_off else LoadBalanceConfig(style=self.lb)
            )
        if self.strategy is None:
            self.strategy = make_strategy(self.lb)
        elif explicit_off:
            # An explicit lb="off" wins over a supplied strategy object:
            # the caller asked for the static baseline.
            self.strategy = NoBalancing()
        elif self.lb is None and not isinstance(self.strategy, NoBalancing):
            # A caller-supplied strategy with no config would otherwise be
            # silently inert (checks gate on the config); give it the
            # default knobs so the pluggable path actually balances.
            self.lb = LoadBalanceConfig()
        self.stats = SessionStats()
        self.monitor = LoadMonitor()
        self._predictor = None
        if self.lb is not None and self.lb.predictor is not None:
            from repro.runtime.prediction import make_predictor

            self._predictor = make_predictor(self.lb.predictor)
        self.inspector: InspectorResult = self._build_inspector()
        self.stats.inspector_time += self.inspector.build_time

    # ------------------------------------------------------------------ #
    # phase B plumbing
    # ------------------------------------------------------------------ #

    def _build_inspector(self) -> InspectorResult:
        return run_inspector(
            self.graph,
            self.partition,
            self.ctx.rank,
            strategy=self.schedule_strategy,
            ctx=self.ctx,
            cost_model=self.inspector_cost,
            backend=self.backend,
        )

    @property
    def schedule(self):
        """The current communication schedule (tracks remaps)."""
        return self.inspector.schedule

    @property
    def kernel_plan(self):
        """The current kernel plan (tracks remaps)."""
        return self.inspector.kernel_plan

    def interval(self) -> tuple[int, int]:
        """This rank's current [lo, hi) block of the 1-D list."""
        return self.partition.interval(self.ctx.rank)

    # ------------------------------------------------------------------ #
    # phase D proper
    # ------------------------------------------------------------------ #

    def record(self, compute_seconds: float, items: int) -> None:
        """Feed one iteration's compute sample to the load monitor."""
        self.monitor.record(compute_seconds, items)

    def check_due(self, iteration: int) -> bool:
        """Whether :meth:`maybe_rebalance` would run a check now.

        *iteration* is 0-based; checks fire every ``check_interval``
        completed iterations, never after the final one (there is nothing
        left to rebalance for), and only once the monitor has a window.
        """
        if self.lb is None or isinstance(self.strategy, NoBalancing):
            return False
        done = iteration + 1
        return (
            done % self.lb.check_interval == 0
            and done < self.total_iterations
            and self.monitor.has_window
        )

    def maybe_rebalance(
        self, iteration: int, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Run Phase D at the end of *iteration* (0-based); SPMD collective.

        When a check is due, every rank contributes its monitored load to
        the strategy; if the collective decision says remap, *fields* are
        redistributed to the new partition and the inspector is rebuilt.
        Returns the (possibly moved) fields.
        """
        fields = list(fields)
        if not self.check_due(iteration):
            return fields
        assert self.lb is not None
        ctx = self.ctx
        config = self.lb
        if fields and config.num_fields != len(fields):
            # Price the remap for what the packed exchange will really
            # ship: every field plus identity, not just one field.  With
            # no fields at all the configured pricing stands (the remap
            # then only moves ownership and rebuilds schedules).
            config = replace(config, num_fields=len(fields))
        t0 = ctx.clock
        time_per_item = self.monitor.avg_time_per_item()
        if self._predictor is not None:
            # Footnote 2: forecast next-phase capability from history.
            self._predictor.observe(1.0 / time_per_item)
            time_per_item = 1.0 / self._predictor.predict()
        decision = self.strategy.check(
            ctx,
            self.partition,
            time_per_item,
            remaining_iterations=self.total_iterations - (iteration + 1),
            config=config,
        )
        self.stats.lb_check_time += ctx.clock - t0
        self.stats.num_checks += 1
        self.monitor.reset_window()
        if decision.remap:
            assert decision.new_partition is not None
            fields = self.remap_to(decision.new_partition, fields)
        return fields

    def remap_to(
        self, new_partition: IntervalPartition, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Remap unconditionally: redistribute, rebuild, synchronize.

        The adaptive-application path (footnote 1): the caller computed a
        new partition from changed per-vertex weights and every rank moves
        its fields to their new homes, rebuilds the schedule, and barriers
        so the remap cost is charged consistently across ranks.
        """
        ctx = self.ctx
        fields = list(fields)
        t0 = ctx.clock
        if fields:
            host0 = time.perf_counter()
            fields = redistribute_fields(
                ctx, self.partition, new_partition, fields,
                backend=self.backend,
            )
            self.stats.redistribute_host_s += time.perf_counter() - host0
        self.partition = new_partition
        self.inspector = self._build_inspector()
        ctx.barrier()
        self.stats.remap_time += ctx.clock - t0
        self.stats.num_remaps += 1
        return fields
