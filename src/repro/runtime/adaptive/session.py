"""The Phase D session: one owner for the monitor→decide→remap→rebuild loop.

Before this subsystem existed, the loop of Sec. 3.5 — monitor the load,
run the profitability check, redistribute, re-run the inspector — was
hand-wired separately in ``run_program``, the adaptive-refinement app, and
several benchmarks.  :class:`AdaptiveSession` is the single code path all
of them drive now:

* :meth:`record` feeds the per-iteration load sample to the monitor
  ("average computation time per data item");
* :meth:`maybe_rebalance` runs the configured
  :class:`~repro.runtime.adaptive.strategy.RebalanceStrategy` at the
  check interval and, when the decision says remap, performs the packed
  redistribution and the inspector rebuild;
* :meth:`remap_to` is the unconditional form for *adaptive applications*
  (paper footnote 1), where the computational structure itself changes and
  the caller supplies the new (typically weighted) partition;
* :meth:`poll_membership` applies elastic membership events
  (:mod:`repro.runtime.adaptive.elastic`): a departing rank's fields are
  drained through the same packed redistribution and the schedules are
  rebuilt for the shrunk (or grown) active set;
* with a checkpoint policy configured
  (:mod:`repro.runtime.resilience`), the session periodically replicates
  every rank's block to a ring partner, and an unannounced ``fail``
  event triggers the recovery path: roll every rank back to the last
  checkpoint epoch, reassemble the lost block from its partner's
  replica, repartition onto the survivors, and tell the driver (via
  :meth:`next_iteration`) to re-execute from the epoch's iteration.

The session also does the bookkeeping Tables 4-5 are made of: virtual time
spent in checks, remaps, checkpoints, and rollbacks; check/remap/epoch
counts; and the host seconds of the redistribution exchange (what the
``scale-adaptive`` benchmarks compare across backends).

The competing load this loop reacts to comes from two producers: scripted
per-rank traces (``StepLoad`` schedules — the Table 5 setup), and the job
service (:mod:`repro.serve`), where the load on a rank is other admitted
jobs' measured compute projected through
:class:`~repro.net.loadmodel.ServiceLoad`.  Either way it arrives through
the same ``capability_ratios`` machinery, so the session is oblivious to
which world it is balancing against.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import LoadBalanceError, ResilienceError, ScheduleError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.elastic import (
    ElasticState,
    MembershipTrace,
    membership_decision,
    resolve_membership,
)
from repro.runtime.adaptive.redistribution import redistribute_fields
from repro.runtime.adaptive.strategy import (
    LoadBalanceConfig,
    NoBalancing,
    RebalanceStrategy,
    make_strategy,
)
from repro.runtime.incremental import IncrementalInspector
from repro.runtime.inspector import InspectorResult, run_inspector
from repro.runtime.monitor import LoadMonitor
from repro.runtime.resilience.checkpoint import ResilienceState, take_checkpoint
from repro.runtime.resilience.policy import (
    CheckpointPolicy,
    resolve_checkpoint_policy,
)
from repro.runtime.resilience.recovery import recover_redistribute_fields
from repro.runtime.schedule_builders import InspectorCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["SessionStats", "AdaptiveSession"]


@dataclass
class SessionStats:
    """Per-rank Phase D bookkeeping for one session."""

    inspector_time: float = 0.0  # virtual s: initial schedule build
    lb_check_time: float = 0.0  # virtual s: strategy checks
    remap_time: float = 0.0  # virtual s: redistribute + rebuild + barrier
    num_checks: int = 0
    num_remaps: int = 0
    membership_events: int = 0  # elastic join/leave/replace/fail events
    redistribute_host_s: float = 0.0  # host s inside the packed exchange
    checkpoint_time: float = 0.0  # virtual s: replication + barrier
    num_checkpoints: int = 0  # epochs taken (bootstrap included)
    rollback_time: float = 0.0  # virtual s: restore + recovery remap + rebuild
    num_rollbacks: int = 0  # failure recoveries performed
    lost_time: float = 0.0  # virtual s of discarded (re-executed) progress


@dataclass
class AdaptiveSession:
    """One rank's Phase D state machine (SPMD: every rank owns one).

    Construction runs the inspector (Phase B) for the initial partition;
    thereafter the session keeps ``partition`` and ``inspector`` consistent
    through every remap, so callers always read the current schedule and
    kernel plan from it.
    """

    ctx: "RankContext"
    graph: CSRGraph
    partition: IntervalPartition
    total_iterations: int
    lb: "LoadBalanceConfig | str | None" = None
    strategy: "RebalanceStrategy | None" = None
    schedule_strategy: str = "sort2"
    inspector_cost: InspectorCostModel = field(default_factory=InspectorCostModel)
    backend: str | None = None
    #: Elastic membership: a trace, a CLI DSL string, or None to inherit
    #: the cluster's own trace (ClusterSpec.membership); clusters without
    #: one run with a fixed rank set, exactly as before.
    membership: "MembershipTrace | str | None" = None
    #: Checkpoint policy (:mod:`repro.runtime.resilience`): a policy
    #: object, a DSL string ("interval:4" / "cost:50"), or None for no
    #: checkpointing.  Mandatory when the membership trace contains
    #: unannounced ``fail`` events — a failure without an epoch to roll
    #: back to is unrecoverable.
    checkpoint: "CheckpointPolicy | str | None" = None
    #: Phase B rebuild mode after a remap: ``"full"`` re-runs the
    #: inspector from scratch (the paper's protocol), ``"incremental"``
    #: patches the previous schedule/plan through the boundary diff
    #: (:mod:`repro.runtime.incremental`), producing bit-identical
    #: results for a fraction of the virtual (and host) cost.
    inspector_mode: str = "full"

    def __post_init__(self) -> None:
        if self.total_iterations < 1:
            raise LoadBalanceError(
                f"total_iterations must be >= 1, got {self.total_iterations}"
            )
        explicit_off = self.lb == "off"
        if isinstance(self.lb, str):
            self.lb = (
                None if explicit_off else LoadBalanceConfig(style=self.lb)
            )
        if self.strategy is None:
            self.strategy = make_strategy(self.lb)
        elif explicit_off:
            # An explicit lb="off" wins over a supplied strategy object:
            # the caller asked for the static baseline.
            self.strategy = NoBalancing()
        elif self.lb is None and not isinstance(self.strategy, NoBalancing):
            # A caller-supplied strategy with no config would otherwise be
            # silently inert (checks gate on the config); give it the
            # default knobs so the pluggable path actually balances.
            self.lb = LoadBalanceConfig()
        self.stats = SessionStats()
        self.monitor = LoadMonitor()
        self._predictor = None
        if self.lb is not None and self.lb.predictor is not None:
            from repro.runtime.prediction import make_predictor

            self._predictor = make_predictor(self.lb.predictor)
        trace = resolve_membership(
            self.membership
            if self.membership is not None
            else self.ctx.cluster.membership,
            self.ctx.size,
        )
        self.elastic: ElasticState | None = (
            ElasticState(trace) if trace is not None else None
        )
        if self.elastic is not None and not isinstance(
            self.strategy, NoBalancing
        ):
            # Elastic checks pass the active mask through check(); fail
            # fast on a caller-supplied strategy with the pre-elastic
            # signature instead of a mid-run TypeError at the first check.
            import inspect

            params = inspect.signature(self.strategy.check).parameters
            accepts_active = "active" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()
            )
            if not accepts_active:
                raise LoadBalanceError(
                    f"strategy {self.strategy.name!r} does not accept the "
                    f"'active' keyword its check() needs under elastic "
                    f"membership; update it to the current "
                    f"RebalanceStrategy protocol"
                )
        self.resilience: ResilienceState | None = None
        policy = resolve_checkpoint_policy(self.checkpoint)
        if policy is not None:
            self.resilience = ResilienceState(policy)
        if (
            self.elastic is not None
            and self.elastic.trace.has_failures
            and self.resilience is None
        ):
            raise ResilienceError(
                "the membership trace contains unannounced 'fail' events; "
                "recovery needs a checkpoint policy — set "
                "ProgramConfig.checkpoint (e.g. \"interval:4\") or pass "
                "--checkpoint on the CLI"
            )
        self._resume_at: int | None = None
        self._last_sync_clock = self.ctx.clock
        self._last_span = 0.0
        self._rebuild_cost = 0.0  # learned from the last remap's true span
        if self.elastic is not None:
            sizes = self.partition.sizes()
            standby = ~self.elastic.active
            if np.any(standby & (sizes > 0)):
                bad = np.flatnonzero(standby & (sizes > 0)).tolist()
                raise LoadBalanceError(
                    f"initial partition assigns elements to standby ranks "
                    f"{bad}; mask the initial capabilities with the "
                    f"membership trace's active set at t=0"
                )
        if self.inspector_mode not in ("full", "incremental"):
            raise ScheduleError(
                f"inspector_mode must be 'full' or 'incremental', got "
                f"{self.inspector_mode!r}"
            )
        self._incremental: IncrementalInspector | None = None
        if self.inspector_mode == "incremental":
            # Raises ScheduleError for the 'simple' strategy, whose
            # request-ordered ghost buffers the patch path cannot
            # reproduce.
            self._incremental = IncrementalInspector(
                self.graph,
                self.partition,
                self.ctx.rank,
                strategy=self.schedule_strategy,
                ctx=self.ctx,
                cost_model=self.inspector_cost,
                backend=self.backend,
            )
            self.inspector: InspectorResult = self._incremental.result
        else:
            self.inspector = self._build_inspector()
        self.stats.inspector_time += self.inspector.build_time

    # ------------------------------------------------------------------ #
    # observability plumbing
    # ------------------------------------------------------------------ #

    def _span(self, kind: str, label: str = ""):
        """An observability span on this rank's tracer (no-op without one)."""
        tracer = getattr(self.ctx, "tracer", None)
        if tracer is None:
            return nullcontext()
        return tracer.span(kind, label=label)

    def _count(self, name: str, value: int = 1) -> None:
        metrics = getattr(self.ctx, "metrics", None)
        if metrics is not None:
            metrics.count(name, value)

    # ------------------------------------------------------------------ #
    # phase B plumbing
    # ------------------------------------------------------------------ #

    def _build_inspector(self) -> InspectorResult:
        return run_inspector(
            self.graph,
            self.partition,
            self.ctx.rank,
            strategy=self.schedule_strategy,
            ctx=self.ctx,
            cost_model=self.inspector_cost,
            backend=self.backend,
        )

    def _rebuild_inspector(self) -> InspectorResult:
        """Phase B after a remap: incremental patch when configured.

        The incremental inspector diffs against the partition its cached
        result was built for (not the session's transient ``partition``),
        so the recovery path — which restores the checkpoint partition
        before remapping to the survivor split — patches correctly too.
        """
        if self._incremental is not None:
            return self._incremental.rebuild(self.partition)
        return self._build_inspector()

    @property
    def schedule(self):
        """The current communication schedule (tracks remaps)."""
        return self.inspector.schedule

    @property
    def kernel_plan(self):
        """The current kernel plan (tracks remaps)."""
        return self.inspector.kernel_plan

    def interval(self) -> tuple[int, int]:
        """This rank's current [lo, hi) block of the 1-D list."""
        return self.partition.interval(self.ctx.rank)

    @property
    def active(self) -> np.ndarray:
        """Current active-rank mask (all-true without a membership trace)."""
        if self.elastic is not None:
            return self.elastic.active
        return np.ones(self.ctx.size, dtype=bool)

    def _priced(self, config: LoadBalanceConfig, num_fields: int) -> LoadBalanceConfig:
        """Copy *config* with pricing matched to what a remap really costs.

        ``num_fields`` is set to the actual field count the packed exchange
        will ship.  Under elastic membership, a zero (default)
        ``rebuild_cost_estimate`` is additionally filled with the rebuild
        cost learned from the last remap — the measured synchronized remap
        span minus its priced transfer — so the frequent repartitions
        membership churn provokes stop looking free.  (Non-elastic runs
        keep the paper's protocol untouched: rebuilds are priced only if
        the caller configures an estimate.)  Both inputs are identical on
        every rank, keeping decisions collective.
        """
        updates: dict = {}
        if num_fields and config.num_fields != num_fields:
            updates["num_fields"] = num_fields
        if (
            self.elastic is not None
            and config.rebuild_cost_estimate == 0.0
            and self._rebuild_cost > 0.0
        ):
            updates["rebuild_cost_estimate"] = self._rebuild_cost
        return replace(config, **updates) if updates else config

    def _note_remap_span(self, transfer_cost_estimate: float) -> None:
        """Learn the rebuild cost from the remap that just completed.

        *transfer_cost_estimate* must be the decision's remap cost **minus
        the rebuild estimate that was priced into it** — subtracting the
        full priced cost would cancel the previously learned rebuild and
        oscillate the estimate between R and 0 on alternate remaps.

        Only meaningful under elastic membership: ``_last_sync_clock`` is
        advanced by every :meth:`poll_membership`, which no-ops without a
        trace — a non-elastic session must not record the garbage span
        measured from construction time.

        The reference point then moves to the post-remap barrier clock
        (synchronized), so a periodic-check remap at the same iteration
        boundary as a membership drain measures its own span, not the
        drain's too — and the next iteration-span sample starts where the
        remap actually ended.
        """
        if self.elastic is None:
            return
        span = self.ctx.clock - self._last_sync_clock
        self._rebuild_cost = max(span - transfer_cost_estimate, 0.0)
        self._last_sync_clock = self.ctx.clock

    def _capped_remaining(self, remaining: int, span: float) -> int:
        """Cap the profitability horizon at the next *announced* change.

        The membership trace is replicated, announced schedule: a remap
        can only pay until the next membership event rips the arrangement
        up again.  *span* is the last synchronized iteration duration;
        both inputs are identical on every rank, so the cap is too.
        """
        assert self.elastic is not None
        nxt = self.elastic.trace.next_change_after(self.ctx.clock)
        if np.isfinite(nxt) and span > 0:
            until_change = int((nxt - self.ctx.clock) / span)
            remaining = min(remaining, max(until_change, 0))
        return remaining

    # ------------------------------------------------------------------ #
    # phase D proper
    # ------------------------------------------------------------------ #

    def record(self, compute_seconds: float, items: int) -> None:
        """Feed one iteration's compute sample to the load monitor."""
        self.monitor.record(compute_seconds, items)

    def check_due(self, iteration: int) -> bool:
        """Whether :meth:`maybe_rebalance` would run a check now.

        *iteration* is 0-based; checks fire every ``check_interval``
        completed iterations, never after the final one (there is nothing
        left to rebalance for), and only once the monitor has a window.

        The window clause must evaluate identically on every rank or the
        collective check deadlocks.  Under elastic membership the local
        window is *not* a reliable collective signal (a rank that just
        joined, or owns an empty interval, has none while its peers do),
        so every due check runs and windowless ranks report ``nan`` for
        :func:`decide` to impute.  Without a trace the legacy gate stands,
        extended to empty intervals (which can never fill a window but
        must still participate).
        """
        if self.lb is None or isinstance(self.strategy, NoBalancing):
            return False
        done = iteration + 1
        if done % self.lb.check_interval != 0 or done >= self.total_iterations:
            return False
        if self.elastic is not None:
            return True
        return (
            self.monitor.has_window
            or self.partition.size(self.ctx.rank) == 0
        )

    def maybe_rebalance(
        self, iteration: int, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Run Phase D at the end of *iteration* (0-based); SPMD collective.

        Elastic membership events that fired during the iteration are
        applied first (:meth:`poll_membership`); a departure drains the
        leaving rank's fields regardless of the load-balance style.  When a
        check is due, every rank contributes its monitored load to the
        strategy; if the collective decision says remap, *fields* are
        redistributed to the new partition and the inspector is rebuilt.
        With a checkpoint policy configured, a due boundary additionally
        replicates the (possibly remapped) state as a fresh epoch; a
        ``fail`` event detected by the poll instead triggers the rollback
        recovery and skips the periodic check (the world was just
        repartitioned from the checkpoint).  Returns the (possibly moved)
        fields.
        """
        if self._resume_at is not None:
            # A rollback armed the rewind at a previous boundary and the
            # driver marched on anyway: its loop counter no longer means
            # what the session thinks it means, and silently continuing
            # would skip the re-execution of the discarded iterations.
            raise ResilienceError(
                "next_iteration() was not consulted after a rollback; a "
                "driver of a resilient session must advance its loop with "
                "session.next_iteration(iteration), as run_program does"
            )
        # Synchronized boundary clock (the caller barriers first): the
        # replicated time reference every rank's checkpoint policy sees,
        # unpolluted by the per-rank skew a no-remap check leaves behind.
        boundary_clock = self.ctx.clock
        fields = self.poll_membership(iteration, fields)
        if self._resume_at is not None:
            # A rollback just restored and re-checkpointed the world;
            # the driver must now consult next_iteration().
            return fields
        if not self.check_due(iteration):
            return self._maybe_checkpoint(iteration, boundary_clock, fields)
        assert self.lb is not None
        ctx = self.ctx
        # Price the remap for what the packed exchange will really ship:
        # every field plus identity, not just one field.  With no fields
        # at all the configured pricing stands (the remap then only moves
        # ownership and rebuilds schedules).
        config = self._priced(self.lb, len(fields))
        t0 = ctx.clock
        with self._span("lb-check", label=self.strategy.name):
            time_per_item = (
                self.monitor.avg_time_per_item()
                if self.monitor.has_window
                else float("nan")  # empty interval: decide() imputes
            )
            if self._predictor is not None and np.isfinite(time_per_item):
                # Footnote 2: forecast next-phase capability from history.
                self._predictor.observe(1.0 / time_per_item)
                time_per_item = 1.0 / self._predictor.predict()
            remaining = self.total_iterations - (iteration + 1)
            if self.elastic is not None:
                remaining = self._capped_remaining(remaining, self._last_span)
                decision = self.strategy.check(
                    ctx,
                    self.partition,
                    time_per_item,
                    remaining_iterations=remaining,
                    config=config,
                    active=self.elastic.active,
                )
            else:
                # Without a membership trace, call through the PR-3 protocol
                # surface exactly as before, so caller-supplied strategies
                # written against it keep working unchanged.
                decision = self.strategy.check(
                    ctx,
                    self.partition,
                    time_per_item,
                    remaining_iterations=remaining,
                    config=config,
                )
        self.stats.lb_check_time += ctx.clock - t0
        self.stats.num_checks += 1
        self._count("lb.checks")
        self.monitor.reset_window()
        if decision.remap:
            assert decision.new_partition is not None
            fields = self.remap_to(decision.new_partition, fields)
            self._note_remap_span(
                decision.remap_cost - config.rebuild_cost_estimate
            )
        return self._maybe_checkpoint(iteration, boundary_clock, fields)

    def poll_membership(
        self, iteration: int, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Apply membership events up to the current clock; SPMD collective.

        Must be called at a *synchronized* virtual time — in practice right
        after the iteration barrier, which is why membership runs require
        per-iteration barriers — so every rank consumes the same event
        window and evaluates :func:`membership_decision` on identical
        inputs.  Departures (leave/replace) force the remap; a batch of
        pure joins only remaps if the profitability test accepts the grown
        pool.  No messages move: the trace is replicated knowledge.
        """
        fields = list(fields)
        if self.elastic is None:
            return fields
        ctx = self.ctx
        t0 = ctx.clock
        # Barrier-to-barrier span of the iteration that just ended: a
        # synchronized clock minus a synchronized clock, so identical on
        # every rank — the replicated absolute time scale for decisions.
        span = ctx.clock - self._last_sync_clock
        self._last_sync_clock = ctx.clock
        self._last_span = span
        events = self.elastic.poll(ctx.clock)
        if not events:
            return fields
        self.stats.membership_events += len(events)
        self._count("membership.events", len(events))
        with self._span("membership-poll", label=f"{len(events)} event(s)"):
            return self._apply_membership_events(
                iteration, fields, events, span, t0
            )

    def _apply_membership_events(
        self,
        iteration: int,
        fields: list[np.ndarray],
        events: Sequence,
        span: float,
        t0: float,
    ) -> list[np.ndarray]:
        """Handle one non-empty membership event batch (poll_membership body)."""
        assert self.elastic is not None
        ctx = self.ctx
        sizes = self.partition.sizes()
        if any(ev.kind == "fail" and sizes[ev.rank] > 0 for ev in events):
            # An unannounced failure of a data holder: its block is gone,
            # so the batch cannot be handled by a forward drain — roll
            # the world back to the checkpoint epoch instead.  Any leaves
            # or joins in the same batch fold into the recovery's target
            # active set.
            return self._recover(fields, span)
        # A failed rank that owned nothing lost nothing (a standby or
        # drained machine's host died): the live state is intact, so the
        # failure degrades to an ordinary membership shrink — no
        # rollback, no re-execution.  `sizes` is replicated, so every
        # rank takes the same branch.  The dead machine may still have
        # held *replicas* of the current epoch (or its own snapshot), so
        # redundancy is degraded: re-replicate over the survivors before
        # a later single failure can look like an unrecoverable double
        # failure.
        refresh = (
            any(ev.kind == "fail" for ev in events)
            and self.resilience is not None
            and self.resilience.checkpoint is not None
            and iteration + 1 < self.total_iterations
        )
        forced = any(ev.kind in ("leave", "replace") for ev in events)
        static = self.lb is None or isinstance(self.strategy, NoBalancing)
        if not forced and static:
            # The static baseline never adapts voluntarily: departures must
            # drain (the data has nowhere else to go), but a join is an
            # opportunity only a balancing run exploits.  The joiner stays
            # active-but-empty.
            if refresh:
                fields = self._take_checkpoint(
                    fields, next_iteration=iteration + 1
                )
            return fields
        decision_mask = self.elastic.active
        if forced and static:
            # The baseline's mandatory drain targets only the active ranks
            # already holding data — otherwise a later departure would
            # smuggle data onto a joiner the baseline never adopted.  A
            # replace's designated successor is the explicit exception
            # (the operator swapped the machine *in order to* hand over).
            # If the departing ranks held everything, fall back to the
            # full active set: the data must land somewhere.
            holders = decision_mask & (self.partition.sizes() > 0)
            for ev in events:
                if ev.kind == "replace" and decision_mask[ev.replacement]:
                    holders[ev.replacement] = True
            if holders.any():
                decision_mask = holders
        config = self._priced(
            self.lb if self.lb is not None else LoadBalanceConfig(),
            len(fields),
        )
        remaining = self._capped_remaining(
            max(self.total_iterations - (iteration + 1), 0), span
        )
        decision = membership_decision(
            ctx,
            self.partition,
            decision_mask,
            remaining,
            config,
            force=forced,
            iteration_span=span if span > 0 else None,
        )
        self.stats.lb_check_time += ctx.clock - t0
        if decision.remap:
            assert decision.new_partition is not None
            fields = self.remap_to(decision.new_partition, fields)
            self._note_remap_span(
                decision.remap_cost - config.rebuild_cost_estimate
            )
        if refresh:
            fields = self._take_checkpoint(fields, next_iteration=iteration + 1)
        return fields

    # ------------------------------------------------------------------ #
    # resilience: checkpoint epochs and failure recovery
    # ------------------------------------------------------------------ #

    def bootstrap_resilience(
        self, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Establish epoch 0 (the initial state) before the first iteration.

        SPMD collective; a no-op without a checkpoint policy.  Epoch 0 is
        what a failure before the first periodic checkpoint rolls back
        to — without it the run would be unrecoverable in its opening
        iterations.
        """
        fields = list(fields)
        if self.resilience is None:
            return fields
        return self._take_checkpoint(fields, next_iteration=0)

    def next_iteration(self, iteration: int) -> int:
        """The driver loop's successor of *iteration* (0-based).

        Normally ``iteration + 1``; after a rollback, the recovered
        epoch's first uncaptured iteration, so the driver re-executes the
        discarded suffix.  Drivers that feed ``fail`` events through
        :meth:`poll_membership` must advance their loop with this method
        (``run_program`` does).
        """
        if self._resume_at is not None:
            resume = self._resume_at
            self._resume_at = None
            return resume
        return iteration + 1

    def _take_checkpoint(
        self, fields: list[np.ndarray], *, next_iteration: int
    ) -> list[np.ndarray]:
        """Replicate the current state as a fresh epoch; SPMD collective.

        Entered through a barrier so the measured cost is a synchronized
        span — identical on every rank, which is what lets the cost-model
        policy schedule the next epoch without a message.
        """
        res = self.resilience
        assert res is not None
        ctx = self.ctx
        ctx.barrier()
        t0 = ctx.clock
        with self._span("checkpoint", label=f"epoch {res.epochs_taken}"):
            res.checkpoint = take_checkpoint(
                ctx,
                self.partition,
                fields,
                self.active,
                next_iteration=next_iteration,
                epoch=res.epochs_taken,
                backend=self.backend,
                replication_factor=getattr(
                    res.policy, "replication_factor", 1
                ),
            )
        res.measured_cost = ctx.clock - t0
        res.epochs_taken += 1
        self.stats.checkpoint_time += ctx.clock - t0
        self.stats.num_checkpoints += 1
        self._count("cp.checkpoints")
        # The next iteration-span sample starts where the checkpoint
        # ended, not where the iteration did.
        self._last_sync_clock = ctx.clock
        return fields

    def _maybe_checkpoint(
        self,
        iteration: int,
        boundary_clock: float,
        fields: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Consult the policy at a boundary; replicate when due.

        Never fires after the final iteration (there is nothing left to
        protect).  All policy inputs are replicated — the iteration, the
        synchronized boundary clock, the last epoch's synchronized clock
        and measured cost — so every rank reaches the same conclusion.
        """
        res = self.resilience
        if res is None or iteration + 1 >= self.total_iterations:
            return fields
        cp = res.checkpoint
        if cp is not None and cp.clock >= boundary_clock:
            # An epoch was already taken at this very boundary (a
            # redundancy refresh after a data-less failure): don't
            # replicate the identical state twice.  Both clocks are
            # synchronized, so every rank skips together.
            return fields
        due = res.policy.due(
            iteration,
            boundary_clock,
            last_checkpoint_clock=cp.clock if cp is not None else 0.0,
            checkpoint_cost=res.measured_cost,
        )
        if due:
            fields = self._take_checkpoint(
                fields, next_iteration=iteration + 1
            )
        return fields

    def _recover(
        self, fields: Sequence[np.ndarray], span: float
    ) -> list[np.ndarray]:
        """Roll back to the last epoch and repartition onto the survivors.

        SPMD collective, entered from :meth:`poll_membership` when the
        event window contains a ``fail``.  Every rank discards its
        current fields, restores its snapshot of the checkpoint epoch,
        and the epoch is redistributed from the checkpoint partition to a
        fresh MCR split over the surviving active set — with the dead
        ranks' slabs shipped by their checkpoint partners.  Virtual
        clocks never roll back: the discarded progress is the failure's
        price, accounted in ``stats.lost_time``.  Finishes by taking a
        fresh epoch of the recovered state (bounding the next rollback)
        and arming :meth:`next_iteration` with the epoch's iteration.
        """
        res = self.resilience
        assert self.elastic is not None
        if res is None:  # pragma: no cover - construction forbids this
            raise ResilienceError(
                "a rank failed but no checkpoint policy is configured"
            )
        cp = res.checkpoint
        if cp is None:
            raise ResilienceError(
                "a rank failed before any checkpoint epoch was "
                "established; call bootstrap_resilience() before the "
                "first iteration"
            )
        ctx = self.ctx
        t0 = ctx.clock
        self.stats.num_rollbacks += 1
        self.stats.lost_time += max(ctx.clock - cp.clock, 0.0)
        self._count("cp.rollbacks")
        with self._span("recovery", label=f"resume@{cp.next_iteration}"):
            # Restore the epoch: replicated partition, snapshot data.  The
            # incoming fields (post-checkpoint progress) are discarded.
            self.partition = cp.partition
            fields = [s.copy() for s in cp.snapshot]
            self.monitor.reset_window()
            # Survivor split: mandatory (the dead rank holds epoch data while
            # inactive).  The static baseline keeps its drain-only semantics:
            # data lands only on active ranks that already hold some.
            active = self.elastic.active
            decision_mask = active
            if self.lb is None or isinstance(self.strategy, NoBalancing):
                holders = active & (cp.partition.sizes() > 0)
                if holders.any():
                    decision_mask = holders
            config = self._priced(
                self.lb if self.lb is not None else LoadBalanceConfig(),
                len(fields),
            )
            remaining = self._capped_remaining(
                max(self.total_iterations - cp.next_iteration, 0), span
            )
            decision = membership_decision(
                ctx,
                self.partition,
                decision_mask,
                remaining,
                config,
                force=True,
                iteration_span=span if span > 0 else None,
            )
            assert decision.remap and decision.new_partition is not None
            host0 = time.perf_counter()
            fields = recover_redistribute_fields(
                ctx,
                cp.partition,
                decision.new_partition,
                fields,
                failed=self.elastic.failed,
                partners=cp.partners,
                replicas=cp.replicas,
                backend=self.backend,
            )
            self.stats.redistribute_host_s += time.perf_counter() - host0
            self.partition = decision.new_partition
            self.inspector = self._rebuild_inspector()
            ctx.barrier()
        self.stats.rollback_time += ctx.clock - t0
        self._note_remap_span(
            decision.remap_cost - config.rebuild_cost_estimate
        )
        self._resume_at = cp.next_iteration
        return self._take_checkpoint(
            fields, next_iteration=cp.next_iteration
        )

    def remap_to(
        self, new_partition: IntervalPartition, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Remap unconditionally: redistribute, rebuild, synchronize.

        The adaptive-application path (footnote 1): the caller computed a
        new partition from changed per-vertex weights and every rank moves
        its fields to their new homes, rebuilds the schedule, and barriers
        so the remap cost is charged consistently across ranks.
        """
        ctx = self.ctx
        fields = list(fields)
        t0 = ctx.clock
        with self._span("remap"):
            if fields:
                host0 = time.perf_counter()
                fields = redistribute_fields(
                    ctx, self.partition, new_partition, fields,
                    backend=self.backend,
                )
                self.stats.redistribute_host_s += time.perf_counter() - host0
            self.partition = new_partition
            self.inspector = self._rebuild_inspector()
            ctx.barrier()
        self.stats.remap_time += ctx.clock - t0
        self.stats.num_remaps += 1
        self._count("lb.remaps")
        return fields
