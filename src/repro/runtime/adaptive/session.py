"""The Phase D session: one owner for the monitor→decide→remap→rebuild loop.

Before this subsystem existed, the loop of Sec. 3.5 — monitor the load,
run the profitability check, redistribute, re-run the inspector — was
hand-wired separately in ``run_program``, the adaptive-refinement app, and
several benchmarks.  :class:`AdaptiveSession` is the single code path all
of them drive now:

* :meth:`record` feeds the per-iteration load sample to the monitor
  ("average computation time per data item");
* :meth:`maybe_rebalance` runs the configured
  :class:`~repro.runtime.adaptive.strategy.RebalanceStrategy` at the
  check interval and, when the decision says remap, performs the packed
  redistribution and the inspector rebuild;
* :meth:`remap_to` is the unconditional form for *adaptive applications*
  (paper footnote 1), where the computational structure itself changes and
  the caller supplies the new (typically weighted) partition;
* :meth:`poll_membership` applies elastic membership events
  (:mod:`repro.runtime.adaptive.elastic`): a departing rank's fields are
  drained through the same packed redistribution and the schedules are
  rebuilt for the shrunk (or grown) active set.

The session also does the bookkeeping Tables 4-5 are made of: virtual time
spent in checks and remaps, check/remap counts, and the host seconds of
the redistribution exchange (what the ``scale-adaptive`` benchmarks
compare across backends).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import LoadBalanceError
from repro.graph.csr import CSRGraph
from repro.partition.intervals import IntervalPartition
from repro.runtime.adaptive.elastic import (
    ElasticState,
    MembershipTrace,
    membership_decision,
    resolve_membership,
)
from repro.runtime.adaptive.redistribution import redistribute_fields
from repro.runtime.adaptive.strategy import (
    LoadBalanceConfig,
    NoBalancing,
    RebalanceStrategy,
    make_strategy,
)
from repro.runtime.inspector import InspectorResult, run_inspector
from repro.runtime.monitor import LoadMonitor
from repro.runtime.schedule_builders import InspectorCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["SessionStats", "AdaptiveSession"]


@dataclass
class SessionStats:
    """Per-rank Phase D bookkeeping for one session."""

    inspector_time: float = 0.0  # virtual s: initial schedule build
    lb_check_time: float = 0.0  # virtual s: strategy checks
    remap_time: float = 0.0  # virtual s: redistribute + rebuild + barrier
    num_checks: int = 0
    num_remaps: int = 0
    membership_events: int = 0  # elastic join/leave/replace events applied
    redistribute_host_s: float = 0.0  # host s inside the packed exchange


@dataclass
class AdaptiveSession:
    """One rank's Phase D state machine (SPMD: every rank owns one).

    Construction runs the inspector (Phase B) for the initial partition;
    thereafter the session keeps ``partition`` and ``inspector`` consistent
    through every remap, so callers always read the current schedule and
    kernel plan from it.
    """

    ctx: "RankContext"
    graph: CSRGraph
    partition: IntervalPartition
    total_iterations: int
    lb: "LoadBalanceConfig | str | None" = None
    strategy: "RebalanceStrategy | None" = None
    schedule_strategy: str = "sort2"
    inspector_cost: InspectorCostModel = field(default_factory=InspectorCostModel)
    backend: str | None = None
    #: Elastic membership: a trace, a CLI DSL string, or None to inherit
    #: the cluster's own trace (ClusterSpec.membership); clusters without
    #: one run with a fixed rank set, exactly as before.
    membership: "MembershipTrace | str | None" = None

    def __post_init__(self) -> None:
        if self.total_iterations < 1:
            raise LoadBalanceError(
                f"total_iterations must be >= 1, got {self.total_iterations}"
            )
        explicit_off = self.lb == "off"
        if isinstance(self.lb, str):
            self.lb = (
                None if explicit_off else LoadBalanceConfig(style=self.lb)
            )
        if self.strategy is None:
            self.strategy = make_strategy(self.lb)
        elif explicit_off:
            # An explicit lb="off" wins over a supplied strategy object:
            # the caller asked for the static baseline.
            self.strategy = NoBalancing()
        elif self.lb is None and not isinstance(self.strategy, NoBalancing):
            # A caller-supplied strategy with no config would otherwise be
            # silently inert (checks gate on the config); give it the
            # default knobs so the pluggable path actually balances.
            self.lb = LoadBalanceConfig()
        self.stats = SessionStats()
        self.monitor = LoadMonitor()
        self._predictor = None
        if self.lb is not None and self.lb.predictor is not None:
            from repro.runtime.prediction import make_predictor

            self._predictor = make_predictor(self.lb.predictor)
        trace = resolve_membership(
            self.membership
            if self.membership is not None
            else self.ctx.cluster.membership,
            self.ctx.size,
        )
        self.elastic: ElasticState | None = (
            ElasticState(trace) if trace is not None else None
        )
        if self.elastic is not None and not isinstance(
            self.strategy, NoBalancing
        ):
            # Elastic checks pass the active mask through check(); fail
            # fast on a caller-supplied strategy with the pre-elastic
            # signature instead of a mid-run TypeError at the first check.
            import inspect

            params = inspect.signature(self.strategy.check).parameters
            accepts_active = "active" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()
            )
            if not accepts_active:
                raise LoadBalanceError(
                    f"strategy {self.strategy.name!r} does not accept the "
                    f"'active' keyword its check() needs under elastic "
                    f"membership; update it to the current "
                    f"RebalanceStrategy protocol"
                )
        self._last_sync_clock = self.ctx.clock
        self._last_span = 0.0
        self._rebuild_cost = 0.0  # learned from the last remap's true span
        if self.elastic is not None:
            sizes = self.partition.sizes()
            standby = ~self.elastic.active
            if np.any(standby & (sizes > 0)):
                bad = np.flatnonzero(standby & (sizes > 0)).tolist()
                raise LoadBalanceError(
                    f"initial partition assigns elements to standby ranks "
                    f"{bad}; mask the initial capabilities with the "
                    f"membership trace's active set at t=0"
                )
        self.inspector: InspectorResult = self._build_inspector()
        self.stats.inspector_time += self.inspector.build_time

    # ------------------------------------------------------------------ #
    # phase B plumbing
    # ------------------------------------------------------------------ #

    def _build_inspector(self) -> InspectorResult:
        return run_inspector(
            self.graph,
            self.partition,
            self.ctx.rank,
            strategy=self.schedule_strategy,
            ctx=self.ctx,
            cost_model=self.inspector_cost,
            backend=self.backend,
        )

    @property
    def schedule(self):
        """The current communication schedule (tracks remaps)."""
        return self.inspector.schedule

    @property
    def kernel_plan(self):
        """The current kernel plan (tracks remaps)."""
        return self.inspector.kernel_plan

    def interval(self) -> tuple[int, int]:
        """This rank's current [lo, hi) block of the 1-D list."""
        return self.partition.interval(self.ctx.rank)

    @property
    def active(self) -> np.ndarray:
        """Current active-rank mask (all-true without a membership trace)."""
        if self.elastic is not None:
            return self.elastic.active
        return np.ones(self.ctx.size, dtype=bool)

    def _priced(self, config: LoadBalanceConfig, num_fields: int) -> LoadBalanceConfig:
        """Copy *config* with pricing matched to what a remap really costs.

        ``num_fields`` is set to the actual field count the packed exchange
        will ship.  Under elastic membership, a zero (default)
        ``rebuild_cost_estimate`` is additionally filled with the rebuild
        cost learned from the last remap — the measured synchronized remap
        span minus its priced transfer — so the frequent repartitions
        membership churn provokes stop looking free.  (Non-elastic runs
        keep the paper's protocol untouched: rebuilds are priced only if
        the caller configures an estimate.)  Both inputs are identical on
        every rank, keeping decisions collective.
        """
        updates: dict = {}
        if num_fields and config.num_fields != num_fields:
            updates["num_fields"] = num_fields
        if (
            self.elastic is not None
            and config.rebuild_cost_estimate == 0.0
            and self._rebuild_cost > 0.0
        ):
            updates["rebuild_cost_estimate"] = self._rebuild_cost
        return replace(config, **updates) if updates else config

    def _note_remap_span(self, transfer_cost_estimate: float) -> None:
        """Learn the rebuild cost from the remap that just completed.

        *transfer_cost_estimate* must be the decision's remap cost **minus
        the rebuild estimate that was priced into it** — subtracting the
        full priced cost would cancel the previously learned rebuild and
        oscillate the estimate between R and 0 on alternate remaps.

        Only meaningful under elastic membership: ``_last_sync_clock`` is
        advanced by every :meth:`poll_membership`, which no-ops without a
        trace — a non-elastic session must not record the garbage span
        measured from construction time.

        The reference point then moves to the post-remap barrier clock
        (synchronized), so a periodic-check remap at the same iteration
        boundary as a membership drain measures its own span, not the
        drain's too — and the next iteration-span sample starts where the
        remap actually ended.
        """
        if self.elastic is None:
            return
        span = self.ctx.clock - self._last_sync_clock
        self._rebuild_cost = max(span - transfer_cost_estimate, 0.0)
        self._last_sync_clock = self.ctx.clock

    def _capped_remaining(self, remaining: int, span: float) -> int:
        """Cap the profitability horizon at the next *announced* change.

        The membership trace is replicated, announced schedule: a remap
        can only pay until the next membership event rips the arrangement
        up again.  *span* is the last synchronized iteration duration;
        both inputs are identical on every rank, so the cap is too.
        """
        assert self.elastic is not None
        nxt = self.elastic.trace.next_change_after(self.ctx.clock)
        if np.isfinite(nxt) and span > 0:
            until_change = int((nxt - self.ctx.clock) / span)
            remaining = min(remaining, max(until_change, 0))
        return remaining

    # ------------------------------------------------------------------ #
    # phase D proper
    # ------------------------------------------------------------------ #

    def record(self, compute_seconds: float, items: int) -> None:
        """Feed one iteration's compute sample to the load monitor."""
        self.monitor.record(compute_seconds, items)

    def check_due(self, iteration: int) -> bool:
        """Whether :meth:`maybe_rebalance` would run a check now.

        *iteration* is 0-based; checks fire every ``check_interval``
        completed iterations, never after the final one (there is nothing
        left to rebalance for), and only once the monitor has a window.

        The window clause must evaluate identically on every rank or the
        collective check deadlocks.  Under elastic membership the local
        window is *not* a reliable collective signal (a rank that just
        joined, or owns an empty interval, has none while its peers do),
        so every due check runs and windowless ranks report ``nan`` for
        :func:`decide` to impute.  Without a trace the legacy gate stands,
        extended to empty intervals (which can never fill a window but
        must still participate).
        """
        if self.lb is None or isinstance(self.strategy, NoBalancing):
            return False
        done = iteration + 1
        if done % self.lb.check_interval != 0 or done >= self.total_iterations:
            return False
        if self.elastic is not None:
            return True
        return (
            self.monitor.has_window
            or self.partition.size(self.ctx.rank) == 0
        )

    def maybe_rebalance(
        self, iteration: int, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Run Phase D at the end of *iteration* (0-based); SPMD collective.

        Elastic membership events that fired during the iteration are
        applied first (:meth:`poll_membership`); a departure drains the
        leaving rank's fields regardless of the load-balance style.  When a
        check is due, every rank contributes its monitored load to the
        strategy; if the collective decision says remap, *fields* are
        redistributed to the new partition and the inspector is rebuilt.
        Returns the (possibly moved) fields.
        """
        fields = self.poll_membership(iteration, fields)
        if not self.check_due(iteration):
            return fields
        assert self.lb is not None
        ctx = self.ctx
        # Price the remap for what the packed exchange will really ship:
        # every field plus identity, not just one field.  With no fields
        # at all the configured pricing stands (the remap then only moves
        # ownership and rebuilds schedules).
        config = self._priced(self.lb, len(fields))
        t0 = ctx.clock
        time_per_item = (
            self.monitor.avg_time_per_item()
            if self.monitor.has_window
            else float("nan")  # empty interval: decide() imputes
        )
        if self._predictor is not None and np.isfinite(time_per_item):
            # Footnote 2: forecast next-phase capability from history.
            self._predictor.observe(1.0 / time_per_item)
            time_per_item = 1.0 / self._predictor.predict()
        remaining = self.total_iterations - (iteration + 1)
        if self.elastic is not None:
            remaining = self._capped_remaining(remaining, self._last_span)
            decision = self.strategy.check(
                ctx,
                self.partition,
                time_per_item,
                remaining_iterations=remaining,
                config=config,
                active=self.elastic.active,
            )
        else:
            # Without a membership trace, call through the PR-3 protocol
            # surface exactly as before, so caller-supplied strategies
            # written against it keep working unchanged.
            decision = self.strategy.check(
                ctx,
                self.partition,
                time_per_item,
                remaining_iterations=remaining,
                config=config,
            )
        self.stats.lb_check_time += ctx.clock - t0
        self.stats.num_checks += 1
        self.monitor.reset_window()
        if decision.remap:
            assert decision.new_partition is not None
            fields = self.remap_to(decision.new_partition, fields)
            self._note_remap_span(
                decision.remap_cost - config.rebuild_cost_estimate
            )
        return fields

    def poll_membership(
        self, iteration: int, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Apply membership events up to the current clock; SPMD collective.

        Must be called at a *synchronized* virtual time — in practice right
        after the iteration barrier, which is why membership runs require
        per-iteration barriers — so every rank consumes the same event
        window and evaluates :func:`membership_decision` on identical
        inputs.  Departures (leave/replace) force the remap; a batch of
        pure joins only remaps if the profitability test accepts the grown
        pool.  No messages move: the trace is replicated knowledge.
        """
        fields = list(fields)
        if self.elastic is None:
            return fields
        ctx = self.ctx
        t0 = ctx.clock
        # Barrier-to-barrier span of the iteration that just ended: a
        # synchronized clock minus a synchronized clock, so identical on
        # every rank — the replicated absolute time scale for decisions.
        span = ctx.clock - self._last_sync_clock
        self._last_sync_clock = ctx.clock
        self._last_span = span
        events = self.elastic.poll(ctx.clock)
        if not events:
            return fields
        self.stats.membership_events += len(events)
        forced = any(ev.kind in ("leave", "replace") for ev in events)
        static = self.lb is None or isinstance(self.strategy, NoBalancing)
        if not forced and static:
            # The static baseline never adapts voluntarily: departures must
            # drain (the data has nowhere else to go), but a join is an
            # opportunity only a balancing run exploits.  The joiner stays
            # active-but-empty.
            return fields
        decision_mask = self.elastic.active
        if forced and static:
            # The baseline's mandatory drain targets only the active ranks
            # already holding data — otherwise a later departure would
            # smuggle data onto a joiner the baseline never adopted.  A
            # replace's designated successor is the explicit exception
            # (the operator swapped the machine *in order to* hand over).
            # If the departing ranks held everything, fall back to the
            # full active set: the data must land somewhere.
            holders = decision_mask & (self.partition.sizes() > 0)
            for ev in events:
                if ev.kind == "replace" and decision_mask[ev.replacement]:
                    holders[ev.replacement] = True
            if holders.any():
                decision_mask = holders
        config = self._priced(
            self.lb if self.lb is not None else LoadBalanceConfig(),
            len(fields),
        )
        remaining = self._capped_remaining(
            max(self.total_iterations - (iteration + 1), 0), span
        )
        decision = membership_decision(
            ctx,
            self.partition,
            decision_mask,
            remaining,
            config,
            force=forced,
            iteration_span=span if span > 0 else None,
        )
        self.stats.lb_check_time += ctx.clock - t0
        if decision.remap:
            assert decision.new_partition is not None
            fields = self.remap_to(decision.new_partition, fields)
            self._note_remap_span(
                decision.remap_cost - config.rebuild_cost_estimate
            )
        return fields

    def remap_to(
        self, new_partition: IntervalPartition, fields: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Remap unconditionally: redistribute, rebuild, synchronize.

        The adaptive-application path (footnote 1): the caller computed a
        new partition from changed per-vertex weights and every rank moves
        its fields to their new homes, rebuilds the schedule, and barriers
        so the remap cost is charged consistently across ranks.
        """
        ctx = self.ctx
        fields = list(fields)
        t0 = ctx.clock
        if fields:
            host0 = time.perf_counter()
            fields = redistribute_fields(
                ctx, self.partition, new_partition, fields,
                backend=self.backend,
            )
            self.stats.redistribute_host_s += time.perf_counter() - host0
        self.partition = new_partition
        self.inspector = self._build_inspector()
        ctx.barrier()
        self.stats.remap_time += ctx.clock - t0
        self.stats.num_remaps += 1
        return fields
