"""Pluggable rebalancing strategies: the decision layer of Phase D.

Sec. 3.5 describes two protocols for deciding *whether and how* to remap:

* the paper's implementation — "each processor monitors its own load and
  sends it to a controller processor, which makes the decision about
  repartitioning the data ... which broadcasts the decision to all the
  processors" (:class:`CentralizedStrategy`);
* its stated future work — "when better resource management tools are
  available, we hope to have distributed strategies"
  (:class:`DistributedStrategy`).

Both share one deterministic decision function, :func:`decide` — the
profitability rule that remapping pays iff the predicted per-iteration
improvement, summed over the remaining iterations, exceeds the estimated
remap cost (redistribution + schedule rebuild).  The strategies differ only
in protocol cost:

* centralized: (p-1) unicast load reports + 1 decision broadcast, the
  decision computed once at the controller;
* distributed: p load multicasts (one hardware multicast per rank on
  Ethernet, O(p^2) unicasts otherwise), the decision computed p times
  redundantly — determinism guarantees every rank reaches the identical
  conclusion without exchanging it.

:class:`NoBalancing` completes the lattice: checks never fire and no
messages move, so a static run and an adaptive run share one driver loop
(:class:`repro.runtime.adaptive.AdaptiveSession`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.errors import LoadBalanceError
from repro.net.message import Tags
from repro.partition.arrangement import (
    RedistributionCostModel,
    minimize_cost_redistribution,
)
from repro.partition.intervals import IntervalPartition, partition_list
from repro.runtime.adaptive.redistribution import estimate_remap_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "LoadBalanceConfig",
    "Decision",
    "RebalanceStrategy",
    "CentralizedStrategy",
    "DistributedStrategy",
    "NoBalancing",
    "STRATEGY_NAMES",
    "make_strategy",
    "decide",
    "controller_check",
    "distributed_check",
]

#: Recognized strategy names (the ``style`` field / CLI vocabulary).
STRATEGY_NAMES = ("off", "centralized", "distributed")


@dataclass(frozen=True)
class LoadBalanceConfig:
    """Knobs of the load-balancing protocol.

    ``check_interval`` — iterations between checks (the paper checks every
    10 and calls frequency selection out of scope; the ablation bench
    sweeps it).
    ``profitability_margin`` — remap only if predicted savings exceed
    ``margin`` x estimated remap cost (1.0 = the paper's break-even rule).
    ``min_improvement`` — additionally require the predicted per-iteration
    improvement to exceed this fraction of the current per-iteration time;
    filters out remaps that only chase block-rounding noise.
    ``use_mcr`` — choose the new arrangement with MCR (True) or keep the
    current arrangement (False; the "without MCR" baseline of Table 2).
    ``rebuild_cost_estimate`` — virtual seconds charged for re-running the
    inspector after a remap, included in the profitability test.
    ``num_fields`` — how many field arrays a remap will move in the packed
    exchange (the session sets this to the actual field count per check),
    so the priced remap matches what :func:`redistribute_fields` ships.
    ``style`` — "centralized" (the paper's implementation), "distributed"
    (its stated future work), or "off" (monitor but never check: a static
    run).  :func:`make_strategy` maps the name onto a strategy object.
    ``predictor`` — None for the paper's last-phase assumption, or a
    predictor name from :mod:`repro.runtime.prediction` ("last",
    "moving-average", "ewma", "trend") to forecast capabilities from more
    than one previous phase (paper footnote 2).
    """

    check_interval: int = 10
    profitability_margin: float = 1.0
    min_improvement: float = 0.02
    use_mcr: bool = True
    element_nbytes: int = 8
    num_fields: int = 1
    rebuild_cost_estimate: float = 0.0
    cost_model: RedistributionCostModel = RedistributionCostModel()
    style: str = "centralized"
    predictor: str | None = None

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise LoadBalanceError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.profitability_margin < 0:
            raise LoadBalanceError("profitability_margin must be >= 0")
        if not (0.0 <= self.min_improvement < 1.0):
            raise LoadBalanceError("min_improvement must be in [0, 1)")
        if self.style not in STRATEGY_NAMES:
            raise LoadBalanceError(
                f"style must be one of {STRATEGY_NAMES}, got {self.style!r}"
            )
        if self.element_nbytes <= 0:
            raise LoadBalanceError("element_nbytes must be > 0")
        if self.num_fields < 1:
            raise LoadBalanceError("num_fields must be >= 1")


@dataclass(frozen=True)
class Decision:
    """The outcome of one load-balance check (identical on every rank)."""

    remap: bool
    new_partition: IntervalPartition | None
    predicted_current: float  # predicted next-phase time under current split
    predicted_balanced: float  # predicted next-phase time after remap
    remap_cost: float  # estimated redistribution + rebuild cost


def decide(
    ctx: "RankContext",
    partition: IntervalPartition,
    times_per_item: np.ndarray,
    remaining_iterations: int,
    config: LoadBalanceConfig,
    *,
    active: np.ndarray | None = None,
    force: bool = False,
) -> Decision:
    """The shared deterministic decision function (Sec. 3.5).

    Given every processor's monitored average compute time per item,
    predicts the next phase's duration under the current and rebalanced
    partitions, prices the remap (MCR arrangement + transfer plan +
    schedule rebuild), and applies the profitability rule.  Deterministic
    in its inputs, which is what lets :class:`DistributedStrategy` evaluate
    it redundantly on every rank without a decision broadcast.

    Elastic membership threads through two extra inputs:

    * *active* — boolean mask of the participating ranks.  Inactive ranks
      get capability 0 (the new partition assigns them nothing); if an
      inactive rank still *holds* elements, the current split is infeasible
      (its predicted time is infinite) and remapping is unconditionally
      profitable — a departure makes rebalancing mandatory by construction.
    * *force* — remap regardless of the profitability test (a replace event
      must move data even when the predicted times break even).

    A ``nan`` entry in *times_per_item* marks a rank without a monitor
    window (a standby machine, or a just-joined rank that owns nothing
    yet).  Its time is imputed from the cluster's *base* speed ratios — a
    deterministic, clock-independent input, so redundant evaluation on
    ranks with different virtual clocks still reaches one conclusion.
    """
    times_per_item = np.asarray(times_per_item, dtype=np.float64).copy()
    p = times_per_item.size
    if active is None:
        active = np.ones(p, dtype=bool)
    else:
        active = np.asarray(active, dtype=bool)
        if active.shape != (p,):
            raise LoadBalanceError(
                f"active mask has shape {active.shape}, expected ({p},)"
            )
        if not active.any():
            raise LoadBalanceError("cannot decide with no active ranks")
    missing = np.isnan(times_per_item)  # the documented no-window sentinel
    reported = ~missing
    if np.any(times_per_item[reported] <= 0) or not np.all(
        np.isfinite(times_per_item[reported])
    ):
        raise LoadBalanceError(
            f"invalid load reports: {times_per_item.tolist()}"
        )
    if missing.any():
        # Impute missing windows from base speeds: time_i * speed_i is the
        # (machine-independent) unit work per item, estimated from the
        # ranks that did report.
        speeds = ctx.cluster.speeds
        if reported.any():
            unit_work = float(
                np.median(times_per_item[reported] * speeds[reported])
            )
        else:
            unit_work = 1.0
        times_per_item[missing] = unit_work / speeds[missing]
    sizes = partition.sizes().astype(np.float64)
    n = partition.num_elements
    # Predicted next-phase (per-iteration) time under the current split:
    # the slowest processor bounds the loosely synchronous iteration.  An
    # inactive rank that still holds elements can never finish them.
    if np.any((sizes > 0) & ~active):
        predicted_current = float("inf")
    else:
        predicted_current = float(np.max(sizes * times_per_item))
    # Estimated capabilities for the next phase (items/second), assuming
    # the environment persists ("the computational resources allocated ...
    # are the same as for the previous phase").  Inactive ranks contribute
    # no capability and receive no elements.
    capabilities = np.where(active, 1.0 / times_per_item, 0.0)
    predicted_balanced = float(n / capabilities.sum())

    if config.use_mcr:
        # Charge the controller's O(p^3) MCR search (paper Table 1 measures
        # it at ~2 microseconds x p^3 on the testbed's workstations).
        ctx.compute(2.0e-6 * ctx.size**3, label="mcr")
        arrangement = minimize_cost_redistribution(
            partition.owners,
            sizes / max(sizes.sum(), 1.0),
            capabilities / capabilities.sum(),
            n,
            cost_model=config.cost_model,
        )
    else:
        arrangement = partition.owners
    new_partition = partition_list(
        n, capabilities / capabilities.sum(), arrangement
    )
    remap_cost = (
        estimate_remap_cost(
            ctx._comm.network,
            partition,
            new_partition,
            config.element_nbytes,
            num_fields=config.num_fields,
        )
        + config.rebuild_cost_estimate
    )
    if np.isinf(predicted_current):
        profitable = True
    else:
        savings = (predicted_current - predicted_balanced) * remaining_iterations
        relative_gain = (
            (predicted_current - predicted_balanced) / predicted_current
            if predicted_current > 0
            else 0.0
        )
        profitable = (
            savings > config.profitability_margin * remap_cost
            and relative_gain >= config.min_improvement
        )
    profitable = bool(profitable) or force
    return Decision(
        remap=profitable,
        new_partition=new_partition if profitable else None,
        predicted_current=predicted_current,
        predicted_balanced=predicted_balanced,
        remap_cost=remap_cost,
    )


@runtime_checkable
class RebalanceStrategy(Protocol):
    """One load-balance check protocol (an SPMD collective).

    Implementations exchange the per-rank load reports however they like,
    but must return the *same* :class:`Decision` on every rank — the
    session redistributes unconditionally on ``decision.remap``, so a
    strategy that desynchronizes ranks deadlocks the exchange (and trips
    the :attr:`ProgramReport.num_remaps` cross-rank consistency check).

    Under elastic membership, *time_per_item* may be ``nan`` (a rank with
    no monitor window), *active* masks the participating ranks, and
    *force* marks a mandatory remap — all three are forwarded to
    :func:`decide`.
    """

    name: str

    def check(
        self,
        ctx: "RankContext",
        partition: IntervalPartition,
        time_per_item: float,
        remaining_iterations: int,
        config: LoadBalanceConfig,
        *,
        active: np.ndarray | None = None,
        force: bool = False,
    ) -> Decision:
        """Run one collective check; all ranks call it in the same phase."""
        ...


def _check_remaining(remaining_iterations: int) -> None:
    if remaining_iterations < 0:
        raise LoadBalanceError("remaining_iterations must be >= 0")


@dataclass(frozen=True)
class CentralizedStrategy:
    """The paper's implementation: load reports to a controller rank.

    "This currently requires sending the load information as separate
    messages to the controller, which broadcasts the decision to all the
    processors."
    """

    root: int = 0
    name: str = "centralized"

    def check(
        self,
        ctx: "RankContext",
        partition: IntervalPartition,
        time_per_item: float,
        remaining_iterations: int,
        config: LoadBalanceConfig,
        *,
        active: np.ndarray | None = None,
        force: bool = False,
    ) -> Decision:
        _check_remaining(remaining_iterations)
        root = self.root
        # "sending the load information as separate messages to the controller"
        if ctx.rank == root:
            times = np.empty(ctx.size, dtype=np.float64)
            times[root] = time_per_item
            peers = [r for r in range(ctx.size) if r != root]
            for source, msg in ctx.recv_expected(
                peers, Tags.LOAD_REPORT
            ).items():
                times[source] = msg.payload
            decision = decide(
                ctx, partition, times, remaining_iterations, config,
                active=active, force=force,
            )
        else:
            ctx.send(root, float(time_per_item), Tags.LOAD_REPORT)
            decision = None
        # "broadcasts the decision to all the processors"
        return ctx.bcast(decision, root=root, tag=Tags.LB_DECISION)


@dataclass(frozen=True)
class DistributedStrategy:
    """No controller: every rank multicasts its load and decides locally.

    One hardware multicast per rank on Ethernet (O(p) frames), a sequential
    unicast fan-out otherwise (O(p^2) messages) — exactly the trade-off
    ``bench_ext_distributed_lb`` quantifies.  Determinism of :func:`decide`
    guarantees all ranks reach the identical conclusion without a decision
    broadcast.
    """

    name: str = "distributed"

    def check(
        self,
        ctx: "RankContext",
        partition: IntervalPartition,
        time_per_item: float,
        remaining_iterations: int,
        config: LoadBalanceConfig,
        *,
        active: np.ndarray | None = None,
        force: bool = False,
    ) -> Decision:
        _check_remaining(remaining_iterations)
        peers = [r for r in range(ctx.size) if r != ctx.rank]
        if peers:
            ctx.multicast(peers, float(time_per_item), Tags.LOAD_REPORT)
        times = np.empty(ctx.size, dtype=np.float64)
        times[ctx.rank] = time_per_item
        for source, msg in ctx.recv_expected(
            peers, Tags.LOAD_REPORT
        ).items():
            times[source] = msg.payload
        # Every rank redundantly runs the same deterministic decision.
        return decide(
            ctx, partition, times, remaining_iterations, config,
            active=active, force=force,
        )


@dataclass(frozen=True)
class NoBalancing:
    """Checks never remap and exchange nothing: the static baseline."""

    name: str = "off"

    def check(
        self,
        ctx: "RankContext",
        partition: IntervalPartition,
        time_per_item: float,
        remaining_iterations: int,
        config: LoadBalanceConfig,
        *,
        active: np.ndarray | None = None,
        force: bool = False,
    ) -> Decision:
        _check_remaining(remaining_iterations)
        return Decision(
            remap=False,
            new_partition=None,
            predicted_current=float("nan"),
            predicted_balanced=float("nan"),
            remap_cost=0.0,
        )


def make_strategy(
    spec: "str | RebalanceStrategy | LoadBalanceConfig | None",
) -> RebalanceStrategy:
    """Resolve a strategy from a name, config, instance, or ``None``.

    ``None`` and ``"off"`` mean :class:`NoBalancing`; a
    :class:`LoadBalanceConfig` resolves through its ``style``; any object
    satisfying :class:`RebalanceStrategy` passes through unchanged.
    """
    if spec is None:
        return NoBalancing()
    if isinstance(spec, LoadBalanceConfig):
        spec = spec.style
    if isinstance(spec, str):
        if spec == "off":
            return NoBalancing()
        if spec == "centralized":
            return CentralizedStrategy()
        if spec == "distributed":
            return DistributedStrategy()
        raise LoadBalanceError(
            f"unknown rebalance strategy {spec!r}; known: {STRATEGY_NAMES}"
        )
    if isinstance(spec, RebalanceStrategy):
        return spec
    raise LoadBalanceError(
        f"cannot make a rebalance strategy from {type(spec).__name__}"
    )


def controller_check(
    ctx: "RankContext",
    partition: IntervalPartition,
    time_per_item: float,
    remaining_iterations: int,
    config: LoadBalanceConfig,
    *,
    root: int = 0,
) -> Decision:
    """One centralized load-balance check (SPMD collective; all ranks call it).

    Functional form of :class:`CentralizedStrategy` kept for callers that
    drive single checks directly (benchmarks, tests).
    """
    return CentralizedStrategy(root=root).check(
        ctx, partition, time_per_item, remaining_iterations, config
    )


def distributed_check(
    ctx: "RankContext",
    partition: IntervalPartition,
    time_per_item: float,
    remaining_iterations: int,
    config: LoadBalanceConfig,
) -> Decision:
    """One decentralized load-balance check (SPMD collective).

    Functional form of :class:`DistributedStrategy`.
    """
    return DistributedStrategy().check(
        ctx, partition, time_per_item, remaining_iterations, config
    )
