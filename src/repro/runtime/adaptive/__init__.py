"""Phase D as a subsystem: adaptive load balancing (Secs. 3.4-3.5).

The paper's headline capability — monitor the load, test profitability,
MinimizeCostRedistribution, remap — lives here as three pluggable layers:

* :mod:`~repro.runtime.adaptive.strategy` — *when and what to remap*:
  the :class:`RebalanceStrategy` protocol with the paper's
  :class:`CentralizedStrategy`, the future-work
  :class:`DistributedStrategy`, and :class:`NoBalancing`, all sharing one
  deterministic :func:`decide` profitability function;
* :mod:`~repro.runtime.adaptive.redistribution` — *how data moves*:
  :func:`redistribute_fields` ships k fields plus vertex identity in one
  packed message per peer, with backend-paired (reference/vectorized)
  buffer packing;
* :mod:`~repro.runtime.adaptive.session` — *the loop*:
  :class:`AdaptiveSession` owns monitor → decide → redistribute →
  inspector-rebuild, so ``run_program``, the adaptive apps, and the
  benchmarks all drive the same code path;
* :mod:`~repro.runtime.adaptive.elastic` — *who participates*:
  :class:`MembershipTrace` events grow and shrink the active rank set at
  runtime; :class:`ElasticState` + :func:`membership_decision` drain
  departing ranks through the same packed redistribution and re-run the
  profitability test for joiners.

The old single-module homes (``repro.runtime.controller``,
``repro.runtime.distributed_lb``, ``repro.runtime.redistribution``) have
been removed; import everything from :mod:`repro.runtime.adaptive` (or
the :mod:`repro.runtime` facade).
"""

from repro.runtime.adaptive.elastic import (
    ElasticState,
    MembershipEvent,
    MembershipTrace,
    membership_decision,
    resolve_membership,
)
from repro.runtime.adaptive.redistribution import (
    IDENTITY_NBYTES,
    estimate_remap_cost,
    redistribute,
    redistribute_fields,
    transfer_plan_summary,
)
from repro.runtime.adaptive.session import AdaptiveSession, SessionStats
from repro.runtime.adaptive.strategy import (
    STRATEGY_NAMES,
    CentralizedStrategy,
    Decision,
    DistributedStrategy,
    LoadBalanceConfig,
    NoBalancing,
    RebalanceStrategy,
    controller_check,
    decide,
    distributed_check,
    make_strategy,
)

__all__ = [
    "AdaptiveSession",
    "CentralizedStrategy",
    "Decision",
    "DistributedStrategy",
    "ElasticState",
    "IDENTITY_NBYTES",
    "LoadBalanceConfig",
    "MembershipEvent",
    "MembershipTrace",
    "NoBalancing",
    "RebalanceStrategy",
    "STRATEGY_NAMES",
    "SessionStats",
    "controller_check",
    "decide",
    "distributed_check",
    "estimate_remap_cost",
    "make_strategy",
    "membership_decision",
    "redistribute",
    "redistribute_fields",
    "resolve_membership",
    "transfer_plan_summary",
]
