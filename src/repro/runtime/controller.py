"""Deprecated home of the centralized controller (Sec. 3.5).

The controller moved into the Phase D subsystem:
:mod:`repro.runtime.adaptive` (``CentralizedStrategy`` /
``controller_check`` / the public ``decide`` profitability function).
This module remains as a thin compatibility shim: the dataclasses
re-export directly, the entry-point function warns once per call site.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.runtime.adaptive.strategy import (  # noqa: F401  (re-exports)
    Decision,
    LoadBalanceConfig,
    decide,
)
from repro.runtime.adaptive.strategy import (
    controller_check as _controller_check,
)

__all__ = ["LoadBalanceConfig", "Decision", "controller_check"]

#: Deprecated private alias; use :func:`repro.runtime.adaptive.decide`.
_decide = decide


def controller_check(*args: Any, **kwargs: Any) -> Decision:
    """Deprecated alias of :func:`repro.runtime.adaptive.controller_check`."""
    warnings.warn(
        "repro.runtime.controller.controller_check moved to "
        "repro.runtime.adaptive; import it from there",
        DeprecationWarning,
        stacklevel=2,
    )
    return _controller_check(*args, **kwargs)
