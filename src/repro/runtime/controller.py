"""The centralized load-balancing controller (Sec. 3.5).

"In our current implementation each processor monitors its own load and
sends it to a controller processor, which makes the decision about
repartitioning the data.  ...  This currently requires sending the load
information as separate messages to the controller, which broadcasts the
decision to all the processors."

The controller's profitability rule: remapping is profitable iff the
predicted per-iteration improvement, summed over the remaining iterations,
exceeds the estimated remap cost (redistribution + schedule rebuild).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import LoadBalanceError
from repro.net.message import Tags
from repro.partition.arrangement import (
    RedistributionCostModel,
    minimize_cost_redistribution,
)
from repro.partition.intervals import IntervalPartition, partition_list
from repro.runtime.redistribution import estimate_remap_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["LoadBalanceConfig", "Decision", "controller_check"]


@dataclass(frozen=True)
class LoadBalanceConfig:
    """Knobs of the load-balancing protocol.

    ``check_interval`` — iterations between checks (the paper checks every
    10 and calls frequency selection out of scope; the ablation bench
    sweeps it).
    ``profitability_margin`` — remap only if predicted savings exceed
    ``margin`` x estimated remap cost (1.0 = the paper's break-even rule).
    ``min_improvement`` — additionally require the predicted per-iteration
    improvement to exceed this fraction of the current per-iteration time;
    filters out remaps that only chase block-rounding noise.
    ``use_mcr`` — choose the new arrangement with MCR (True) or keep the
    current arrangement (False; the "without MCR" baseline of Table 2).
    ``rebuild_cost_estimate`` — virtual seconds charged for re-running the
    inspector after a remap, included in the profitability test.
    ``style`` — "centralized" (the paper's implementation) or "distributed"
    (its stated future work; see :mod:`repro.runtime.distributed_lb`).
    ``predictor`` — None for the paper's last-phase assumption, or a
    predictor name from :mod:`repro.runtime.prediction` ("last",
    "moving-average", "ewma", "trend") to forecast capabilities from more
    than one previous phase (paper footnote 2).
    """

    check_interval: int = 10
    profitability_margin: float = 1.0
    min_improvement: float = 0.02
    use_mcr: bool = True
    element_nbytes: int = 8
    rebuild_cost_estimate: float = 0.0
    cost_model: RedistributionCostModel = RedistributionCostModel()
    style: str = "centralized"
    predictor: str | None = None

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise LoadBalanceError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.profitability_margin < 0:
            raise LoadBalanceError("profitability_margin must be >= 0")
        if not (0.0 <= self.min_improvement < 1.0):
            raise LoadBalanceError("min_improvement must be in [0, 1)")
        if self.style not in ("centralized", "distributed"):
            raise LoadBalanceError(
                f"style must be 'centralized' or 'distributed', got "
                f"{self.style!r}"
            )
        if self.element_nbytes <= 0:
            raise LoadBalanceError("element_nbytes must be > 0")


@dataclass(frozen=True)
class Decision:
    """The controller's broadcast decision."""

    remap: bool
    new_partition: IntervalPartition | None
    predicted_current: float  # predicted next-phase time under current split
    predicted_balanced: float  # predicted next-phase time after remap
    remap_cost: float  # estimated redistribution + rebuild cost


def controller_check(
    ctx: "RankContext",
    partition: IntervalPartition,
    time_per_item: float,
    remaining_iterations: int,
    config: LoadBalanceConfig,
    *,
    root: int = 0,
) -> Decision:
    """One load-balance check (SPMD collective; all ranks call it).

    Every rank contributes its monitored average compute time per item; the
    controller (rank *root*) predicts the next phase's duration under the
    current and the rebalanced partition, prices the remap, and broadcasts
    a :class:`Decision`.
    """
    if remaining_iterations < 0:
        raise LoadBalanceError("remaining_iterations must be >= 0")
    # "sending the load information as separate messages to the controller"
    if ctx.rank == root:
        times = np.empty(ctx.size, dtype=np.float64)
        times[root] = time_per_item
        for _ in range(ctx.size - 1):
            msg = ctx.recv(tag=Tags.LOAD_REPORT, return_message=True)
            times[msg.source] = msg.payload
        decision = _decide(ctx, partition, times, remaining_iterations, config)
    else:
        ctx.send(root, float(time_per_item), Tags.LOAD_REPORT)
        decision = None
    # "broadcasts the decision to all the processors"
    return ctx.bcast(decision, root=root, tag=Tags.LB_DECISION)


def _decide(
    ctx: "RankContext",
    partition: IntervalPartition,
    times_per_item: np.ndarray,
    remaining_iterations: int,
    config: LoadBalanceConfig,
) -> Decision:
    if np.any(times_per_item <= 0) or not np.all(np.isfinite(times_per_item)):
        raise LoadBalanceError(
            f"invalid load reports: {times_per_item.tolist()}"
        )
    sizes = partition.sizes().astype(np.float64)
    n = partition.num_elements
    # Predicted next-phase (per-iteration) time under the current split:
    # the slowest processor bounds the loosely synchronous iteration.
    predicted_current = float(np.max(sizes * times_per_item))
    # Estimated capabilities for the next phase (items/second), assuming
    # the environment persists ("the computational resources allocated ...
    # are the same as for the previous phase").
    capabilities = 1.0 / times_per_item
    predicted_balanced = float(n / capabilities.sum())

    if config.use_mcr:
        # Charge the controller's O(p^3) MCR search (paper Table 1 measures
        # it at ~2 microseconds x p^3 on the testbed's workstations).
        ctx.compute(2.0e-6 * ctx.size**3, label="mcr")
        arrangement = minimize_cost_redistribution(
            partition.owners,
            sizes / max(sizes.sum(), 1.0),
            capabilities / capabilities.sum(),
            n,
            cost_model=config.cost_model,
        )
    else:
        arrangement = partition.owners
    new_partition = partition_list(
        n, capabilities / capabilities.sum(), arrangement
    )
    remap_cost = (
        estimate_remap_cost(
            ctx._comm.network, partition, new_partition, config.element_nbytes
        )
        + config.rebuild_cost_estimate
    )
    savings = (predicted_current - predicted_balanced) * remaining_iterations
    relative_gain = (
        (predicted_current - predicted_balanced) / predicted_current
        if predicted_current > 0
        else 0.0
    )
    profitable = (
        savings > config.profitability_margin * remap_cost
        and relative_gain >= config.min_improvement
    )
    return Decision(
        remap=bool(profitable),
        new_partition=new_partition if profitable else None,
        predicted_current=predicted_current,
        predicted_balanced=predicted_balanced,
        remap_cost=remap_cost,
    )
