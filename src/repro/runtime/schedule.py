"""Communication-schedule data structures (paper Sec. 3.2, Fig. 4).

A :class:`CommSchedule` is one rank's view of a gather/scatter pattern:

* **send lists** — "a list of arrays that store the local references of
  processor P that must be sent to other processors";
* **permutation list** — "an array that stores the placement order in the
  local buffer of P for the data elements that processor P will receive",
  stored per source as ghost-buffer positions;
* **ghost globals** — the global index behind each ghost-buffer slot (used
  by the kernel indirection and by invariant checks).

The structure is strategy-agnostic: the simple, sort1 and sort2 builders in
:mod:`repro.runtime.schedule_builders` all produce one of these, differing
only in element order and build cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError
from repro.partition.intervals import IntervalPartition

__all__ = ["CommSchedule"]


@dataclass
class CommSchedule:
    """One rank's gather/scatter schedule.

    Invariant (validated): for matched ranks r, s the data r sends to s
    (``send_lists[s]`` on r, as global indices) equals, elementwise and in
    order, the data s expects from r (``recv_lists[r]`` positions into
    ``ghost_globals`` on s).  :meth:`validate_pair` checks it in tests.
    """

    rank: int
    partition: IntervalPartition
    #: dest rank -> local indices (within this rank's block) to send.
    send_lists: dict[int, np.ndarray] = field(default_factory=dict)
    #: source rank -> ghost-buffer positions to place received data at.
    recv_lists: dict[int, np.ndarray] = field(default_factory=dict)
    #: global index behind each ghost slot (len == ghost_size).
    ghost_globals: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp)
    )

    def __post_init__(self) -> None:
        lo, hi = self.partition.interval(self.rank)
        block = hi - lo
        for dest, arr in self.send_lists.items():
            self.send_lists[dest] = np.ascontiguousarray(arr, dtype=np.intp)
            if dest == self.rank:
                raise ScheduleError(f"rank {self.rank}: send list to itself")
        ghost = np.ascontiguousarray(self.ghost_globals, dtype=np.intp)
        object.__setattr__(self, "ghost_globals", ghost)
        for src, pos in self.recv_lists.items():
            self.recv_lists[src] = np.ascontiguousarray(pos, dtype=np.intp)
            if src == self.rank:
                raise ScheduleError(f"rank {self.rank}: recv list from itself")
        # Range/coverage checks run once over the concatenated lists (the
        # constructor sits on the phase-B hot path; per-list reductions
        # cost more than they check).  A failed fast check falls back to
        # the per-list scan purely to name the offending peer.
        if self.send_lists:
            all_send = np.concatenate(list(self.send_lists.values()))
            if all_send.size and (
                all_send.min() < 0 or all_send.max() >= block
            ):
                for dest, arr in self.send_lists.items():
                    if arr.size and (arr.min() < 0 or arr.max() >= block):
                        raise ScheduleError(
                            f"rank {self.rank}: send list for {dest} has "
                            f"local indices outside [0, {block})"
                        )
        # Ascending recv positions covering [0, ghost) exactly once imply
        # in-range, no-duplicate, and fully-filled in a single pass.
        pos_all = (
            np.concatenate(list(self.recv_lists.values()))
            if self.recv_lists
            else np.empty(0, dtype=np.intp)
        )
        covered = pos_all.size == ghost.size and bool(
            np.array_equal(
                np.sort(pos_all), np.arange(ghost.size, dtype=np.intp)
            )
        )
        if not covered:
            seen = np.zeros(ghost.size, dtype=bool)
            for src, pos in self.recv_lists.items():
                if pos.size and (pos.min() < 0 or pos.max() >= ghost.size):
                    raise ScheduleError(
                        f"rank {self.rank}: recv positions for {src} out of "
                        f"ghost buffer [0, {ghost.size})"
                    )
                if np.any(seen[pos]):
                    raise ScheduleError(
                        f"rank {self.rank}: ghost slots assigned to two "
                        f"sources"
                    )
                seen[pos] = True
            if ghost.size and not seen.all():
                raise ScheduleError(
                    f"rank {self.rank}: {int((~seen).sum())} ghost slots "
                    f"never filled"
                )
        # Sorted peer order is consulted twice per executor phase per
        # rank; cache it once at validation time instead of re-sorting in
        # the virtual-time hot loop.  (Builders never mutate the lists
        # after construction; anything that does must build a fresh
        # CommSchedule, which re-validates too.)
        self._send_peers: tuple[int, ...] = tuple(
            sorted(d for d, arr in self.send_lists.items() if arr.size)
        )
        self._recv_peers: tuple[int, ...] = tuple(
            sorted(s for s, pos in self.recv_lists.items() if pos.size)
        )

    # ------------------------------------------------------------------ #

    @property
    def ghost_size(self) -> int:
        return int(self.ghost_globals.size)

    @property
    def num_send_messages(self) -> int:
        return sum(1 for arr in self.send_lists.values() if arr.size)

    @property
    def num_recv_messages(self) -> int:
        return sum(1 for arr in self.recv_lists.values() if arr.size)

    @property
    def send_volume(self) -> int:
        """Total elements this rank sends per gather."""
        return sum(int(arr.size) for arr in self.send_lists.values())

    def send_peers(self) -> list[int]:
        """Destinations with a non-empty send list, ascending.

        The executor issues sends in exactly this order (and applies
        received contributions in ascending source order), so schedule
        *dict insertion order* can never influence results.  Computed at
        construction; returned as a fresh list each call.
        """
        return list(self._send_peers)

    def recv_peers(self) -> list[int]:
        """Sources with a non-empty recv list, ascending (cached)."""
        return list(self._recv_peers)

    def stats(self) -> dict[str, int]:
        """Structural facts of this schedule (deterministic; used by the
        scale benchmarks and pinned by the golden regression test)."""
        return {
            "ghosts": self.ghost_size,
            "send_volume": self.send_volume,
            "send_messages": self.num_send_messages,
            "recv_messages": self.num_recv_messages,
        }

    def send_globals(self, dest: int) -> np.ndarray:
        """Global indices of the elements sent to *dest*, in send order."""
        lo, _ = self.partition.interval(self.rank)
        return self.send_lists.get(dest, np.empty(0, dtype=np.intp)) + lo

    def recv_globals(self, src: int) -> np.ndarray:
        """Global indices expected from *src*, in placement order."""
        pos = self.recv_lists.get(src, np.empty(0, dtype=np.intp))
        return self.ghost_globals[pos]

    def validate_pair(self, other: "CommSchedule") -> None:
        """Assert this rank's sends to *other* match its expectations.

        Raises :class:`ScheduleError` on any mismatch; used by integration
        tests and by the paired property tests.
        """
        mine_to_other = self.send_globals(other.rank)
        other_expects = other.recv_globals(self.rank)
        if not np.array_equal(mine_to_other, other_expects):
            raise ScheduleError(
                f"schedule mismatch {self.rank}->{other.rank}: sender ships "
                f"{mine_to_other[:8]}..., receiver expects {other_expects[:8]}..."
            )
