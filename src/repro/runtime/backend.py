"""Runtime backend selection: ``reference`` loops vs ``vectorized`` numpy.

The paper's runtime was written in per-element C loops; this reproduction
keeps a faithful scalar transcription of those hot paths (the ``reference``
backend, in :mod:`repro.runtime.reference`) next to bulk-numpy rewrites
(the ``vectorized`` backend) of the same operations:

* translation-table lookup / dereference,
* inspector schedule construction (sort1/sort2/no-dedup/simple grouping),
* executor gather/scatter buffer pack/unpack,
* redistribution slab pack/unpack and vertex-identity runs
  (:func:`repro.runtime.adaptive.redistribute_fields`).

Both backends produce **bit-identical** translation tables, schedules, and
gather/scatter results, and charge identical *virtual* time — they differ
only in host wall time (the ``scale-*`` benchmark family records the gap).
The differential suite in ``tests/test_backend_equivalence.py`` locks the
equivalence in.

Selection, in decreasing precedence:

1. an explicit ``backend=`` argument on the public entry points
   (:func:`repro.runtime.inspector.run_inspector`,
   :func:`repro.runtime.executor.gather` / ``scatter``, translation-table
   ``dereference`` methods, :class:`repro.runtime.program.ProgramConfig`);
2. the process-wide default set via :func:`set_backend` /
   :func:`use_backend`;
3. the ``REPRO_BACKEND`` environment variable, read once at import;
4. the built-in default, ``vectorized``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "get_backend",
    "set_backend",
    "resolve_backend",
    "use_backend",
]

#: The recognized backend names.
BACKENDS = ("reference", "vectorized")

#: Used when neither an argument, :func:`set_backend`, nor ``REPRO_BACKEND``
#: says otherwise.
DEFAULT_BACKEND = "vectorized"


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {name!r}; pick from {BACKENDS}"
        )
    return name


_current: str = _validate(
    os.environ.get("REPRO_BACKEND", "").strip() or DEFAULT_BACKEND
)


def get_backend() -> str:
    """The process-wide default backend name."""
    return _current


def set_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _current
    previous = _current
    _current = _validate(name)
    return previous


def resolve_backend(backend: str | None) -> str:
    """Turn an optional per-call override into a concrete backend name."""
    if backend is None:
        return _current
    return _validate(backend)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch the process-wide default backend.

    ``with use_backend("reference"): ...`` — used by the differential tests
    to run whole programs under either backend.
    """
    previous = set_backend(name)
    try:
        yield _current
    finally:
        set_backend(previous)
