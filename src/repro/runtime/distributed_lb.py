"""Deprecated home of the distributed strategy (Sec. 3.5 future work).

The strategy moved into the Phase D subsystem:
:mod:`repro.runtime.adaptive` (``DistributedStrategy`` /
``distributed_check``), which also makes the shared decision function a
public API (``decide``) instead of the private ``controller._decide``
this module used to import.  This shim keeps the old entry point
importable; it warns once per call site.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.runtime.adaptive.strategy import Decision
from repro.runtime.adaptive.strategy import (
    distributed_check as _distributed_check,
)

__all__ = ["distributed_check"]


def distributed_check(*args: Any, **kwargs: Any) -> Decision:
    """Deprecated alias of :func:`repro.runtime.adaptive.distributed_check`."""
    warnings.warn(
        "repro.runtime.distributed_lb.distributed_check moved to "
        "repro.runtime.adaptive; import it from there",
        DeprecationWarning,
        stacklevel=2,
    )
    return _distributed_check(*args, **kwargs)
