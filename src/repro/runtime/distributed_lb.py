"""Distributed load balancing — the paper's stated future work.

Sec. 3.5: "Centralized load-balancing algorithms are suitable for an
environment with a small number of processors. ... When better resource
management tools are available, we hope to have distributed strategies."

This module provides that strategy: every rank announces its load to all
peers (one hardware multicast per rank on Ethernet), then every rank runs
the *same deterministic* decision procedure on the same inputs — no
controller, no decision broadcast, no single point of serialization.  The
decision logic is shared with the centralized controller, so the two
strategies differ only in protocol cost:

* centralized: (p-1) unicast load reports + 1 decision broadcast, decision
  computed once;
* distributed: p load multicasts, decision computed p times (redundantly).

On multicast networks the distributed protocol's message count is O(p)
either way but it removes the controller hot spot; on unicast-only networks
it degrades to O(p^2) messages — exactly the trade-off the ablation
benchmark quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import LoadBalanceError
from repro.net.message import Tags
from repro.partition.intervals import IntervalPartition
from repro.runtime.controller import Decision, LoadBalanceConfig, _decide

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = ["distributed_check"]


def distributed_check(
    ctx: "RankContext",
    partition: IntervalPartition,
    time_per_item: float,
    remaining_iterations: int,
    config: LoadBalanceConfig,
) -> Decision:
    """One decentralized load-balance check (SPMD collective).

    Every rank multicasts its average compute time per item and collects the
    p-1 peer reports, then evaluates the shared decision function locally.
    Determinism of the decision procedure guarantees all ranks reach the
    identical conclusion without exchanging it.
    """
    if remaining_iterations < 0:
        raise LoadBalanceError("remaining_iterations must be >= 0")
    peers = [r for r in range(ctx.size) if r != ctx.rank]
    if peers:
        ctx.multicast(peers, float(time_per_item), Tags.LOAD_REPORT)
    times = np.empty(ctx.size, dtype=np.float64)
    times[ctx.rank] = time_per_item
    for _ in peers:
        msg = ctx.recv(tag=Tags.LOAD_REPORT, return_message=True)
        times[msg.source] = msg.payload
    # Every rank redundantly runs the same deterministic decision.
    return _decide(ctx, partition, times, remaining_iterations, config)
