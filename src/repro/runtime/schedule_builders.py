"""The three communication-schedule construction strategies (Sec. 3.2).

All three produce a valid :class:`~repro.runtime.schedule.CommSchedule`
for the same access pattern; they differ in *how* the schedule is derived
and what that costs (paper Table 3):

* :func:`build_schedule_simple` — the PARTI-style baseline: a distributed
  explicit translation table is consulted (communication round 1) and the
  deduplicated request lists are shipped to the data's home processors
  (communication round 2).  Ghost slots are in request (hash-table) order.
* :func:`build_schedule_sort1` — exploits access *symmetry* (Sec. 3.2,
  Fig. 4): each rank derives both its send lists and its permutation list
  locally, sorting both so sender and receiver agree on element order.
  Zero messages.
* :func:`build_schedule_sort2` — like sort1, but the send list is produced
  already ordered by traversing local references in increasing order, so
  only the permutation-list sort remains ("sorting the sending list can be
  avoided if a restriction is added that the nodes are traversed in
  increasing order according to their local references").

Build *cost* is charged to the virtual clock through an
:class:`InspectorCostModel` (hashing, sorting, traversal constants
calibrated to mid-90s workstations) plus, for the simple strategy, the real
message traffic through the network model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.net.message import Tags
from repro.partition.intervals import IntervalPartition
from repro.runtime import reference as ref
from repro.runtime.backend import resolve_backend
from repro.runtime.schedule import CommSchedule
from repro.runtime.translation import DistributedTranslationTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "InspectorCostModel",
    "local_references",
    "build_schedule_sort1",
    "build_schedule_sort2",
    "build_schedule_simple",
    "build_schedule_no_dedup",
]


@dataclass(frozen=True)
class InspectorCostModel:
    """Virtual-time constants for schedule construction.

    Defaults approximate a mid-90s workstation running unoptimized C
    (the paper notes its sorting-based schemes "can be reduced by improving
    our current software"): a few microseconds per hash-table insert, ~10
    microseconds per comparison-swap including call overhead.
    """

    sec_per_ref: float = 5.0e-6       # hash/dedup, per adjacency reference
    sec_per_sort_op: float = 10.0e-6  # per element*log2(element) sorted
    sec_per_linear_op: float = 1.5e-6 # per element of a linear pass
    sec_per_translate: float = 2.0e-6 # per interval-table dereference
    #: Software setup cost per message of the simple strategy's query/reply
    #: protocol (P4's per-message setup, "the number of message setups
    #: increases, adversely affecting the simple strategy" — Sec. 5).
    sec_per_message_setup: float = 4.0e-3

    def sort_cost(self, k: int) -> float:
        return self.sec_per_sort_op * k * max(math.log2(k), 1.0) if k else 0.0


def _charge(ctx: "RankContext | None", seconds: float, label: str) -> None:
    if ctx is not None and seconds > 0:
        ctx.compute(seconds, label=label)


def _group_by_value(values: np.ndarray) -> dict[int, np.ndarray]:
    """Positions per distinct value via one stable argsort (O(g log g)).

    Within each group the positions come out ascending (stable sort), so
    order-within-group matches a per-value ``flatnonzero`` scan — and the
    scalar :func:`repro.runtime.reference.group_by_owner_loop`.
    """
    values = np.asarray(values)
    if values.size == 0:
        return {}
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    change = np.flatnonzero(np.diff(sorted_vals)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [sorted_vals.size]])
    return {
        int(sorted_vals[s]): order[s:e].astype(np.intp)
        for s, e in zip(starts, ends)
    }


def local_references(
    graph: CSRGraph, partition: IntervalPartition, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """(owned vertex per reference, referenced global index) for *rank*.

    The references are the neighbor endpoints touched by the Fig. 8 loop
    over this rank's owned vertices — the raw input of the inspector.
    """
    lo, hi = partition.interval(rank)
    start, stop = graph.indptr[lo], graph.indptr[hi]
    nbr = graph.indices[start:stop]
    counts = np.diff(graph.indptr[lo : hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=np.intp), counts)
    return src, nbr


def _recv_side_sorted(
    partition: IntervalPartition,
    rank: int,
    off_globals_sorted: np.ndarray,
) -> tuple[dict[int, np.ndarray], np.ndarray]:
    """Recv lists for a ghost buffer laid out in ascending global order.

    Because each rank's interval is contiguous, ascending global order
    groups ghosts by source block; each source's segment is automatically
    "sorted according to the local references of these nodes in their home
    processor" — the sort1 permutation-list requirement.
    """
    owners = (
        partition.owner_of(off_globals_sorted)
        if off_globals_sorted.size
        else np.empty(0, dtype=np.intp)
    )
    recv_lists: dict[int, np.ndarray] = {}
    if owners.size:
        change = np.flatnonzero(owners[1:] != owners[:-1]) + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [owners.size]])
        for s, e in zip(starts, ends):
            src = int(owners[s])
            if src == rank:
                raise ScheduleError(
                    f"rank {rank}: off-processor reference resolved to itself"
                )
            recv_lists[src] = np.arange(s, e, dtype=np.intp)
    return recv_lists, off_globals_sorted


def _send_side(
    graph: CSRGraph,
    partition: IntervalPartition,
    rank: int,
) -> dict[int, np.ndarray]:
    """Send lists (sorted local indices per destination), derived locally.

    By symmetry, destination d references exactly my vertices that have an
    edge to a vertex owned by d.
    """
    lo, hi = partition.interval(rank)
    src, nbr = local_references(graph, partition, rank)
    off_mask = (nbr < lo) | (nbr >= hi)
    if not np.any(off_mask):
        return {}
    src_off = src[off_mask]
    dest = partition.owner_of(nbr[off_mask])
    n = partition.num_elements
    pair_key = dest * np.intp(n) + src_off
    uniq = np.unique(pair_key)  # sorted -> grouped by dest, ascending global
    u_dest = uniq // n
    u_src = uniq % n
    send_lists: dict[int, np.ndarray] = {}
    change = np.flatnonzero(np.diff(u_dest)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [uniq.size]])
    for s, e in zip(starts, ends):
        d = int(u_dest[s])
        send_lists[d] = (u_src[s:e] - lo).astype(np.intp)
    return send_lists


def _sorted_schedule(
    graph: CSRGraph, partition: IntervalPartition, rank: int,
    backend: str | None = None,
) -> tuple[CommSchedule, dict[str, int]]:
    """The (identical) schedule produced by sort1 and sort2, plus sizes."""
    if resolve_backend(backend) == "reference":
        send_lists, recv_lists, ghost_globals, sizes = (
            ref.sorted_schedule_parts_loop(graph, partition, rank)
        )
    else:
        lo, hi = partition.interval(rank)
        src, nbr = local_references(graph, partition, rank)
        off_mask = (nbr < lo) | (nbr >= hi)
        off = nbr[off_mask]
        ghost_globals = np.unique(off)  # dedup ("hash table") + ascending order
        recv_lists, ghost_globals = _recv_side_sorted(
            partition, rank, ghost_globals
        )
        send_lists = _send_side(graph, partition, rank)
        sizes = {
            "refs": int(nbr.size),
            "ghosts": int(ghost_globals.size),
            "sends": int(sum(a.size for a in send_lists.values())),
        }
    sched = CommSchedule(
        rank=rank,
        partition=partition,
        send_lists=send_lists,
        recv_lists=recv_lists,
        ghost_globals=ghost_globals,
    )
    return sched, sizes


def build_schedule_sort1(
    graph: CSRGraph,
    partition: IntervalPartition,
    rank: int,
    *,
    ctx: "RankContext | None" = None,
    cost_model: InspectorCostModel = InspectorCostModel(),
    backend: str | None = None,
) -> CommSchedule:
    """Schedule via symmetry + sorting both lists (schedule_sort1).

    No communication.  Charges: dedup over all references, translation of
    the unique ghosts, an explicit sort of the permutation list *and* of
    the send lists.
    """
    sched, sizes = _sorted_schedule(graph, partition, rank, backend)
    cm = cost_model
    cost = (
        cm.sec_per_ref * sizes["refs"]
        + cm.sec_per_translate * sizes["ghosts"]
        + cm.sort_cost(sizes["ghosts"])
        + cm.sort_cost(sizes["sends"])
    )
    _charge(ctx, cost, "inspector-sort1")
    return sched


def build_schedule_sort2(
    graph: CSRGraph,
    partition: IntervalPartition,
    rank: int,
    *,
    ctx: "RankContext | None" = None,
    cost_model: InspectorCostModel = InspectorCostModel(),
    backend: str | None = None,
) -> CommSchedule:
    """Schedule via symmetry with the traversal-order restriction
    (schedule_sort2): identical schedule to sort1, but the send lists come
    out sorted for free, so only the permutation-list sort is charged.
    """
    sched, sizes = _sorted_schedule(graph, partition, rank, backend)
    cm = cost_model
    cost = (
        cm.sec_per_ref * sizes["refs"]
        + cm.sec_per_translate * sizes["ghosts"]
        + cm.sort_cost(sizes["ghosts"])
        + cm.sec_per_linear_op * sizes["sends"]
    )
    _charge(ctx, cost, "inspector-sort2")
    return sched


def build_schedule_no_dedup(
    graph: CSRGraph,
    partition: IntervalPartition,
    rank: int,
    *,
    ctx: "RankContext | None" = None,
    cost_model: InspectorCostModel = InspectorCostModel(),
    backend: str | None = None,
) -> CommSchedule:
    """A schedule *without* duplicate-access removal — the naive baseline.

    Sec. 2 lists "the removal of duplicate accesses" among the
    communication optimizations; this builder omits it so the benefit can
    be measured: every off-processor *reference* gets its own ghost slot,
    so a boundary vertex referenced by k of my vertices is shipped k times
    per gather.  Symmetry still lets both sides derive the multiset order
    locally (one entry per cross edge, sorted by the referenced global id),
    so the schedule is correct, just fatter.
    """
    if resolve_backend(backend) == "reference":
        send_lists, off = ref.no_dedup_parts_loop(graph, partition, rank)
        recv_lists = ref.recv_side_sorted_loop(partition, rank, off)
        ghost_globals = off
    else:
        lo, hi = partition.interval(rank)
        src, nbr = local_references(graph, partition, rank)
        off_mask = (nbr < lo) | (nbr >= hi)
        off = np.sort(nbr[off_mask])  # duplicates retained
        recv_lists, ghost_globals = _recv_side_sorted(partition, rank, off)

        # Send side with multiplicity: one entry per cross edge (dest block,
        # my vertex), ordered by (dest, my global id) to match the receiver's
        # per-segment ascending order.
        src_off = src[off_mask]
        dest = (
            partition.owner_of(nbr[off_mask])
            if off_mask.any()
            else np.empty(0, np.intp)
        )
        send_lists = {}
        if src_off.size:
            order = np.lexsort((src_off, dest))
            d_sorted = dest[order]
            s_sorted = src_off[order]
            change = np.flatnonzero(np.diff(d_sorted)) + 1
            starts = np.concatenate([[0], change])
            ends = np.concatenate([change, [d_sorted.size]])
            for s, e in zip(starts, ends):
                send_lists[int(d_sorted[s])] = (s_sorted[s:e] - lo).astype(
                    np.intp
                )
    cost = cost_model.sec_per_translate * off.size + cost_model.sort_cost(off.size)
    _charge(ctx, cost, "inspector-no-dedup")
    return CommSchedule(
        rank=rank,
        partition=partition,
        send_lists=send_lists,
        recv_lists=recv_lists,
        ghost_globals=ghost_globals,
    )


def build_schedule_simple(
    graph: CSRGraph,
    partition: IntervalPartition,
    *,
    ctx: "RankContext",
    cost_model: InspectorCostModel = InspectorCostModel(),
    table: DistributedTranslationTable | None = None,
    backend: str | None = None,
) -> CommSchedule:
    """Schedule via an explicit distributed translation table (the
    "Simple Strategy" of Table 3).  SPMD collective: all ranks call it.

    Round 1: dereference the deduplicated off-processor references through
    the distributed table (query/reply to table-home ranks).
    Round 2: ship each home processor the list of its elements we need, so
    it can build its send list (in request order — no sorting anywhere).
    """
    backend = resolve_backend(backend)
    rank = ctx.rank
    lo, hi = partition.interval(rank)
    src, nbr = local_references(graph, partition, rank)
    off_mask = (nbr < lo) | (nbr >= hi)
    off = nbr[off_mask]
    # Dedup preserving first-appearance order (the hash-table order of the
    # paper's Fig. 4 "before sorting" lists).
    if backend == "reference":
        ghost_globals = ref.dedup_first_seen_loop(off)
    else:
        ghost_globals, first_pos = np.unique(off, return_index=True)
        order = np.argsort(first_pos, kind="stable")
        ghost_globals = ghost_globals[order]
    _charge(ctx, cost_model.sec_per_ref * nbr.size, "inspector-simple-dedup")

    if table is None:
        table = DistributedTranslationTable(partition, rank)
    # Per-message software setup for the query/reply protocol (rounds 1+2
    # below plus the two count-allgathers): this is the term that grows with
    # the processor count and eventually sinks the simple strategy.
    from repro.runtime.translation import table_home

    n_homes = int(
        np.unique(table_home(ghost_globals, partition.num_elements, ctx.size)).size
        if ghost_globals.size
        else 0
    )
    n_owners = int(np.unique(partition.owner_of(ghost_globals)).size
                   if ghost_globals.size else 0)
    setups = 2 * n_homes + n_owners + 4  # queries+replies, requests, allgathers
    _charge(ctx, cost_model.sec_per_message_setup * setups,
            "inspector-simple-setup")
    owners, locals_ = table.dereference_collective(
        ctx, ghost_globals, backend=backend
    )

    # Group ghost slots by owner, preserving request order within groups.
    recv_lists: dict[int, np.ndarray] = {}
    request_out: dict[int, np.ndarray] = {}
    if backend == "reference":
        groups = ref.group_by_owner_loop(owners)
    else:
        groups = _group_by_value(owners)
    for o in sorted(groups):
        pos = groups[o]
        if o == rank:
            raise ScheduleError(
                f"rank {rank}: off-processor reference resolved to itself"
            )
        recv_lists[o] = pos.astype(np.intp)
        request_out[o] = locals_[pos].astype(np.intp)
    _charge(
        ctx,
        cost_model.sec_per_linear_op * ghost_globals.size,
        "inspector-simple-group",
    )

    # Round 2: every home processor learns which of its elements to send.
    counts = np.zeros(ctx.size, dtype=np.intp)
    for d, arr in request_out.items():
        counts[d] = arr.size
    all_counts = ctx.allgather(counts)
    expect_from = [
        s for s in range(ctx.size) if s != rank and all_counts[s][rank] > 0
    ]
    incoming = ctx.alltoallv(request_out, expect_from, tag=Tags.SCHEDULE_REQUEST)
    send_lists = {
        int(s): np.ascontiguousarray(arr, dtype=np.intp)
        for s, arr in incoming.items()
        if s != rank
    }
    _charge(
        ctx,
        cost_model.sec_per_linear_op
        * sum(a.size for a in send_lists.values()),
        "inspector-simple-store",
    )
    return CommSchedule(
        rank=rank,
        partition=partition,
        send_lists=send_lists,
        recv_lists=recv_lists,
        ghost_globals=ghost_globals,
    )
