"""Translation tables: global index -> (home processor, local index).

Three mechanisms, mirroring Sec. 3.2's discussion:

* :class:`IntervalTranslationTable` — the paper's contribution: with a 1-D
  contiguous partition, the replicated list of per-processor (first, last)
  bounds is a complete translation table in O(p) memory with O(log p)
  communication-free dereference (Fig. 3).
* :class:`ReplicatedTranslationTable` — the classic PARTI scheme with the
  full (processor, local) entry per element replicated everywhere: fast but
  O(n) memory per processor ("not feasible for applications with large data
  sets").
* :class:`DistributedTranslationTable` — the entries block-distributed over
  processors: O(n/p) memory but dereference *requires communication*; this
  is what makes the "Simple Strategy" schedule build slow in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TranslationError
from repro.net.message import Tags
from repro.partition.intervals import IntervalPartition
from repro.runtime.backend import resolve_backend

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.comm import RankContext

__all__ = [
    "IntervalTranslationTable",
    "ReplicatedTranslationTable",
    "DistributedTranslationTable",
    "table_home",
]


@dataclass(frozen=True)
class IntervalTranslationTable:
    """The replicated interval list (paper Fig. 3).

    Memory is proportional to the number of processors; every rank holds a
    copy and dereferences locally.
    """

    partition: IntervalPartition

    @property
    def memory_entries(self) -> int:
        """Table entries stored per processor (2 bounds per processor)."""
        return 2 * self.partition.num_processors

    def dereference(
        self, global_indices: np.ndarray, *, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(processor, local index) for each global index — no communication.

        "The local address of a particular element is computed by
        subtracting it from the first element that belongs to its home
        processor."  The ``vectorized`` backend is one bulk binary search;
        ``reference`` walks the query per element (bit-identical results).
        """
        gi = np.asarray(global_indices, dtype=np.intp)
        if resolve_backend(backend) == "reference":
            from repro.runtime.reference import dereference_loop

            return dereference_loop(self.partition, gi)
        return self.partition.dereference(gi)

    def owner_of(
        self, global_indices: np.ndarray, *, backend: str | None = None
    ) -> np.ndarray:
        owner, _ = self.dereference(global_indices, backend=backend)
        return owner


@dataclass(frozen=True)
class ReplicatedTranslationTable:
    """Explicit per-element table, replicated on every processor.

    Built once from a partition; serves as the memory-hungry baseline
    (``memory_entries`` is n per processor, vs 2p for the interval table).
    """

    owner: np.ndarray
    local: np.ndarray

    @staticmethod
    def from_partition(partition: IntervalPartition) -> "ReplicatedTranslationTable":
        gi = np.arange(partition.num_elements, dtype=np.intp)
        owner, local = partition.dereference(gi)
        return ReplicatedTranslationTable(owner=owner.copy(), local=local.copy())

    def __post_init__(self) -> None:
        if self.owner.shape != self.local.shape or self.owner.ndim != 1:
            raise TranslationError("owner/local arrays must be equal-length 1-D")

    @property
    def memory_entries(self) -> int:
        return 2 * self.owner.size

    def dereference(
        self, global_indices: np.ndarray, *, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        gi = np.asarray(global_indices, dtype=np.intp)
        if gi.size and (gi.min() < 0 or gi.max() >= self.owner.size):
            raise TranslationError("global index out of range")
        if resolve_backend(backend) == "reference":
            owner = np.empty(gi.size, dtype=np.intp)
            local = np.empty(gi.size, dtype=np.intp)
            for k, g in enumerate(gi.tolist()):
                owner[k] = self.owner[g]
                local[k] = self.local[g]
            return owner, local
        return self.owner[gi], self.local[gi]


def table_home(global_indices: np.ndarray, n: int, p: int) -> np.ndarray:
    """Which rank stores the table entry for each index (block distribution).

    Entry *g* lives on rank ``g // ceil(n/p)`` — every rank can compute this
    closed form, so *finding* the table entry needs no communication, only
    *reading* it does.
    """
    if n <= 0 or p <= 0:
        raise TranslationError(f"need n > 0 and p > 0, got n={n} p={p}")
    block = -(-n // p)  # ceil division
    gi = np.asarray(global_indices, dtype=np.intp)
    return np.minimum(gi // block, p - 1)


class DistributedTranslationTable:
    """Per-element table block-distributed across the processors.

    Each rank stores the (owner, local) entries for its block of the table
    index space.  :meth:`dereference_collective` is an SPMD collective: all
    ranks must call it together, exchanging query/reply messages — the
    communication the paper's interval table eliminates.
    """

    def __init__(self, partition: IntervalPartition, rank: int):
        self.partition = partition
        self.rank = rank
        n = partition.num_elements
        p = partition.num_processors
        block = -(-n // p) if p else 0
        lo = min(rank * block, n)
        hi = min(lo + block, n)
        gi = np.arange(lo, hi, dtype=np.intp)
        owner, local = partition.dereference(gi)
        self._lo = lo
        self._owner = owner.copy()
        self._local = local.copy()

    @property
    def memory_entries(self) -> int:
        return 2 * self._owner.size

    def lookup_local(
        self, global_indices: np.ndarray, *, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Look up entries stored on *this* rank."""
        gi = np.asarray(global_indices, dtype=np.intp)
        off = gi - self._lo
        if off.size and (off.min() < 0 or off.max() >= self._owner.size):
            raise TranslationError(
                f"rank {self.rank} asked for table entries it does not store"
            )
        if resolve_backend(backend) == "reference":
            owner = np.empty(off.size, dtype=np.intp)
            local = np.empty(off.size, dtype=np.intp)
            for k, o in enumerate(off.tolist()):
                owner[k] = self._owner[o]
                local[k] = self._local[o]
            return owner, local
        return self._owner[off], self._local[off]

    def dereference_collective(
        self,
        ctx: "RankContext",
        global_indices: np.ndarray,
        *,
        backend: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """SPMD collective dereference through query/reply messages.

        Every rank passes its own query array (possibly empty).  Returns
        (owner, local) aligned with the query order.  Communication
        pattern: queries are exchanged with the table-home ranks discovered
        from the closed-form distribution; the pattern is made globally
        known with one allgather of per-destination counts.
        """
        backend = resolve_backend(backend)
        gi = np.asarray(global_indices, dtype=np.intp)
        n = self.partition.num_elements
        p = ctx.size
        homes = table_home(gi, n, p) if gi.size else np.empty(0, dtype=np.intp)
        order = np.argsort(homes, kind="stable")
        sorted_gi = gi[order]
        sorted_homes = homes[order]
        # Split queries per home rank.
        counts = np.bincount(sorted_homes, minlength=p)
        # Everyone learns who queries whom (the unavoidable extra round).
        all_counts = ctx.allgather(counts)
        queries_out: dict[int, np.ndarray] = {}
        offsets = np.concatenate([[0], np.cumsum(counts)])
        for dest in range(p):
            if counts[dest] and dest != ctx.rank:
                queries_out[dest] = sorted_gi[offsets[dest] : offsets[dest + 1]]
        expect_queries = [
            src for src in range(p) if src != ctx.rank and all_counts[src][ctx.rank] > 0
        ]
        incoming = ctx.alltoallv(queries_out, expect_queries, tag=Tags.SCHEDULE_REQUEST)

        # Answer queries from the locally stored block.
        replies_out: dict[int, np.ndarray] = {}
        for src, q in incoming.items():
            if src == ctx.rank:
                continue
            owner, local = self.lookup_local(q, backend=backend)
            ctx.compute_items(q.size, 2.0e-6, label="table-lookup")
            replies_out[src] = np.stack([owner, local], axis=0)
        expect_replies = [d for d in queries_out]
        replies = ctx.alltoallv(replies_out, expect_replies, tag=Tags.SCHEDULE_REPLY)

        # Assemble results back in query order.
        owner_sorted = np.empty(gi.size, dtype=np.intp)
        local_sorted = np.empty(gi.size, dtype=np.intp)
        for home in range(p):
            seg = slice(offsets[home], offsets[home + 1])
            if offsets[home + 1] == offsets[home]:
                continue
            if home == ctx.rank:
                own, loc = self.lookup_local(sorted_gi[seg], backend=backend)
                ctx.compute_items(offsets[home + 1] - offsets[home], 2.0e-6,
                                  label="table-lookup")
            else:
                own, loc = replies[home][0], replies[home][1]
            owner_sorted[seg] = own
            local_sorted[seg] = loc
        owner = np.empty(gi.size, dtype=np.intp)
        local = np.empty(gi.size, dtype=np.intp)
        if backend == "reference":
            # Scalar inverse permutation back to query order.
            for k, dst in enumerate(order.tolist()):
                owner[dst] = owner_sorted[k]
                local[dst] = local_sorted[k]
        else:
            owner[order] = owner_sorted
            local[order] = local_sorted
        return owner, local
