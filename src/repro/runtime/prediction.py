"""Capability prediction from multiple past phases.

The paper's footnote 2: the profitability analysis "could be extended to
techniques that would predict the available computational resources based
on more than one previous phase".  This module provides that extension:
per-processor predictors fed one capability observation per load-balance
check, whose forecast the controller can use instead of the last
observation.

Predictors are deliberately simple time-series models — the controller runs
them every few iterations on p numbers, so anything heavier would dwarf the
check cost the paper works to keep small.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Protocol

import numpy as np

from repro.errors import LoadBalanceError

__all__ = [
    "CapabilityPredictor",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "ExponentialSmoothingPredictor",
    "LinearTrendPredictor",
    "make_predictor",
]


class CapabilityPredictor(Protocol):
    """One processor's capability forecaster."""

    def observe(self, capability: float) -> None:
        """Record the capability (items/second) measured in the last phase."""
        ...

    def predict(self) -> float:
        """Forecast the capability of the next phase."""
        ...


class _BasePredictor:
    def _check(self, capability: float) -> float:
        if not np.isfinite(capability) or capability <= 0:
            raise LoadBalanceError(
                f"capability observations must be positive, got {capability}"
            )
        return float(capability)


@dataclass
class LastValuePredictor(_BasePredictor):
    """The paper's implicit model: next phase == last phase."""

    _last: float | None = None

    def observe(self, capability: float) -> None:
        self._last = self._check(capability)

    def predict(self) -> float:
        if self._last is None:
            raise LoadBalanceError("no observations yet")
        return self._last


@dataclass
class MovingAveragePredictor(_BasePredictor):
    """Mean of the last *window* phases: smooths bursty competing load."""

    window: int = 4
    _history: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise LoadBalanceError(f"window must be >= 1, got {self.window}")

    def observe(self, capability: float) -> None:
        self._history.append(self._check(capability))
        while len(self._history) > self.window:
            self._history.popleft()

    def predict(self) -> float:
        if not self._history:
            raise LoadBalanceError("no observations yet")
        return float(np.mean(self._history))


@dataclass
class ExponentialSmoothingPredictor(_BasePredictor):
    """EWMA with factor *alpha* (1.0 degenerates to last-value)."""

    alpha: float = 0.5
    _state: float | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise LoadBalanceError(f"alpha must be in (0, 1], got {self.alpha}")

    def observe(self, capability: float) -> None:
        c = self._check(capability)
        self._state = c if self._state is None else (
            self.alpha * c + (1.0 - self.alpha) * self._state
        )

    def predict(self) -> float:
        if self._state is None:
            raise LoadBalanceError("no observations yet")
        return self._state


@dataclass
class LinearTrendPredictor(_BasePredictor):
    """Least-squares line over the last *window* phases, extrapolated one
    step — anticipates ramping competing load (someone's build job warming
    up) instead of lagging it.

    Forecasts are clamped to stay within [min_factor, max_factor] of the
    last observation so a noisy fit cannot produce absurd extrapolations.
    """

    window: int = 4
    min_factor: float = 0.25
    max_factor: float = 4.0
    _history: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.window < 2:
            raise LoadBalanceError(f"window must be >= 2, got {self.window}")
        if not (0 < self.min_factor <= 1.0 <= self.max_factor):
            raise LoadBalanceError("need min_factor <= 1 <= max_factor")

    def observe(self, capability: float) -> None:
        self._history.append(self._check(capability))
        while len(self._history) > self.window:
            self._history.popleft()

    def predict(self) -> float:
        if not self._history:
            raise LoadBalanceError("no observations yet")
        h = np.asarray(self._history)
        if h.size == 1:
            return float(h[0])
        x = np.arange(h.size, dtype=np.float64)
        slope, intercept = np.polyfit(x, h, 1)
        forecast = intercept + slope * h.size
        last = float(h[-1])
        return float(
            np.clip(forecast, last * self.min_factor, last * self.max_factor)
        )


def make_predictor(kind: str, **kwargs: object) -> CapabilityPredictor:
    """Factory by name: 'last', 'moving-average', 'ewma', 'trend'."""
    factories = {
        "last": LastValuePredictor,
        "moving-average": MovingAveragePredictor,
        "ewma": ExponentialSmoothingPredictor,
        "trend": LinearTrendPredictor,
    }
    if kind not in factories:
        raise LoadBalanceError(
            f"unknown predictor {kind!r}; pick from {sorted(factories)}"
        )
    return factories[kind](**kwargs)  # type: ignore[arg-type]
