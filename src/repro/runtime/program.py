"""High-level driver: the four-phase runtime of the paper's Fig. 1.

:func:`run_program` executes an iterative irregular computation (the Fig. 8
kernel) over a simulated cluster, wiring together:

* **Phase A** — a 1-D ordering of the graph + proportional interval split;
* **Phase B** — the inspector (translation + communication schedule);
* **Phase C** — the executor loop (gather, kernel sweep, barrier);
* **Phase D** — optional adaptive load balancing, delegated to
  :class:`repro.runtime.adaptive.AdaptiveSession` (monitor, strategy
  check every ``check_interval`` iterations, MCR repartition, packed
  redistribution, inspector rebuild).

The report carries final values (in original vertex numbering), virtual
phase times, and load-balancing statistics — everything Tables 4 and 5 are
made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import ConfigurationError, LoadBalanceError, ResilienceError
from repro.graph.csr import CSRGraph
from repro.net.cluster import ClusterSpec
from repro.net.loadmodel import MembershipTrace
from repro.net.spmd import SPMDResult, run_spmd
from repro.net.trace import TraceLog
from repro.partition.intervals import IntervalPartition, partition_list
from repro.partition.ordering import OrderingMethod
from repro.partition.rcb import RCBOrdering
from repro.runtime.adaptive import AdaptiveSession, LoadBalanceConfig
from repro.runtime.executor import ExecutorCostModel, ExecutorScratch, gather
from repro.runtime.kernels import KernelCostModel
from repro.runtime.schedule_builders import InspectorCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.resilience import CheckpointPolicy

__all__ = ["ProgramConfig", "RankStats", "ProgramReport", "run_program"]


@dataclass(frozen=True)
class ProgramConfig:
    """Configuration of one program run."""

    iterations: int = 100
    strategy: str = "sort2"
    #: Phase B rebuild mode after a remap: "full" re-runs the inspector
    #: from scratch (the paper's protocol), "incremental" patches the
    #: previous schedule/plan through the boundary diff
    #: (:mod:`repro.runtime.incremental`) — bit-identical results, a
    #: fraction of the rebuild cost.  Requires a sorting strategy.
    inspector_mode: str = "full"
    #: Hot-path implementation: "reference" | "vectorized" | None (= the
    #: process default from :mod:`repro.runtime.backend`).  Both backends
    #: produce bit-identical results and virtual times.
    backend: str | None = None
    ordering: OrderingMethod | None = None  # None -> RCB (or identity if no coords)
    #: "speeds" (split by known base speeds), "equal" (the paper's adaptive
    #: experiment: "the graph was decomposed assuming all the processors had
    #: equal computational ratio"), or an explicit capability vector.
    initial_capabilities: str | Sequence[float] = "speeds"
    #: Phase D strategy: a :class:`LoadBalanceConfig`, a strategy name
    #: ("off" | "centralized" | "distributed", default knobs), or None
    #: (same as "off").  Normalized to LoadBalanceConfig | None on init.
    load_balance: LoadBalanceConfig | str | None = None
    #: Elastic membership: a :class:`~repro.net.loadmodel.MembershipTrace`,
    #: a DSL string ("leave:0@9.5, join:2@20"), or None.  A trace given
    #: here overrides the cluster's own ``ClusterSpec.membership``; the DSL
    #: string is resolved against the cluster size at run time.  Membership
    #: runs require ``barrier_each_iteration`` (events are applied at
    #: synchronized iteration boundaries).
    membership: MembershipTrace | str | None = None
    #: Checkpoint policy (:mod:`repro.runtime.resilience`): a
    #: :class:`~repro.runtime.resilience.CheckpointPolicy`, a DSL string
    #: ("interval:4" = every 4 iterations, "cost:50" = Young's interval
    #: for an MTBF estimate of 50 virtual seconds), or None.  Required
    #: when the membership trace contains unannounced ``fail`` events;
    #: allowed without one (the overhead-only baseline the
    #: ``scale-resilience`` experiments measure).
    checkpoint: "CheckpointPolicy | str | None" = None
    #: Replication factor override: when set, the (normalized) checkpoint
    #: policy is re-issued with this many ring successors per data-holding
    #: rank — the ``--replication`` CLI knob.  ``None`` keeps whatever the
    #: policy (or its ``:rF`` DSL suffix) already says.  Setting it
    #: without a checkpoint policy is a configuration error.
    replication_factor: int | None = None
    kernel_cost: KernelCostModel = KernelCostModel()
    inspector_cost: InspectorCostModel = InspectorCostModel()
    executor_cost: ExecutorCostModel = ExecutorCostModel()
    trace: bool = False
    #: Ring-buffer cap on the trace event log (``None`` = unbounded).
    #: With a cap, the newest events win and
    #: :attr:`~repro.net.trace.TraceLog.dropped_events` counts evictions —
    #: tracing a scale-huge run cannot OOM (the ``--trace-capacity`` knob).
    trace_capacity: int | None = None
    barrier_each_iteration: bool = True
    #: Execution world: "sim" (threads + virtual clocks, the default) or
    #: "real" (one OS process per rank over loopback sockets, wall-clock
    #: time).  Final field values are bit-identical between the two; time
    #: and cost metrics are virtual vs measured.  See docs/architecture.md
    #: "Execution worlds".
    world: str = "sim"
    #: Host timeout for blocking receives in seconds; ``None`` resolves
    #: through ``REPRO_RECV_TIMEOUT`` and then the library default (the
    #: ``--recv-timeout`` CLI knob).
    recv_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        from repro.net.spmd import WORLDS

        if self.world not in WORLDS:
            raise ConfigurationError(
                f"unknown execution world {self.world!r}; pick from {WORLDS}"
            )
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ConfigurationError(
                f"trace_capacity must be >= 1 (or None for unbounded), got "
                f"{self.trace_capacity}"
            )
        if self.inspector_mode not in ("full", "incremental"):
            raise ConfigurationError(
                f"inspector_mode must be 'full' or 'incremental', got "
                f"{self.inspector_mode!r}"
            )
        if self.inspector_mode == "incremental" and self.strategy == "simple":
            raise ConfigurationError(
                "inspector_mode='incremental' requires a sorting strategy "
                "(sort1/sort2): the simple strategy's request-ordered "
                "ghost buffers cannot be patched"
            )
        if self.recv_timeout is not None and self.recv_timeout <= 0:
            raise ConfigurationError(
                f"recv_timeout must be > 0 seconds, got {self.recv_timeout}"
            )
        if isinstance(self.load_balance, str):
            from repro.runtime.adaptive import STRATEGY_NAMES

            if self.load_balance not in STRATEGY_NAMES:
                raise ConfigurationError(
                    f"load_balance must be one of {STRATEGY_NAMES}, a "
                    f"LoadBalanceConfig, or None; got {self.load_balance!r}"
                )
            object.__setattr__(
                self,
                "load_balance",
                None
                if self.load_balance == "off"
                else LoadBalanceConfig(style=self.load_balance),
            )
        if self.backend is not None:
            from repro.runtime.backend import resolve_backend

            resolve_backend(self.backend)  # raises on unknown names
        if self.checkpoint is not None:
            from repro.runtime.resilience import resolve_checkpoint_policy

            # Normalize eagerly so a malformed --checkpoint DSL fails at
            # configuration time, not inside the rank threads.
            object.__setattr__(
                self, "checkpoint", resolve_checkpoint_policy(self.checkpoint)
            )
        if self.replication_factor is not None:
            if self.checkpoint is None:
                raise ConfigurationError(
                    "replication_factor requires a checkpoint policy: "
                    "replicas are shipped when an epoch is taken — set "
                    "ProgramConfig.checkpoint (e.g. \"interval:4\") too"
                )
            if self.replication_factor < 1:
                raise ConfigurationError(
                    f"replication_factor must be >= 1 ring successor, got "
                    f"{self.replication_factor}"
                )
            import dataclasses as _dc

            object.__setattr__(
                self,
                "checkpoint",
                _dc.replace(
                    self.checkpoint,
                    replication_factor=self.replication_factor,
                ),
            )


@dataclass
class RankStats:
    """Per-rank virtual-time breakdown of one run."""

    rank: int
    n_local_final: int
    compute_time: float = 0.0
    inspector_time: float = 0.0
    lb_check_time: float = 0.0
    remap_time: float = 0.0
    num_checks: int = 0
    num_remaps: int = 0
    membership_events: int = 0
    checkpoint_time: float = 0.0
    num_checkpoints: int = 0
    rollback_time: float = 0.0
    num_rollbacks: int = 0
    lost_time: float = 0.0
    final_clock: float = 0.0
    redistribute_host_s: float = 0.0  # host s inside packed remap exchanges


@dataclass
class ProgramReport:
    """Outcome of :func:`run_program`."""

    values: np.ndarray  # final y, original vertex numbering
    makespan: float
    clocks: list[float]
    rank_stats: list[RankStats]
    cluster: ClusterSpec
    config: ProgramConfig
    work_per_iteration: float  # unit-speed seconds of one whole-graph sweep
    trace: TraceLog | None = None
    partition_final: IntervalPartition | None = None
    #: Merged :mod:`repro.obs` snapshot (counters summed, gauges maxed,
    #: histograms folded across ranks); ``metrics_by_rank`` keeps the
    #: per-rank snapshots for imbalance diagnostics.
    metrics: dict[str, Any] | None = None
    metrics_by_rank: list[dict[str, Any]] | None = None

    def _require_stats(self, what: str) -> None:
        """Aggregates over zero ranks are undefined; say so instead of
        raising a bare ``ValueError`` from ``max()`` or a misleading
        "ranks disagree" from an empty count set."""
        if not self.rank_stats:
            raise ConfigurationError(
                f"{what} is undefined: this report carries no per-rank stats"
            )

    @property
    def num_remaps(self) -> int:
        """Remaps performed, aggregated across ranks.

        Remap decisions are collective, so every rank must report the same
        count; a disagreement means the ranks desynchronized somewhere in
        Phase D, which this property surfaces instead of silently
        reporting rank 0's view.
        """
        self._require_stats("num_remaps")
        counts = {s.num_remaps for s in self.rank_stats}
        if len(counts) != 1:
            per_rank = {s.rank: s.num_remaps for s in self.rank_stats}
            raise LoadBalanceError(
                f"ranks disagree on the number of remaps: {per_rank} — "
                f"Phase D desynchronized"
            )
        return counts.pop()

    @property
    def membership_events(self) -> int:
        """Elastic membership events applied, aggregated across ranks.

        Event application is collective (the trace is replicated and polls
        happen at synchronized clocks), so every rank must report the same
        count; a disagreement means a rank consumed a different event
        window — surfaced here exactly like a :attr:`num_remaps` desync.
        """
        self._require_stats("membership_events")
        counts = {s.membership_events for s in self.rank_stats}
        if len(counts) != 1:
            per_rank = {s.rank: s.membership_events for s in self.rank_stats}
            raise LoadBalanceError(
                f"ranks disagree on applied membership events: {per_rank} — "
                f"the elastic poll desynchronized"
            )
        return counts.pop()

    @property
    def num_checkpoints(self) -> int:
        """Checkpoint epochs taken, aggregated across ranks.

        Checkpoints are collective (the policy evaluates on replicated
        inputs), so every rank must report the same count; a disagreement
        means the policy desynchronized — surfaced exactly like a
        :attr:`num_remaps` desync.
        """
        self._require_stats("num_checkpoints")
        counts = {s.num_checkpoints for s in self.rank_stats}
        if len(counts) != 1:
            per_rank = {s.rank: s.num_checkpoints for s in self.rank_stats}
            raise ResilienceError(
                f"ranks disagree on the number of checkpoints: {per_rank} "
                f"— the checkpoint policy desynchronized"
            )
        return counts.pop()

    @property
    def num_rollbacks(self) -> int:
        """Failure recoveries performed, aggregated across ranks."""
        self._require_stats("num_rollbacks")
        counts = {s.num_rollbacks for s in self.rank_stats}
        if len(counts) != 1:
            per_rank = {s.rank: s.num_rollbacks for s in self.rank_stats}
            raise ResilienceError(
                f"ranks disagree on the number of rollbacks: {per_rank} — "
                f"failure recovery desynchronized"
            )
        return counts.pop()

    @property
    def checkpoint_time(self) -> float:
        self._require_stats("checkpoint_time")
        return max(s.checkpoint_time for s in self.rank_stats)

    @property
    def rollback_time(self) -> float:
        self._require_stats("rollback_time")
        return max(s.rollback_time for s in self.rank_stats)

    @property
    def lost_time(self) -> float:
        self._require_stats("lost_time")
        return max(s.lost_time for s in self.rank_stats)

    @property
    def total_work_seconds(self) -> float:
        """Unit-speed work of the whole run (for efficiency metrics)."""
        return self.work_per_iteration * self.config.iterations

    @property
    def lb_check_time(self) -> float:
        self._require_stats("lb_check_time")
        return max(s.lb_check_time for s in self.rank_stats)

    @property
    def remap_time(self) -> float:
        self._require_stats("remap_time")
        return max(s.remap_time for s in self.rank_stats)


def _initial_capabilities(
    config: ProgramConfig, cluster: ClusterSpec
) -> np.ndarray:
    spec = config.initial_capabilities
    if isinstance(spec, str):
        if spec == "speeds":
            return cluster.speeds
        if spec == "equal":
            return np.ones(cluster.size)
        raise ConfigurationError(
            f"initial_capabilities must be 'speeds', 'equal', or a vector; "
            f"got {spec!r}"
        )
    caps = np.asarray(spec, dtype=np.float64)
    if caps.shape != (cluster.size,):
        raise ConfigurationError(
            f"capability vector has shape {caps.shape}, cluster has "
            f"{cluster.size} processors"
        )
    return caps


def _pick_ordering(config: ProgramConfig, graph: CSRGraph) -> OrderingMethod:
    if config.ordering is not None:
        return config.ordering
    if graph.coords is not None:
        return RCBOrdering()
    from repro.partition.ordering import IdentityOrdering

    return IdentityOrdering()


def _rank_main(
    ctx: Any,
    gperm: CSRGraph,
    y_init: np.ndarray,
    caps: np.ndarray,
    config: ProgramConfig,
) -> dict[str, Any]:
    with ctx.tracer.span("program", label=f"world={config.world}"):
        out = _rank_body(ctx, gperm, y_init, caps, config)
    out["metrics"] = ctx.metrics.snapshot()
    return out


def _rank_body(
    ctx: Any,
    gperm: CSRGraph,
    y_init: np.ndarray,
    caps: np.ndarray,
    config: ProgramConfig,
) -> dict[str, Any]:
    n = gperm.num_vertices
    stats = RankStats(rank=ctx.rank, n_local_final=0)

    # Phase D lives in one place: the session builds the inspector, owns
    # the monitor, and runs the strategy check / packed remap / rebuild.
    session = AdaptiveSession(
        ctx,
        gperm,
        partition_list(n, caps),
        total_iterations=config.iterations,
        lb=config.load_balance,
        schedule_strategy=config.strategy,
        inspector_cost=config.inspector_cost,
        backend=config.backend,
        checkpoint=config.checkpoint,
        inspector_mode=config.inspector_mode,
    )
    lo, hi = session.interval()
    local = y_init[lo:hi].copy()
    # Ghost receive buffers are reused across iterations (the payloads a
    # gather *sends* are still freshly packed — in-flight sim messages
    # alias the sender's buffers, so those must never be recycled).
    scratch = ExecutorScratch()
    (local,) = session.bootstrap_resilience((local,))

    # A while-loop, not `for`: after a failure rollback the session's
    # next_iteration() rewinds to the recovered epoch's iteration and the
    # discarded suffix is re-executed.
    it = 0
    while it < config.iterations:
        with ctx.tracer.span("epoch", label=f"iter {it}"):
            with ctx.tracer.span("executor"):
                ghost = gather(
                    ctx, session.schedule, local,
                    cost_model=config.executor_cost,
                    backend=config.backend, scratch=scratch,
                )
                t0 = ctx.clock
                local = session.kernel_plan.sweep(local, ghost)
                ctx.compute(
                    config.kernel_cost.sweep_seconds(
                        session.kernel_plan.n_references, local.size
                    ),
                    label="kernel",
                )
                stats.compute_time += ctx.clock - t0
            session.record(ctx.clock - t0, int(local.size))
            if config.barrier_each_iteration:
                ctx.barrier()
            (local,) = session.maybe_rebalance(it, (local,))
        it = session.next_iteration(it)

    stats.inspector_time = session.stats.inspector_time
    stats.lb_check_time = session.stats.lb_check_time
    stats.remap_time = session.stats.remap_time
    stats.num_checks = session.stats.num_checks
    stats.num_remaps = session.stats.num_remaps
    stats.membership_events = session.stats.membership_events
    stats.checkpoint_time = session.stats.checkpoint_time
    stats.num_checkpoints = session.stats.num_checkpoints
    stats.rollback_time = session.stats.rollback_time
    stats.num_rollbacks = session.stats.num_rollbacks
    stats.lost_time = session.stats.lost_time
    stats.redistribute_host_s = session.stats.redistribute_host_s

    # Final assembly at rank 0.
    lo, hi = session.interval()
    pieces = ctx.gather((lo, local), root=0)
    full = None
    if ctx.rank == 0:
        full = np.empty(n, dtype=np.float64)
        for piece_lo, data in pieces:
            full[piece_lo : piece_lo + data.size] = data
    stats.n_local_final = int(local.size)
    stats.final_clock = ctx.clock
    return {"stats": stats, "full": full, "partition": session.partition}


def run_program(
    graph: CSRGraph,
    cluster: ClusterSpec,
    config: ProgramConfig = ProgramConfig(),
    y0: np.ndarray | None = None,
) -> ProgramReport:
    """Run the Fig. 8 loop for ``config.iterations`` over *cluster*.

    ``y0`` is the initial value per vertex in the graph's own numbering
    (default: vertex index as a float, which makes convergence toward the
    neighborhood mean easy to eyeball and exactly reproducible).
    """
    n = graph.num_vertices
    if n == 0:
        raise ConfigurationError("cannot run on an empty graph")
    if y0 is None:
        y0 = np.arange(n, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    if y0.shape != (n,):
        raise ConfigurationError(f"y0 has shape {y0.shape}, expected ({n},)")

    # Elastic membership: a config-level trace (or DSL string) overrides
    # the cluster's own; either way the resolved trace rides on the cluster
    # so every rank's session sees it as replicated knowledge.
    from repro.runtime.adaptive import resolve_membership

    trace = resolve_membership(
        config.membership
        if config.membership is not None
        else cluster.membership,
        cluster.size,
    )
    if trace is not None:
        cluster = cluster.with_membership(trace)
        if not config.barrier_each_iteration:
            raise ConfigurationError(
                "elastic membership requires barrier_each_iteration: events "
                "are applied at synchronized iteration boundaries"
            )
    if config.checkpoint is not None and not config.barrier_each_iteration:
        raise ConfigurationError(
            "checkpointing requires barrier_each_iteration: epochs are "
            "taken at synchronized iteration boundaries"
        )
    if (
        trace is not None
        and trace.has_failures
        and config.checkpoint is None
    ):
        raise ResilienceError(
            "the membership trace contains unannounced 'fail' events; "
            "recovery needs a checkpoint policy — set "
            "ProgramConfig.checkpoint (e.g. \"interval:4\") or pass "
            "--checkpoint on the CLI"
        )

    # Phase A: 1-D transformation (done once, offline).
    ordering = _pick_ordering(config, graph)
    perm = ordering(graph)
    gperm = graph.permute(perm)
    y_init = np.empty(n, dtype=np.float64)
    y_init[perm] = y0

    # Surface a replication-factor cap at configuration time (the same
    # warning the checkpoint layer would emit from inside the ranks).
    if config.checkpoint is not None:
        from repro.runtime.resilience import effective_replication_factor

        num_active = (
            int(np.count_nonzero(trace.active_mask(0.0)))
            if trace is not None
            else cluster.size
        )
        effective_replication_factor(
            getattr(config.checkpoint, "replication_factor", 1), num_active
        )

    caps = _initial_capabilities(config, cluster)
    if trace is not None:
        # Standby machines (inactive at t=0) start with nothing; they get
        # elements only if and when a join's profitability test accepts.
        caps = np.where(trace.active_mask(0.0), caps, 0.0)

    # An open obs capture window (repro bench --trace-out) turns tracing
    # on for runs whose config the harness does not own; the obs-neutral
    # invariant guarantees the run's numbers do not change under capture.
    from repro.obs.capture import active_capture

    capture = active_capture()
    want_trace = config.trace or capture is not None
    trace_capacity = config.trace_capacity
    if trace_capacity is None and capture is not None:
        trace_capacity = capture.capacity
    result: SPMDResult = run_spmd(
        cluster,
        _rank_main,
        gperm,
        y_init,
        caps,
        config,
        trace=want_trace,
        trace_capacity=trace_capacity,
        world=config.world,
        recv_timeout=config.recv_timeout,
    )
    if capture is not None:
        capture.deposit(
            f"{config.world}:{cluster.size}ranks:{config.iterations}it",
            result.trace,
        )

    full_t = result.values[0]["full"]
    assert full_t is not None
    values = full_t[perm]  # back to original vertex numbering

    kc = config.kernel_cost
    work_per_iter = kc.sweep_seconds(int(gperm.indices.size), n)
    from repro.obs.metrics import merge_snapshots

    per_rank = [v.get("metrics") for v in result.values]
    return ProgramReport(
        values=values,
        makespan=result.makespan,
        clocks=result.clocks,
        rank_stats=[v["stats"] for v in result.values],
        cluster=cluster,
        config=config,
        work_per_iteration=work_per_iter,
        trace=result.trace if want_trace else None,
        partition_final=result.values[0]["partition"],
        metrics=merge_snapshots(per_rank),
        metrics_by_rank=per_rank,
    )
