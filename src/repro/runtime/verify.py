"""Global consistency checking for communication schedules (Sec. 3.2's
send/receive lists, Fig. 4).

The per-rank schedule invariants live in
:class:`~repro.runtime.schedule.CommSchedule`; this module checks the
*cross-rank* properties a complete set of schedules must satisfy before the
executor can trust them:

* **pairwise agreement** — what r ships to s is exactly what s expects
  from r, element for element, in order;
* **coverage** — every off-processor reference of every rank has a ghost
  slot (so the kernel plan can translate it);
* **conservation** — total elements sent equals total elements expected.

Used by the integration tests and available to applications that build
custom schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import local_references

__all__ = ["ConsistencyReport", "check_global_consistency"]


@dataclass
class ConsistencyReport:
    """Aggregate statistics from a successful consistency check."""

    num_ranks: int
    total_ghost_slots: int = 0
    total_send_entries: int = 0
    total_messages: int = 0
    max_ghost_fraction: float = 0.0
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def check_global_consistency(
    schedules: list[CommSchedule],
    graph: CSRGraph | None = None,
    *,
    strict: bool = True,
) -> ConsistencyReport:
    """Validate a complete set of per-rank schedules against each other.

    With *graph* given, additionally checks coverage: every off-processor
    reference of the Fig. 8 access pattern has a matching ghost slot.
    Raises :class:`ScheduleError` on the first problem when ``strict``;
    otherwise collects all issues into the report.
    """
    if not schedules:
        raise ScheduleError("no schedules to check")
    p = len(schedules)
    report = ConsistencyReport(num_ranks=p)

    def issue(msg: str) -> None:
        if strict:
            raise ScheduleError(msg)
        report.issues.append(msg)

    partition = schedules[0].partition
    for r, sched in enumerate(schedules):
        if sched.rank != r:
            issue(f"schedule at position {r} claims rank {sched.rank}")
        if sched.partition is not partition and not (
            np.array_equal(sched.partition.bounds, partition.bounds)
            and np.array_equal(sched.partition.owners, partition.owners)
        ):
            issue(f"rank {r} uses a different partition")

    # Pairwise agreement.
    total_sent = total_expected = 0
    for a in schedules:
        for b in schedules:
            if a.rank == b.rank:
                continue
            shipped = a.send_globals(b.rank)
            expected = b.recv_globals(a.rank)
            if not np.array_equal(shipped, expected):
                issue(
                    f"mismatch {a.rank}->{b.rank}: ships {shipped.size} "
                    f"elements, peer expects {expected.size} "
                    f"(first diff near {_first_diff(shipped, expected)})"
                )
            total_sent += shipped.size
            total_expected += expected.size
    if total_sent != total_expected:
        issue(
            f"conservation violated: {total_sent} sent vs "
            f"{total_expected} expected"
        )

    # Coverage against the actual access pattern.
    if graph is not None:
        for sched in schedules:
            lo, hi = partition.interval(sched.rank)
            _, nbr = local_references(graph, partition, sched.rank)
            off = np.unique(nbr[(nbr < lo) | (nbr >= hi)])
            ghost_set = np.unique(sched.ghost_globals)
            missing = np.setdiff1d(off, ghost_set, assume_unique=True)
            if missing.size:
                issue(
                    f"rank {sched.rank}: {missing.size} referenced elements "
                    f"missing from ghost buffer (e.g. {missing[:4].tolist()})"
                )

    for sched in schedules:
        report.total_ghost_slots += sched.ghost_size
        report.total_send_entries += sched.send_volume
        report.total_messages += sched.num_send_messages
        lo, hi = partition.interval(sched.rank)
        block = max(hi - lo, 1)
        report.max_ghost_fraction = max(
            report.max_ghost_fraction, sched.ghost_size / block
        )
    return report


def _first_diff(a: np.ndarray, b: np.ndarray) -> object:
    k = min(a.size, b.size)
    if k:
        diff = np.flatnonzero(a[:k] != b[:k])
        if diff.size:
            return int(a[diff[0]])
    return "length"
