"""Schema-versioned JSON artifacts for experiment runs.

Every harness invocation writes ``results/<name>.json`` in the shape below
(documented in docs/benchmarks.md).  Artifacts are plain dicts so they stay
trivially JSON-round-trippable; :func:`validate_artifact` is the single
source of truth for the schema, used both when writing and by tests.

Schema (``repro.experiments.run`` version 1)::

    {
      "schema": "repro.experiments.run",
      "schema_version": 1,
      "experiment": "<name>",
      "title": "...",
      "paper_anchor": "Table 4",
      "quick": false,
      "base_seed": 1995,
      "higher_is_better": ["efficiency"],
      "host": {"platform": "...", "python": "..."},
      "runs": [
        {"params": {...}, "seed": 1995, "wall_s": 0.12,
         "max_rss_kb": 81234, "metrics": {"makespan": 1.9}}
      ]
    }
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ReproError

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "new_artifact",
    "validate_artifact",
    "save_artifact",
    "load_artifact",
]

SCHEMA = "repro.experiments.run"
SCHEMA_VERSION = 1


def host_info() -> dict[str, str]:
    """The host fields recorded in every artifact (informational only)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def new_artifact(
    *,
    experiment: str,
    title: str,
    paper_anchor: str,
    runs: Sequence[Mapping[str, Any]],
    quick: bool,
    base_seed: int,
    higher_is_better: Sequence[str] = (),
) -> dict[str, Any]:
    """Assemble (and validate) one artifact dict from finished run records."""
    artifact = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "title": title,
        "paper_anchor": paper_anchor,
        "quick": bool(quick),
        "base_seed": int(base_seed),
        "higher_is_better": list(higher_is_better),
        "host": host_info(),
        "runs": [dict(r) for r in runs],
    }
    errors = validate_artifact(artifact)
    if errors:
        raise ReproError(f"internal error: invalid artifact: {errors}")
    return artifact


def validate_artifact(obj: Any) -> list[str]:
    """Check *obj* against the artifact schema; return a list of problems.

    An empty list means the artifact is valid.  Unknown extra keys are
    tolerated (forward compatibility); missing/ill-typed required keys are
    reported with their JSON path.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"artifact must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != SCHEMA:
        errors.append(f"schema: expected {SCHEMA!r}, got {obj.get('schema')!r}")
    if obj.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version: expected {SCHEMA_VERSION}, "
            f"got {obj.get('schema_version')!r}"
        )
    for key, typ in (
        ("experiment", str),
        ("title", str),
        ("paper_anchor", str),
        ("quick", bool),
        ("base_seed", int),
        ("higher_is_better", list),
        ("host", dict),
        ("runs", list),
    ):
        if not isinstance(obj.get(key), typ):
            errors.append(f"{key}: expected {typ.__name__}, got {obj.get(key)!r}")
    for i, run in enumerate(obj.get("runs") or []):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where}: expected an object")
            continue
        if not isinstance(run.get("params"), dict):
            errors.append(f"{where}.params: expected an object")
        if not isinstance(run.get("seed"), int):
            errors.append(f"{where}.seed: expected an int")
        for key in ("wall_s", "max_rss_kb"):
            if not isinstance(run.get(key), (int, float)) or isinstance(
                run.get(key), bool
            ):
                errors.append(f"{where}.{key}: expected a number")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"{where}.metrics: expected a non-empty object")
            continue
        for name, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}.metrics[{name!r}]: expected a number")
    return errors


def save_artifact(artifact: Mapping[str, Any], path: str | Path) -> Path:
    """Write *artifact* as pretty JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Read and validate one artifact; raise :class:`ReproError` if invalid."""
    path = Path(path)
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read artifact {path}: {exc}") from exc
    errors = validate_artifact(obj)
    if errors:
        detail = "; ".join(errors[:5])
        raise ReproError(f"invalid artifact {path}: {detail}")
    return obj
