"""The experiment registry: one flat namespace of registered experiments.

Experiments self-register at import time (the decorator form in
:mod:`repro.experiments.catalog`); :func:`discover` imports the catalog so
callers — the CLI, tests, sweep drivers — see the full set without knowing
which module defines what.
"""

from __future__ import annotations

import importlib
from typing import Callable, Iterable, Mapping

from repro.errors import ReproError
from repro.experiments.spec import Experiment, MetricsFn

__all__ = ["register", "experiment", "get", "names", "all_experiments", "discover"]

_REGISTRY: dict[str, Experiment] = {}

#: Modules imported by :func:`discover`; extensions may append to this.
CATALOG_MODULES = ["repro.experiments.catalog", "repro.experiments.sweep"]


def register(exp: Experiment) -> Experiment:
    """Add *exp* to the registry; re-registering the same name must be idempotent."""
    existing = _REGISTRY.get(exp.name)
    if existing is not None and existing is not exp:
        raise ReproError(f"experiment {exp.name!r} is already registered")
    _REGISTRY[exp.name] = exp
    return exp


def experiment(
    name: str,
    *,
    title: str,
    paper_anchor: str,
    grid: Mapping,
    quick_grid: Mapping | None = None,
    seed: int = 1995,
    higher_is_better: Iterable[str] = (),
    description: str = "",
    tags: Iterable[str] = (),
) -> Callable[[MetricsFn], MetricsFn]:
    """Decorator form: register the decorated metrics function as *name*."""

    def deco(fn: MetricsFn) -> MetricsFn:
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        register(
            Experiment(
                name=name,
                title=title,
                paper_anchor=paper_anchor,
                fn=fn,
                grid=grid,
                quick_grid=quick_grid,
                seed=seed,
                higher_is_better=tuple(higher_is_better),
                description=description or (doc_lines[0] if doc_lines else ""),
                tags=tuple(tags),
            )
        )
        return fn

    return deco


def discover() -> None:
    """Import every catalog module so its experiments register themselves."""
    for mod in CATALOG_MODULES:
        importlib.import_module(mod)


def get(name: str) -> Experiment:
    """Look up one experiment by name (after discovery)."""
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ReproError(
            f"unknown experiment {name!r}; registered: {known}"
        ) from None


def names() -> list[str]:
    """Sorted names of every registered experiment."""
    discover()
    return sorted(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """Every registered experiment, sorted by name."""
    discover()
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]
