"""Experiment specifications: name, paper anchor, parameter grid, seed policy.

An :class:`Experiment` is the declarative half of the harness: *what* to run
(a metrics function), over *which* parameter grid, anchored to *which* table
or figure of the paper.  The imperative half — timing, RSS capture, artifact
writing — lives in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError

__all__ = ["Experiment", "MetricsFn", "expand_grid", "config_seed"]

#: A metrics function receives one fully-resolved parameter configuration and
#: a deterministic seed, and returns a flat mapping of metric name -> number.
MetricsFn = Callable[..., Mapping[str, float]]


def config_seed(base_seed: int, params: Mapping[str, Any]) -> int:
    """The harness seed policy: a deterministic per-configuration seed.

    The seed is ``base_seed`` plus a stable hash of the configuration's
    *content* (its sorted parameter items), so the same parameters always
    get the same seed — regardless of grid position, ``--quick``, or
    ``--set`` overrides.  That keeps reruns bit-identical and makes runs of
    the same configuration comparable across artifacts, while distinct
    configurations essentially never share a generator stream.
    """
    canon = json.dumps(
        {k: params[k] for k in sorted(params)}, sort_keys=True, default=str
    )
    digest = hashlib.sha256(canon.encode("utf-8")).digest()
    return int(base_seed) + int.from_bytes(digest[:4], "big")


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Expand a parameter grid into the full list of configurations.

    ``{"p": (1, 2), "lb": (True, False)}`` yields four dicts, in
    deterministic (insertion-then-cartesian) order.  Scalar values are not
    allowed — wrap single values in a 1-tuple so the grid shape is explicit.
    """
    keys = list(grid)
    for k in keys:
        v = grid[k]
        if isinstance(v, (str, bytes)) or not isinstance(v, Sequence):
            raise ReproError(
                f"grid axis {k!r} must be a sequence of values, got {v!r}"
            )
        if len(v) == 0:
            raise ReproError(f"grid axis {k!r} is empty")
    return [dict(zip(keys, combo)) for combo in product(*(grid[k] for k in keys))]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: a paper-anchored, grid-parameterized run.

    ``fn(params, seed=...)`` must return a flat ``{metric: number}`` mapping
    for one configuration; the runner handles timing, memory, and artifacts.
    """

    name: str
    title: str
    paper_anchor: str  # e.g. "Table 4" or "Sec. 3.1"
    fn: MetricsFn
    grid: Mapping[str, Sequence[Any]]
    #: Reduced grid used by ``--quick`` / smoke tests.  Defaults to ``grid``.
    quick_grid: Mapping[str, Sequence[Any]] | None = None
    seed: int = 1995
    #: Metric names where larger is better (everything else: lower is better).
    higher_is_better: tuple[str, ...] = ()
    description: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Names are slugs: alphanumerics plus "_" and "-" (experiment
        # families use a hyphenated prefix, e.g. "scale-epoch").
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise ReproError(f"invalid experiment name {self.name!r}")
        expand_grid(self.grid)  # validate axes early
        if self.quick_grid is not None:
            expand_grid(self.quick_grid)

    def configs(self, *, quick: bool = False) -> list[dict[str, Any]]:
        """The expanded configuration list (quick grid if requested)."""
        grid = self.quick_grid if (quick and self.quick_grid is not None) else self.grid
        return expand_grid(grid)

    def num_configs(self, *, quick: bool = False) -> int:
        return len(self.configs(quick=quick))
