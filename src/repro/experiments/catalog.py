"""The registered experiment catalog: Tables 1-5 plus two ablations.

Each experiment reproduces one table (or an ablation around one) of the
paper's evaluation.  The compute helpers here are the *single* source of the
measurement logic: the ``benchmarks/bench_*.py`` pytest modules import them
for their shape assertions, and the harness runs them over parameter grids
(``repro bench run <name>``), so a number printed by a benchmark and a
number in a ``results/<name>.json`` artifact come from the same code.

Grids follow the paper's sweeps; every experiment also carries a reduced
``quick_grid`` so ``--quick`` smoke runs finish in seconds.  Workload meshes
are keyed by an explicit ``workload_seed`` grid axis (not the per-config
seed) so every configuration of one experiment sees the same mesh.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Any, Mapping

import numpy as np

from repro.errors import ReproError
from repro.experiments.registry import experiment

__all__ = [
    "mcr_instance",
    "time_mcr",
    "measure_remap",
    "average_remap_costs",
    "schedule_build_time",
    "static_run",
    "single_machine_times",
    "adaptive_run",
    "ordering_by_name",
    "scale_epoch_measurements",
    "scale_huge_measurements",
    "scale_adaptive_measurements",
    "scale_elastic_measurements",
    "scale_resilience_measurements",
    "scale_service_measurements",
    "ORDERING_NAMES",
]

# --------------------------------------------------------------------------
# shared workloads (memoized: several configurations share one mesh)


@lru_cache(maxsize=4)
def _workload(n_vertices: int, seed: int):
    """(graph, y0) for the Fig. 9-like mesh at the requested scale."""
    from repro.graph.generators import paper_mesh

    graph = paper_mesh(n_vertices, seed=seed)
    y0 = np.random.default_rng(seed).uniform(0.0, 100.0, graph.num_vertices)
    return graph, y0


@lru_cache(maxsize=4)
def _rsb_like_ordered_graph(n_vertices: int, seed: int):
    """The Table 3 input: the paper mesh pre-permuted by RCB indexing."""
    from repro.partition.rcb import RCBOrdering

    graph, _ = _workload(n_vertices, seed)
    return graph.permute(RCBOrdering()(graph))


# --------------------------------------------------------------------------
# Table 1 — execution time of MinimizeCostRedistribution


def mcr_instance(p: int, seed: int = 0):
    """One random (arrangement, old, new) MCR instance at *p* processors."""
    from repro.apps.workloads import random_capabilities

    rng = np.random.default_rng(seed)
    old = random_capabilities(p, rng)
    new = random_capabilities(p, rng)
    return np.arange(p), old, new


def time_mcr(
    p: int, *, elements: int = 10_000, repeats: int = 3, seed: int = 0
) -> float:
    """Best-of-*repeats* host seconds for one MinimizeCostRedistribution call."""
    from repro.partition.arrangement import minimize_cost_redistribution

    arr, old, new = mcr_instance(p, seed)
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        minimize_cost_redistribution(arr, old, new, elements)
        best = min(best, time.perf_counter() - t0)
    return best


@experiment(
    "table1",
    title="Execution time of MinimizeCostRedistribution",
    paper_anchor="Table 1",
    grid={"p": (3, 5, 10, 15, 20), "elements": (10_000,), "repeats": (3,)},
    quick_grid={"p": (3, 5), "elements": (2_000,), "repeats": (1,)},
    description="Host-times the MCR heuristic; growth should be ~p^3.",
)
def _exp_table1(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    return {
        "mcr_seconds": time_mcr(
            int(params["p"]),
            elements=int(params["elements"]),
            repeats=int(params["repeats"]),
            seed=seed,
        )
    }


# --------------------------------------------------------------------------
# Table 2 — average cost of data remapping, with and without MCR


def measure_remap(n: int, p: int, old_caps, new_caps, arrangement) -> float:
    """Virtual makespan of one redistribution on the SUN4 Ethernet testbed."""
    from repro.net.cluster import sun4_cluster
    from repro.net.spmd import run_spmd
    from repro.partition.intervals import partition_list
    from repro.runtime.adaptive import redistribute

    cluster = sun4_cluster(p)
    old = partition_list(n, old_caps)
    new = partition_list(n, new_caps, arrangement)
    data = np.zeros(n, dtype=np.float64)

    def fn(ctx):
        lo, hi = old.interval(ctx.rank)
        redistribute(ctx, old, new, data[lo:hi])
        ctx.barrier()

    return run_spmd(cluster, fn).makespan


def average_remap_costs(
    n: int, p: int, rng: np.random.Generator, *, samples: int
) -> tuple[float, float]:
    """(with MCR, without MCR) mean remap cost over random capability samples."""
    from repro.apps.workloads import random_capabilities
    from repro.net.cluster import sun4_cluster
    from repro.partition.arrangement import (
        RedistributionCostModel,
        minimize_cost_redistribution,
    )

    net = sun4_cluster(p).make_network()
    cost_model = RedistributionCostModel.from_network(net, 8)
    with_mcr = without = 0.0
    for _ in range(samples):
        old_caps = random_capabilities(p, rng)
        new_caps = random_capabilities(p, rng)
        arr = minimize_cost_redistribution(
            np.arange(p), old_caps, new_caps, n, cost_model=cost_model
        )
        with_mcr += measure_remap(n, p, old_caps, new_caps, arr)
        without += measure_remap(n, p, old_caps, new_caps, np.arange(p))
    return with_mcr / samples, without / samples


@experiment(
    "table2",
    title="Average cost of data remapping (MCR vs identity)",
    paper_anchor="Table 2",
    grid={"n": (512, 2048, 16_384), "p": (3, 4, 5), "samples": (8,)},
    quick_grid={"n": (2048,), "p": (3,), "samples": (2,)},
    description="Virtual remap cost averaged over random capability changes.",
)
def _exp_table2(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    with_mcr, without = average_remap_costs(
        int(params["n"]), int(params["p"]), rng, samples=int(params["samples"])
    )
    return {"remap_mcr": with_mcr, "remap_identity": without}


# --------------------------------------------------------------------------
# Table 3 — time to build communication schedules, by strategy


def schedule_build_time(graph, p: int, strategy: str) -> float:
    """Max per-rank virtual time to build the schedule on the SUN4 pool."""
    from repro.net.cluster import sun4_cluster
    from repro.net.spmd import run_spmd
    from repro.partition.intervals import partition_list
    from repro.runtime.inspector import run_inspector

    cluster = sun4_cluster(p)
    part = partition_list(graph.num_vertices, cluster.speeds)

    def fn(ctx):
        result = run_inspector(graph, part, ctx.rank, strategy=strategy, ctx=ctx)
        ctx.barrier()
        return result.build_time

    return run_spmd(cluster, fn).makespan


@experiment(
    "table3",
    title="Communication-schedule construction time by strategy",
    paper_anchor="Table 3",
    grid={
        "strategy": ("sort1", "sort2", "simple"),
        "p": (2, 3, 4, 5),
        "n_vertices": (6_000,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "strategy": ("sort1", "sort2", "simple"),
        "p": (2, 3),
        "n_vertices": (800,),
        "workload_seed": (1995,),
    },
    description="Sorting strategies get cheaper with p; simple gets worse.",
)
def _exp_table3(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    graph = _rsb_like_ordered_graph(
        int(params["n_vertices"]), int(params["workload_seed"])
    )
    return {
        "build_seconds": schedule_build_time(
            graph, int(params["p"]), str(params["strategy"])
        )
    }


# --------------------------------------------------------------------------
# Table 4 — execution time and efficiency in static environments


def static_run(graph, y0, iterations: int, p: int):
    """One static (dedicated, nonuniform) run on the first *p* workstations."""
    from repro.net.cluster import sun4_cluster
    from repro.runtime.program import ProgramConfig, run_program

    return run_program(
        graph, sun4_cluster(p), ProgramConfig(iterations=iterations), y0=y0
    )


def single_machine_times(graph, y0, iterations: int, num_ws: int = 5) -> list[float]:
    """T(p_i): the single-workstation makespans, the Sec. 4 denominator."""
    from repro.net.cluster import sun4_cluster
    from repro.runtime.program import ProgramConfig, run_program

    pool = sun4_cluster(num_ws)
    return [
        run_program(
            graph, pool.subset([i]), ProgramConfig(iterations=iterations), y0=y0
        ).makespan
        for i in range(num_ws)
    ]


@lru_cache(maxsize=8)
def _cached_singles(
    n_vertices: int, workload_seed: int, iterations: int
) -> tuple[float, ...]:
    """All five T(p_i) for one workload; every p-configuration slices this."""
    graph, y0 = _workload(n_vertices, workload_seed)
    return tuple(single_machine_times(graph, y0, iterations, num_ws=5))


@experiment(
    "table4",
    title="Execution time and efficiency in static environments",
    paper_anchor="Table 4",
    grid={
        "p": (1, 2, 3, 4, 5),
        "n_vertices": (6_000,),
        "iterations": (60,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "p": (1, 2, 3),
        "n_vertices": (800,),
        "iterations": (8,),
        "workload_seed": (1995,),
    },
    higher_is_better=("efficiency",),
    description="Time falls as workstations are added; efficiency declines.",
)
def _exp_table4(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    from repro.runtime.efficiency import nonuniform_efficiency

    n, iters = int(params["n_vertices"]), int(params["iterations"])
    p = int(params["p"])
    graph, y0 = _workload(n, int(params["workload_seed"]))
    report = static_run(graph, y0, iters, p)
    singles = _cached_singles(n, int(params["workload_seed"]), iters)[:p]
    return {
        "makespan": report.makespan,
        "efficiency": nonuniform_efficiency(report.makespan, list(singles)),
    }


# --------------------------------------------------------------------------
# Table 5 — adaptive environment, with and without load balancing


def adaptive_run(
    graph,
    y0,
    iterations: int,
    p: int,
    *,
    lb: bool,
    competing_load: float = 2.0,
    check_interval: int = 10,
    style: str = "centralized",
):
    """One Table-5 run: competing load on ws 0, equal initial decomposition.

    *style* picks the rebalance strategy ("centralized" is the paper's
    protocol, "distributed" its stated future work); ``lb=False`` runs the
    no-balancing baseline regardless of style.
    """
    from repro.apps.workloads import adaptive_testbed
    from repro.runtime.adaptive import LoadBalanceConfig
    from repro.runtime.program import ProgramConfig, run_program

    cfg = ProgramConfig(
        iterations=iterations,
        initial_capabilities="equal",
        load_balance=(
            LoadBalanceConfig(check_interval=check_interval, style=style)
            if lb
            else None
        ),
    )
    cluster = adaptive_testbed(p, competing_load=competing_load)
    return run_program(graph, cluster, cfg, y0=y0)


@experiment(
    "table5",
    title="Adaptive environment with and without load balancing",
    paper_anchor="Table 5",
    grid={
        "p": (1, 2, 3, 4, 5),
        "lb": (True, False),
        "n_vertices": (6_000,),
        "iterations": (60,),
        "check_interval": (10,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "p": (2, 3),
        "lb": (True, False),
        "n_vertices": (800,),
        "iterations": (20,),
        "check_interval": (5,),
        "workload_seed": (1995,),
    },
    description="Load balancing roughly halves time; check cost << remap cost.",
)
def _exp_table5(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    graph, y0 = _workload(
        int(params["n_vertices"]), int(params["workload_seed"])
    )
    report = adaptive_run(
        graph,
        y0,
        int(params["iterations"]),
        int(params["p"]),
        lb=bool(params["lb"]),
        check_interval=int(params["check_interval"]),
    )
    return {
        "makespan": report.makespan,
        "remap_time": report.remap_time,
        "check_time": report.lb_check_time,
        "num_remaps": float(report.num_remaps),
    }


# --------------------------------------------------------------------------
# Scale tier — host-time benchmarks of the backend hot paths (ROADMAP
# north star: "as fast as the hardware allows", far past the paper's
# 30,269-vertex mesh).  Unlike the table experiments, these measure *host*
# wall seconds, because both backends charge identical virtual time by
# design — the contract the differential tests enforce.


@lru_cache(maxsize=2)
def _scale_workload(tier: str, family: str, seed: int):
    """(graph, y0) for one scale-tier mesh, shared across backend configs.

    The mesh arrives already phase-A ordered — grids are naturally
    row-major, geometric meshes get one (cached) Hilbert indexing — so the
    benchmark times phases B/C on the pipeline's actual input, never on an
    artificially shuffled layout the paper's runtime would never see.
    """
    from repro.graph.generators import scale_mesh

    graph = scale_mesh(tier, family=family, seed=seed)
    if family == "geometric":
        from repro.partition.sfc import HilbertOrdering

        graph = graph.permute(HilbertOrdering()(graph))
    y0 = np.random.default_rng(seed).uniform(0.0, 100.0, graph.num_vertices)
    return graph, y0


def scale_epoch_measurements(
    tier: str,
    family: str,
    backend: str,
    p: int,
    epochs: int,
    *,
    workload_seed: int = 1995,
    world: str = "sim",
) -> dict[str, float]:
    """Host-time one inspector build plus *epochs* gather/scatter rounds.

    Returns both timings and structural schedule facts (ghost counts, send
    volume, message counts) — the structural part is deterministic and is
    what the golden-artifact regression test pins.  With ``world="real"``
    the executor rounds run on one OS process per rank instead of
    threads (``--set world=real`` on the CLI).
    """
    from repro.net.cluster import uniform_cluster
    from repro.net.spmd import run_spmd
    from repro.partition.intervals import partition_list
    from repro.runtime.executor import gather, scatter
    from repro.runtime.inspector import run_inspector

    graph, y0 = _scale_workload(tier, family, workload_seed)
    n = graph.num_vertices
    part = partition_list(n, np.ones(p))

    t0 = time.perf_counter()
    insp = [
        run_inspector(graph, part, r, strategy="sort2", backend=backend)
        for r in range(p)
    ]
    inspector_s = time.perf_counter() - t0

    def fn(ctx):
        sched = insp[ctx.rank].schedule
        lo, hi = part.interval(ctx.rank)
        local = y0[lo:hi].copy()
        for _ in range(epochs):
            ghost = gather(ctx, sched, local, backend=backend)
            scatter(ctx, sched, ghost, local, op="add", backend=backend)
        return float(local.sum())

    t0 = time.perf_counter()
    run_spmd(uniform_cluster(p), fn, world=world)
    executor_s = time.perf_counter() - t0

    stats = [r.schedule.stats() for r in insp]
    return {
        "inspector_host_s": inspector_s,
        "executor_host_s": executor_s,
        "epoch_host_s": inspector_s + executor_s,
        "n_vertices": float(n),
        "n_edges": float(graph.num_edges),
        "ghost_total": float(sum(s["ghosts"] for s in stats)),
        "send_volume_total": float(sum(s["send_volume"] for s in stats)),
        "send_messages_total": float(sum(s["send_messages"] for s in stats)),
    }


@experiment(
    "scale-epoch",
    title="Scale tier: inspector+executor epoch, vectorized vs reference",
    paper_anchor="ROADMAP (beyond Table 3)",
    grid={
        "tier": ("250k", "500k"),
        "family": ("grid", "geometric"),
        "backend": ("vectorized", "reference"),
        "p": (4,),
        "epochs": (3,),
        "workload_seed": (1995,),
        "world": ("sim",),
    },
    quick_grid={
        "tier": ("100k",),
        "family": ("grid",),
        "backend": ("vectorized", "reference"),
        "p": (4,),
        "epochs": (1,),
        "workload_seed": (1995,),
        "world": ("sim",),
    },
    description="Host seconds per epoch on 100k-500k meshes, per backend.",
    tags=("scale", "perf"),
)
def _exp_scale_epoch(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    return scale_epoch_measurements(
        str(params["tier"]),
        str(params["family"]),
        str(params["backend"]),
        int(params["p"]),
        int(params["epochs"]),
        workload_seed=int(params["workload_seed"]),
        world=str(params.get("world", "sim")),
    )


@experiment(
    "scale-generate",
    title="Scale tier: streamed mesh construction throughput",
    paper_anchor="ROADMAP (workload generation)",
    grid={
        "tier": ("100k", "250k", "500k", "1m"),
        "family": ("grid", "geometric"),
        "workload_seed": (1995,),
    },
    quick_grid={
        "tier": ("100k",),
        "family": ("grid", "geometric"),
        "workload_seed": (1995,),
    },
    description="Host seconds (and sizes) to construct each tier mesh.",
    tags=("scale", "perf"),
)
def _exp_scale_generate(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    from repro.graph.generators import scale_mesh

    t0 = time.perf_counter()
    graph = scale_mesh(
        str(params["tier"]),
        family=str(params["family"]),
        seed=int(params["workload_seed"]),
    )
    build_s = time.perf_counter() - t0
    n = graph.num_vertices
    return {
        "build_host_s": build_s,
        "n_vertices": float(n),
        "n_edges": float(graph.num_edges),
        "mean_degree": float(graph.indices.size / n) if n else 0.0,
    }


# --------------------------------------------------------------------------
# Scale tier — dynamic-load scenarios through the full adaptive runtime
# (Phase D at the 10k-500k tiers: the environment's capabilities change
# *during* the run and the AdaptiveSession must keep up).


def scale_adaptive_measurements(
    tier: str,
    scenario: str,
    backend: str,
    style: str,
    p: int,
    iterations: int,
    check_interval: int,
    *,
    family: str = "grid",
    workload_seed: int = 1995,
    world: str = "sim",
) -> dict[str, float]:
    """One dynamic-load run at a scale tier, through the adaptive session.

    Virtual metrics (makespan, remap/check cost, remap count) are
    backend-independent by the differential contract; the host-time
    metrics (``redistribute_host_s``, ``run_host_s``) are what separates
    the ``vectorized`` packed-slab exchange from the ``reference``
    per-element loops.  With ``world="real"`` the whole adaptive session
    runs on OS processes and the makespan is wall seconds; the competing
    load is then only visible to the *decision* layer (the simulated
    traces do not slow the host down), so the interesting real-world
    metrics are the overhead ones.
    """
    from repro.apps.workloads import dynamic_load_cluster
    from repro.runtime.adaptive import LoadBalanceConfig
    from repro.runtime.kernels import KernelCostModel
    from repro.runtime.program import ProgramConfig, run_program

    graph, y0 = _scale_workload(tier, family, workload_seed)
    n = graph.num_vertices
    # Expected unloaded duration: the traces scale their onset/removal
    # breakpoints to it so load changes always land mid-run.
    work_per_iter = KernelCostModel().sweep_seconds(int(graph.indices.size), n)
    horizon = iterations * work_per_iter / p
    cluster = dynamic_load_cluster(p, scenario, horizon)
    config = ProgramConfig(
        iterations=iterations,
        backend=backend,
        initial_capabilities="equal",
        load_balance=LoadBalanceConfig(
            check_interval=check_interval, style=style
        ),
        world=world,
    )
    t0 = time.perf_counter()
    report = run_program(graph, cluster, config, y0=y0)
    run_host_s = time.perf_counter() - t0
    return {
        "makespan": report.makespan,
        "num_remaps": float(report.num_remaps),
        "remap_time": report.remap_time,
        "check_time": report.lb_check_time,
        "redistribute_host_s": max(
            s.redistribute_host_s for s in report.rank_stats
        ),
        "run_host_s": run_host_s,
        "n_vertices": float(n),
    }


@experiment(
    "scale-adaptive",
    title="Scale tier: dynamic-load scenarios under adaptive load balancing",
    paper_anchor="ROADMAP (beyond Table 5)",
    grid={
        "tier": ("10k", "100k", "250k", "500k"),
        "scenario": ("onset", "hotspot", "ramp"),
        "backend": ("vectorized", "reference"),
        "style": ("centralized",),
        "p": (4,),
        "iterations": (30,),
        "check_interval": (5,),
        "workload_seed": (1995,),
        "world": ("sim",),
    },
    quick_grid={
        "tier": ("10k",),
        "scenario": ("onset",),
        "backend": ("vectorized", "reference"),
        "style": ("centralized", "distributed"),
        "p": (4,),
        "iterations": (20,),
        "check_interval": (5,),
        "workload_seed": (1995,),
        "world": ("sim",),
    },
    description="Phase D keeping up with mid-run load changes at scale; "
    "vectorized vs reference packed redistribution.",
    tags=("scale", "perf", "adaptive"),
)
def _exp_scale_adaptive(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    return scale_adaptive_measurements(
        str(params["tier"]),
        str(params["scenario"]),
        str(params["backend"]),
        str(params["style"]),
        int(params["p"]),
        int(params["iterations"]),
        int(params["check_interval"]),
        workload_seed=int(params["workload_seed"]),
        world=str(params.get("world", "sim")),
    )


# --------------------------------------------------------------------------
# Scale tier — sim-vs-real differential benchmark: the same probe program
# runs in both execution worlds, giving the first *empirical* check on the
# analytic cost models (estimate_remap_cost / estimate_checkpoint_cost)
# the profitability tests rely on.


def _real_probe_rank(ctx, graph, y0, caps_old, caps_new, epochs, replication):
    """SPMD probe: epoch loop, one remap, one checkpoint — all between
    barriers, so the measured spans are rank-agreed in both worlds.

    Module-level (not a closure) so the real world can run it under any
    multiprocessing start method.
    """
    from repro.partition.intervals import partition_list
    from repro.runtime.adaptive.redistribution import redistribute_fields
    from repro.runtime.executor import gather
    from repro.runtime.inspector import run_inspector
    from repro.runtime.resilience import take_checkpoint

    n = graph.num_vertices
    part_old = partition_list(n, caps_old)
    part_new = partition_list(n, caps_new)
    lo, hi = part_old.interval(ctx.rank)
    local = y0[lo:hi].copy()
    insp = run_inspector(graph, part_old, ctx.rank, strategy="sort2", ctx=ctx)

    ctx.barrier()
    t0 = ctx.clock
    for _ in range(epochs):
        ghost = gather(ctx, insp.schedule, local)
        local = insp.kernel_plan.sweep(local, ghost)
        ctx.barrier()
    epoch_s = (ctx.clock - t0) / epochs

    t0 = ctx.clock
    (local,) = redistribute_fields(ctx, part_old, part_new, (local,))
    ctx.barrier()
    remap_s = ctx.clock - t0

    active = np.ones(ctx.size, dtype=bool)
    t0 = ctx.clock
    take_checkpoint(
        ctx, part_new, (local,), active,
        next_iteration=0, epoch=0, replication_factor=replication,
    )  # ends with a barrier
    checkpoint_s = ctx.clock - t0

    return {
        "epoch_s": epoch_s,
        "remap_s": remap_s,
        "checkpoint_s": checkpoint_s,
        "checksum": float(local.sum()),
    }


def scale_real_measurements(
    tier: str,
    p: int,
    epochs: int,
    replication: int,
    *,
    family: str = "grid",
    workload_seed: int = 1995,
) -> dict[str, float]:
    """Run the probe in both worlds and report measured-vs-predicted ratios.

    ``predicted_*`` are the sim world's virtual spans of the *identical*
    probe; ``est_remap_s`` / ``est_checkpoint_s`` are the closed-form
    analytic prices the Phase D profitability tests use.  ``ratio_*`` is
    measured wall seconds over the virtual prediction — how conservative
    the simulator's cost model is relative to loopback-socket reality on
    this host.  ``values_match`` asserts the differential contract (every
    rank's final checksum bit-identical across worlds).
    """
    from repro.net.cluster import uniform_cluster
    from repro.net.spmd import run_spmd
    from repro.partition.intervals import partition_list
    from repro.runtime.adaptive.redistribution import estimate_remap_cost
    from repro.runtime.resilience import estimate_checkpoint_cost

    graph, y0 = _scale_workload(tier, family, workload_seed)
    n = graph.num_vertices
    cluster = uniform_cluster(p)
    caps_old = np.ones(p)
    caps_new = np.linspace(1.0, 2.0, p)  # shifts ~1/6 of the elements
    args = (graph, y0, caps_old, caps_new, epochs, replication)

    sim = run_spmd(cluster, _real_probe_rank, *args)
    real = run_spmd(
        cluster, _real_probe_rank, *args, world="real", recv_timeout=60.0
    )

    part_old = partition_list(n, caps_old)
    part_new = partition_list(n, caps_new)
    network = cluster.make_network()
    est_remap = estimate_remap_cost(network, part_old, part_new, 8, num_fields=1)
    est_checkpoint = estimate_checkpoint_cost(
        network, part_new, np.ones(p, dtype=bool), 8,
        num_fields=1, replication_factor=replication,
    )

    svals, rvals = sim.values[0], real.values[0]
    values_match = all(
        s["checksum"] == r["checksum"]
        for s, r in zip(sim.values, real.values)
    )

    def ratio(measured: float, predicted: float) -> float:
        return measured / predicted if predicted > 0 else 0.0

    return {
        "measured_epoch_s": rvals["epoch_s"],
        "predicted_epoch_s": svals["epoch_s"],
        "ratio_epoch": ratio(rvals["epoch_s"], svals["epoch_s"]),
        "measured_remap_s": rvals["remap_s"],
        "predicted_remap_s": svals["remap_s"],
        "est_remap_s": est_remap,
        "ratio_remap": ratio(rvals["remap_s"], svals["remap_s"]),
        "measured_checkpoint_s": rvals["checkpoint_s"],
        "predicted_checkpoint_s": svals["checkpoint_s"],
        "est_checkpoint_s": est_checkpoint,
        "ratio_checkpoint": ratio(rvals["checkpoint_s"], svals["checkpoint_s"]),
        "values_match": 1.0 if values_match else 0.0,
        "n_vertices": float(n),
    }


@experiment(
    "scale-real",
    title="Real processes vs simulator: measured/predicted cost ratios",
    paper_anchor="ROADMAP (real-process backend)",
    grid={
        "tier": ("10k", "100k"),
        "p": (4,),
        "epochs": (5,),
        "replication": (1, 2),
        "workload_seed": (1995,),
    },
    quick_grid={
        "tier": ("10k",),
        "p": (4,),
        "epochs": (3,),
        "replication": (1,),
        "workload_seed": (1995,),
    },
    description="Epoch/remap/checkpoint costs measured on real OS "
    "processes vs the virtual-clock prediction and the analytic "
    "estimators; values_match asserts the differential contract.",
    tags=("scale", "perf", "real"),
)
def _exp_scale_real(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    return scale_real_measurements(
        str(params["tier"]),
        int(params["p"]),
        int(params["epochs"]),
        int(params["replication"]),
        workload_seed=int(params["workload_seed"]),
    )


# --------------------------------------------------------------------------
# Scale tier — elastic membership scenarios (machines join and leave the
# pool mid-run; the AdaptiveSession drains departures through the packed
# redistribution and re-runs the profitability test for joiners).


def scale_elastic_measurements(
    tier: str,
    scenario: str,
    backend: str,
    lb: bool,
    p: int,
    iterations: int,
    check_interval: int,
    *,
    family: str = "grid",
    workload_seed: int = 1995,
) -> dict[str, float]:
    """One elastic-membership run at a scale tier, through the session.

    ``lb=False`` is the static baseline: departures still drain (the data
    has nowhere else to go), but load imbalance is never corrected and
    joins are never adopted.  Virtual metrics are backend-independent by
    the differential contract; ``final_active`` counts the ranks actually
    holding data at the end (the surviving set).
    """
    from repro.apps.workloads import elastic_cluster
    from repro.runtime.adaptive import LoadBalanceConfig
    from repro.runtime.kernels import KernelCostModel
    from repro.runtime.program import ProgramConfig, run_program

    graph, y0 = _scale_workload(tier, family, workload_seed)
    n = graph.num_vertices
    work_per_iter = KernelCostModel().sweep_seconds(int(graph.indices.size), n)
    horizon = iterations * work_per_iter / p
    cluster = elastic_cluster(p, scenario, horizon)
    config = ProgramConfig(
        iterations=iterations,
        backend=backend,
        initial_capabilities="equal",
        load_balance=(
            LoadBalanceConfig(check_interval=check_interval) if lb else None
        ),
    )
    t0 = time.perf_counter()
    report = run_program(graph, cluster, config, y0=y0)
    run_host_s = time.perf_counter() - t0
    final = report.partition_final
    return {
        "makespan": report.makespan,
        "num_remaps": float(report.num_remaps),
        "membership_events": float(report.membership_events),
        "remap_time": report.remap_time,
        "check_time": report.lb_check_time,
        "redistribute_host_s": max(
            s.redistribute_host_s for s in report.rank_stats
        ),
        "run_host_s": run_host_s,
        "final_active": float((final.sizes() > 0).sum()),
        "n_vertices": float(n),
    }


@experiment(
    "scale-elastic",
    title="Scale tier: elastic membership (join/leave/churn) mid-run",
    paper_anchor="ROADMAP (beyond Table 5; Sec. 1 adaptive taxonomy)",
    grid={
        "tier": ("10k", "100k", "250k", "500k"),
        "scenario": ("leave-at-peak", "join-midrun", "churn"),
        "backend": ("vectorized", "reference"),
        "lb": (True, False),
        "p": (4,),
        "iterations": (30,),
        "check_interval": (5,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "tier": ("10k",),
        "scenario": ("leave-at-peak", "join-midrun"),
        "backend": ("vectorized", "reference"),
        "lb": (True, False),
        "p": (4,),
        "iterations": (20,),
        "check_interval": (5,),
        "workload_seed": (1995,),
    },
    description="Machines join/leave the pool mid-run; mandatory drains, "
    "profitability-tested joins, vs the static (drain-only) baseline.",
    tags=("scale", "perf", "adaptive", "elastic"),
)
def _exp_scale_elastic(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    return scale_elastic_measurements(
        str(params["tier"]),
        str(params["scenario"]),
        str(params["backend"]),
        bool(params["lb"]),
        int(params["p"]),
        int(params["iterations"]),
        int(params["check_interval"]),
        workload_seed=int(params["workload_seed"]),
    )


# --------------------------------------------------------------------------
# Scale tier — unannounced-failure scenarios (a machine dies mid-run with
# its data; the resilience subsystem checkpoints to ring partners and
# rolls the world back on detection).


def scale_resilience_measurements(
    tier: str,
    scenario: str,
    backend: str,
    policy: str,
    p: int,
    iterations: int,
    check_interval: int,
    *,
    family: str = "grid",
    workload_seed: int = 1995,
    replication: int = 1,
) -> dict[str, float]:
    """One unannounced-failure run at a scale tier, through the session.

    *policy* is the ``--checkpoint`` DSL (``"interval:K"``), or the
    special value ``"cost"``, which instantiates
    :class:`~repro.runtime.resilience.CostModelCheckpoint` with the
    operator's honest failure-rate estimate for the scenario (the
    compute horizon divided by the number of failures in its trace) —
    the arm the checkpoint-interval sweep compares the fixed intervals
    against.  Virtual metrics are backend-independent by the
    differential contract; ``lost_time`` is the virtual progress each
    rollback discarded and re-executed, ``checkpoint_time`` the total
    replication overhead — the two sides of the trade the cost model
    navigates.  *replication* is the number of distinct ring successors
    holding each rank's checkpoint epoch (k-successor replication):
    higher k multiplies ``checkpoint_time`` but survives k correlated
    failures per ring neighborhood.
    """
    from repro.apps.workloads import resilient_cluster
    from repro.runtime.adaptive import LoadBalanceConfig
    from repro.runtime.kernels import KernelCostModel
    from repro.runtime.program import ProgramConfig, run_program
    from repro.runtime.resilience import CostModelCheckpoint

    graph, y0 = _scale_workload(tier, family, workload_seed)
    n = graph.num_vertices
    work_per_iter = KernelCostModel().sweep_seconds(int(graph.indices.size), n)
    horizon = iterations * work_per_iter / p
    cluster = resilient_cluster(p, scenario, horizon)
    assert cluster.membership is not None
    n_failures = sum(
        1 for ev in cluster.membership.events if ev.kind == "fail"
    )
    checkpoint = (
        CostModelCheckpoint(mtbf=horizon / max(n_failures, 1))
        if policy == "cost"
        else policy
    )
    config = ProgramConfig(
        iterations=iterations,
        backend=backend,
        initial_capabilities="equal",
        load_balance=LoadBalanceConfig(check_interval=check_interval),
        checkpoint=checkpoint,
        replication_factor=int(replication),
    )
    t0 = time.perf_counter()
    report = run_program(graph, cluster, config, y0=y0)
    run_host_s = time.perf_counter() - t0
    final = report.partition_final
    return {
        "makespan": report.makespan,
        "num_checkpoints": float(report.num_checkpoints),
        "num_rollbacks": float(report.num_rollbacks),
        "checkpoint_time": report.checkpoint_time,
        "rollback_time": report.rollback_time,
        "lost_time": report.lost_time,
        "num_remaps": float(report.num_remaps),
        "membership_events": float(report.membership_events),
        "redistribute_host_s": max(
            s.redistribute_host_s for s in report.rank_stats
        ),
        "run_host_s": run_host_s,
        "final_active": float((final.sizes() > 0).sum()),
        "n_vertices": float(n),
    }


@experiment(
    "scale-resilience",
    title="Scale tier: unannounced failures under checkpoint/recovery",
    paper_anchor="ROADMAP (beyond Sec. 1's adaptive taxonomy)",
    grid={
        "tier": ("10k", "100k", "250k", "500k"),
        "scenario": ("fail-at-peak", "repeated-failures"),
        "backend": ("vectorized",),
        "policy": ("interval:1", "interval:4", "interval:16", "cost"),
        "replication": (1, 2, 3),
        "p": (4,),
        "iterations": (30,),
        "check_interval": (5,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "tier": ("10k",),
        "scenario": ("fail-at-peak", "repeated-failures"),
        "backend": ("vectorized", "reference"),
        "policy": ("interval:4", "cost"),
        "replication": (1, 2),
        "p": (4,),
        "iterations": (20,),
        "check_interval": (5,),
        "workload_seed": (1995,),
    },
    description="Machines die unannounced mid-run; partner-replication "
    "checkpoints (k ring successors per epoch) vs rollback re-execution, "
    "fixed intervals vs the Young-style cost model.",
    tags=("scale", "perf", "adaptive", "resilience"),
)
def _exp_scale_resilience(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    return scale_resilience_measurements(
        str(params["tier"]),
        str(params["scenario"]),
        str(params["backend"]),
        str(params["policy"]),
        int(params["p"]),
        int(params["iterations"]),
        int(params["check_interval"]),
        workload_seed=int(params["workload_seed"]),
        replication=int(params["replication"]),
    )


# --------------------------------------------------------------------------
# scale-huge — incremental vs full inspector rebuild at 1M-10M vertices


@lru_cache(maxsize=1)
def _huge_workload(tier: str, workload_seed: int):
    """(graph, y0) for one huge-tier grid mesh.

    Cached separately from :func:`_scale_workload` with ``maxsize=1``:
    a 10M-vertex CSR is hundreds of MB, so at most one huge mesh lives
    at a time (put ``tier`` first in the grid so the cache actually
    hits across the p/backend axes).
    """
    import warnings

    from repro.graph.generators import scale_mesh

    with warnings.catch_warnings():
        # The 10m tier is not a perfect square; the near-target grid is
        # fine for a relative full-vs-incremental comparison.
        warnings.simplefilter("ignore", RuntimeWarning)
        graph = scale_mesh(tier, family="grid", seed=workload_seed)
    y0 = np.random.default_rng(workload_seed).uniform(
        0.0, 100.0, graph.num_vertices
    )
    return graph, y0


def _small_boundary_remap(old, p: int, n: int):
    """A remap of the kind phase D actually produces: every internal
    boundary shifts by ~0.5% of a block (alternating direction), owners
    unchanged — the small-diff regime the incremental path targets."""
    from repro.partition.intervals import IntervalPartition

    shift = max(n // (p * 200), 1)
    bounds = old.bounds.copy()
    for b in range(1, p):
        bounds[b] += shift if b % 2 else -shift
    return IntervalPartition(bounds, old.owners), shift


#: Remap events measured per rank: the partition oscillates between the
#: old and new boundaries, so every event is a small-boundary remap and
#: both modes see the identical sequence.  Multiple rounds measure the
#: sustained epoch-to-epoch regime the incremental path targets (one
#: instance patched across a session's successive remaps), not a single
#: cold rebuild.
_HUGE_ROUNDS = 4


def scale_huge_measurements(
    tier: str, p: int, backend: str, *, workload_seed: int = 1995
) -> dict[str, float]:
    """Incremental-vs-full Phase B across repeated small-boundary remaps.

    Ranks run **sequentially** (not SPMD) so peak memory stays one
    rank's working set above the shared mesh even at 10M x 128.  Each
    rank seeds an :class:`~repro.runtime.incremental.IncrementalInspector`
    on the old partition, then both modes process the same
    ``_HUGE_ROUNDS``-event remap sequence: a from-scratch
    ``run_inspector`` per event versus ``rebuild`` on the one live
    instance.  Every event's structures are checked array-for-array, and
    the first and last events' kernel-sweep values for bit-identity.
    """
    from repro.runtime.incremental import (
        IncrementalInspector,
        inspector_results_equal,
    )
    from repro.runtime.inspector import run_inspector
    from repro.partition.intervals import partition_list

    graph, y0 = _huge_workload(tier, workload_seed)
    n = graph.num_vertices
    old = partition_list(n, np.ones(p))
    new, shift = _small_boundary_remap(old, p, n)
    remaps = [new if i % 2 == 0 else old for i in range(_HUGE_ROUNDS)]

    full_s = 0.0
    incremental_s = 0.0
    patched_ranks = 0
    patch_virtual_s = 0.0
    results_match = True
    values_match = True
    ghost_total = 0
    for r in range(p):
        inc = IncrementalInspector(
            graph, old, r, strategy="sort2", backend=backend
        )
        fulls = []
        for part in remaps:
            t0 = time.perf_counter()
            fulls.append(
                run_inspector(graph, part, r, strategy="sort2", backend=backend)
            )
            full_s += time.perf_counter() - t0
        patched_events = 0
        patches = []
        for part in remaps:
            t0 = time.perf_counter()
            patches.append(inc.rebuild(part))
            incremental_s += time.perf_counter() - t0
            if inc.last_mode == "patched":
                patched_events += 1
                patch_virtual_s += inc.last_patch_cost
        if patched_events == len(remaps):
            patched_ranks += 1
        for i, (part, full, patched) in enumerate(zip(remaps, fulls, patches)):
            if not inspector_results_equal(patched, full):
                results_match = False
            if i not in (0, len(remaps) - 1):
                continue
            lo, hi = part.interval(r)
            v_full = full.kernel_plan.sweep(
                y0[lo:hi], y0[full.schedule.ghost_globals]
            )
            v_patch = patched.kernel_plan.sweep(
                y0[lo:hi], y0[patched.schedule.ghost_globals]
            )
            if not np.array_equal(v_full, v_patch):
                values_match = False
        ghost_total += patches[0].schedule.ghost_size
    return {
        "full_rebuild_s": full_s,
        "incremental_s": incremental_s,
        "speedup": full_s / max(incremental_s, 1e-12),
        "results_match": 1.0 if results_match else 0.0,
        "values_match": 1.0 if values_match else 0.0,
        "patched_ranks": float(patched_ranks),
        "patch_virtual_s": patch_virtual_s,
        "rounds": float(_HUGE_ROUNDS),
        "ghost_total": float(ghost_total),
        "boundary_shift": float(shift),
        "n_vertices": float(n),
        "n_edges": float(graph.num_edges),
    }


@experiment(
    "scale-huge",
    title="Huge tier: incremental vs full inspector rebuild, 1M-10M vertices",
    paper_anchor="ROADMAP (beyond Sec. 3's inspector)",
    grid={
        "tier": ("1m", "4m", "10m"),
        "p": (16, 64, 128),
        "backend": ("vectorized", "reference"),
        "workload_seed": (1995,),
    },
    quick_grid={
        "tier": ("1m",),
        "p": (16,),
        "backend": ("vectorized", "reference"),
        "workload_seed": (1995,),
    },
    higher_is_better=("speedup",),
    description="Phase B after a small-boundary remap: patch the cached "
    "schedule/plan vs rebuild from scratch, checking bit-identity of "
    "structures and sweep values at every rank.",
    tags=("scale", "perf"),
)
def _exp_scale_huge(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    return scale_huge_measurements(
        str(params["tier"]),
        int(params["p"]),
        str(params["backend"]),
        workload_seed=int(params["workload_seed"]),
    )


# --------------------------------------------------------------------------
# Ablation — choice of one-dimensional locality transformation

ORDERING_NAMES = ("rcb", "inertial", "spectral", "hilbert", "morton", "random")


def ordering_by_name(name: str, seed: int = 0):
    """Instantiate one of Sec. 3.1's ordering heuristics by short name."""
    from repro.partition.inertial import InertialOrdering
    from repro.partition.ordering import IdentityOrdering, RandomOrdering
    from repro.partition.rcb import RCBOrdering
    from repro.partition.sfc import HilbertOrdering, MortonOrdering
    from repro.partition.spectral import SpectralOrdering

    factories = {
        "rcb": RCBOrdering,
        "inertial": InertialOrdering,
        "spectral": lambda: SpectralOrdering(leaf_size=128),
        "hilbert": HilbertOrdering,
        "morton": MortonOrdering,
        "identity": IdentityOrdering,
        "random": lambda: RandomOrdering(seed=seed),
    }
    try:
        return factories[name]()
    except KeyError:
        known = ", ".join(sorted(factories))
        raise ReproError(f"unknown ordering {name!r}; known: {known}") from None


@experiment(
    "ablation_orderings",
    title="Ablation: 1-D locality transformations",
    paper_anchor="Sec. 3.1",
    grid={
        "ordering": ORDERING_NAMES,
        "n_vertices": (6_000,),
        "iterations": (10,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "ordering": ("rcb", "random"),
        "n_vertices": (800,),
        "iterations": (5,),
        "workload_seed": (1995,),
    },
    description="Cut quality of each ordering and its end-to-end makespan.",
)
def _exp_ablation_orderings(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    from repro.graph.metrics import cut_curve, mean_edge_span
    from repro.net.cluster import sun4_cluster
    from repro.runtime.program import ProgramConfig, run_program

    graph, y0 = _workload(
        int(params["n_vertices"]), int(params["workload_seed"])
    )
    method = ordering_by_name(str(params["ordering"]), seed)
    perm = method(graph)

    # Hand the already-computed permutation to run_program so expensive
    # orderings (spectral, inertial) are not recomputed inside the run.
    class _Precomputed:
        name = method.name

        def __call__(self, g):
            return perm

    report = run_program(
        graph,
        sun4_cluster(4),
        ProgramConfig(
            iterations=int(params["iterations"]), ordering=_Precomputed()
        ),
        y0=y0,
    )
    return {
        "mean_span": mean_edge_span(graph, perm),
        "cut16": float(cut_curve(graph, perm, (16,))[16]),
        "makespan": report.makespan,
    }


# --------------------------------------------------------------------------
# Ablation — load-balance check frequency (interval 0 = no load balancing)


@experiment(
    "ablation_check_frequency",
    title="Ablation: load-balance check frequency",
    paper_anchor="Sec. 3.5",
    grid={
        "interval": (0, 5, 10, 20, 40),
        "n_vertices": (6_000,),
        "iterations": (60,),
        "workload_seed": (1995,),
    },
    quick_grid={
        "interval": (0, 5),
        "n_vertices": (800,),
        "iterations": (20,),
        "workload_seed": (1995,),
    },
    description="Sweeps the check interval the paper fixes at 10.",
)
def _exp_ablation_check_frequency(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    interval = int(params["interval"])
    graph, y0 = _workload(
        int(params["n_vertices"]), int(params["workload_seed"])
    )
    report = adaptive_run(
        graph,
        y0,
        int(params["iterations"]),
        4,
        lb=interval > 0,
        check_interval=interval if interval > 0 else 10,
    )
    stats = report.rank_stats[0]
    return {
        "makespan": report.makespan,
        "num_checks": float(stats.num_checks),
        "num_remaps": float(stats.num_remaps),
        "check_time": report.lb_check_time,
        "remap_time": report.remap_time,
    }


# --------------------------------------------------------------------------
# Scale tier — the multi-tenant job service (repro.serve): a stream of
# programs co-scheduled over one shared cluster, each job's compute acting
# as the others' competing load.


def scale_service_measurements(
    jobs: int,
    policy: str,
    backend: str,
    shape: str,
    *,
    p: int = 8,
    stream_seed: int = 1995,
    admission_seed: int = 1,
) -> dict[str, float]:
    """One service run: a seeded job stream under one admission policy.

    The ``descending`` stream is the adversarial head-of-line case and
    runs space-shared (``max_tenants=1``): FIFO idles the remainder ranks
    behind each wide head job, which the seeded random permutation fixes.
    The other shapes run time-shared (``max_tenants=2``) so co-tenant
    compute flows through :class:`~repro.net.loadmodel.ServiceLoad` into
    every job's capability ratios.  All metrics are virtual, hence
    bit-identical across backends (the differential contract);
    ``checksum_sum`` aggregates the per-job value checksums, which are
    policy- and placement-invariant (no job lost or duplicated).
    """
    from repro.net import uniform_cluster
    from repro.serve import ServiceSession, generate_stream

    queue = generate_stream(shape, jobs, max_ranks=p, seed=stream_seed)
    max_tenants = 1 if shape == "descending" else 2
    session = ServiceSession(
        uniform_cluster(p, name="service-pool"),
        queue,
        policy=policy,
        seed=admission_seed,
        max_tenants=max_tenants,
        backend=backend,
    )
    t0 = time.perf_counter()
    report = session.run()
    host_s = time.perf_counter() - t0
    out = dict(report.metrics())
    out["max_tenants"] = float(max_tenants)
    out["checksum_sum"] = sum(r.checksum for r in report.records)
    out["run_host_s"] = host_s
    return out


@experiment(
    "scale-service",
    title="Scale tier: multi-tenant job service on one shared cluster",
    paper_anchor="Sec. 1, 3.5 (competing jobs as the adaptive environment)",
    grid={
        "jobs": (16, 24),
        "policy": ("fifo", "random", "sjf"),
        "backend": ("vectorized", "reference"),
        "shape": ("descending", "uniform"),
        "p": (8,),
        "stream_seed": (1995,),
        "admission_seed": (1,),
    },
    quick_grid={
        "jobs": (16,),
        "policy": ("fifo", "random", "sjf"),
        "backend": ("vectorized", "reference"),
        "shape": ("descending", "uniform"),
        "p": (8,),
        "stream_seed": (1995,),
        "admission_seed": (1,),
    },
    higher_is_better=("throughput", "jain_fairness"),
    description="Job streams co-scheduled under FIFO / seeded-random / "
    "SJF admission; each running job's compute is the others' competing "
    "load (ServiceLoad).",
    tags=("scale", "perf", "adaptive", "serve"),
)
def _exp_scale_service(
    params: Mapping[str, Any], *, seed: int
) -> dict[str, float]:
    return scale_service_measurements(
        int(params["jobs"]),
        str(params["policy"]),
        str(params["backend"]),
        str(params["shape"]),
        p=int(params["p"]),
        stream_seed=int(params["stream_seed"]),
        admission_seed=int(params["admission_seed"]),
    )
