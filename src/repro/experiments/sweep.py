"""Scenario-sweep engine: cluster size × load trace × ordering × graph family.

One command (``repro bench sweep --grid small``) exercises the full cross
product of environments the paper's Secs. 1 and 4 describe — dedicated,
nonuniform, and adaptive resources — over several graph families and 1-D
orderings, producing a single schema-versioned artifact with per-scenario
makespan/efficiency/LB metrics.  The sweeps are registered as ordinary
experiments (``sweep_small``, ``sweep_full``) so they also appear in
``repro bench list`` and compare through ``repro bench report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import ReproError
from repro.experiments.registry import register
from repro.experiments.runner import DEFAULT_RESULTS_DIR, run_experiment
from repro.experiments.spec import Experiment

__all__ = ["SCENARIO_GRIDS", "run_scenario", "run_sweep", "sweep_experiment"]

#: Named scenario grids.  "small" is the smoke scale (seconds); "full"
#: exercises every dimension and is meant for dedicated runs.
SCENARIO_GRIDS: dict[str, dict[str, tuple]] = {
    "small": {
        "cluster": (2, 4),
        "load": ("none", "constant"),
        "ordering": ("rcb", "random"),
        "graph": ("paper", "grid"),
        "n_vertices": (600,),
        "iterations": (8,),
    },
    "full": {
        "cluster": (2, 3, 4, 5),
        "load": ("none", "constant", "ramp", "walk"),
        "ordering": ("rcb", "hilbert", "random"),
        "graph": ("paper", "grid", "perturbed"),
        "n_vertices": (4000,),
        "iterations": (40,),
    },
}


def _make_graph(family: str, n_vertices: int, seed: int):
    from repro.graph.generators import grid_graph, paper_mesh, perturbed_grid_mesh

    if family == "paper":
        return paper_mesh(n_vertices, seed=seed)
    side = max(2, int(round(n_vertices ** 0.5)))
    if family == "grid":
        return grid_graph(side, side)
    if family == "perturbed":
        return perturbed_grid_mesh(side, side, seed=seed).graph
    raise ReproError(f"unknown graph family {family!r}")


def _make_cluster(load: str, p: int, seed: int):
    from repro.net.cluster import adaptive_cluster, sun4_cluster
    from repro.net.loadmodel import RampLoad, RandomWalkLoad

    if load == "none":
        return sun4_cluster(p)
    if load == "constant":
        return adaptive_cluster(p, loaded_rank=0, competing_load=2.0)
    if load == "ramp":
        # Competing work climbs from 0 to 2 processes over the first virtual
        # second on workstation 0 (the transition Sec. 1 calls "adaptive").
        return sun4_cluster(p).with_load(0, RampLoad(0.0, 1.0, 0.0, 2.0))
    if load == "walk":
        return sun4_cluster(p).with_load(
            0, RandomWalkLoad(horizon=30.0, dt=0.05, max_load=3.0, seed=seed)
        )
    raise ReproError(f"unknown load trace {load!r}")


def run_scenario(params: Mapping[str, Any], *, seed: int) -> dict[str, float]:
    """Run one sweep scenario; metrics cover time, efficiency, and LB activity."""
    from repro.experiments.catalog import ordering_by_name
    from repro.runtime.adaptive import LoadBalanceConfig
    from repro.runtime.efficiency import cluster_efficiency
    from repro.runtime.program import ProgramConfig, run_program

    p = int(params["cluster"])
    graph = _make_graph(str(params["graph"]), int(params["n_vertices"]), seed)
    cluster = _make_cluster(str(params["load"]), p, seed)
    adaptive = params["load"] != "none"
    iterations = int(params["iterations"])
    config = ProgramConfig(
        iterations=iterations,
        ordering=ordering_by_name(str(params["ordering"]), seed),
        initial_capabilities="equal" if adaptive else "speeds",
        load_balance=(
            LoadBalanceConfig(check_interval=max(2, iterations // 4))
            if adaptive
            else None
        ),
    )
    y0 = np.random.default_rng(seed).uniform(0.0, 100.0, graph.num_vertices)
    report = run_program(graph, cluster, config, y0=y0)
    return {
        "makespan": report.makespan,
        "efficiency": cluster_efficiency(
            cluster, report.makespan, report.total_work_seconds
        ),
        "num_remaps": float(report.num_remaps),
        "remap_time": report.remap_time,
        "lb_check_time": report.lb_check_time,
    }


def sweep_experiment(grid: str) -> Experiment:
    """The registered Experiment for one named scenario grid."""
    try:
        axes = SCENARIO_GRIDS[grid]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_GRIDS))
        raise ReproError(f"unknown sweep grid {grid!r}; known: {known}") from None
    return Experiment(
        name=f"sweep_{grid}",
        title=f"Scenario sweep ({grid} grid)",
        paper_anchor="Secs. 1, 4",
        fn=run_scenario,
        grid=axes,
        seed=2026,
        higher_is_better=("efficiency",),
        description=(
            "Cross product of cluster size, load trace, ordering, and graph "
            "family through the four-phase runtime."
        ),
        tags=("sweep",),
    )


for _grid in SCENARIO_GRIDS:
    register(sweep_experiment(_grid))


def run_sweep(
    grid: str = "small",
    *,
    results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> tuple[dict[str, Any], Path | None]:
    """Run every scenario of the named grid; returns ``(artifact, path)``."""
    exp = sweep_experiment(grid)
    return run_experiment(exp, results_dir=results_dir)
