"""Artifact comparison: diff two runs and emit a markdown regression report.

This is the harness's feedback loop: run a benchmark before and after a
change, then ``repro bench report old.json new.json`` renders per-metric
deltas and flags regressions.  Direction matters — most metrics (times,
cuts, costs) are lower-is-better, but an artifact's ``higher_is_better``
list inverts specific metrics (e.g. Table 4's efficiency).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.experiments.artifacts import load_artifact

__all__ = ["MetricDelta", "Comparison", "compare_artifacts", "compare_files"]

#: Relative change below which a delta counts as noise rather than a signal.
DEFAULT_THRESHOLD = 0.05


def _params_key(params: Mapping[str, Any]) -> str:
    """Canonical identity of one configuration (order-insensitive)."""
    return json.dumps(params, sort_keys=True, default=str)


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one configuration, old vs new."""

    params: dict[str, Any]
    metric: str
    old: float
    new: float
    #: Signed relative change, positive = metric value increased.
    rel_change: float
    #: "regression", "improvement", or "ok" (within threshold).
    status: str

    @property
    def params_label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.params.items()) or "-"


@dataclass
class Comparison:
    """Outcome of comparing two artifacts."""

    old_label: str
    new_label: str
    experiment: str
    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    #: Configurations present in only one artifact (params-key strings).
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def num_regressions(self) -> int:
        return len(self.regressions)

    def to_markdown(self) -> str:
        """Render the full comparison as a markdown report."""
        lines = [
            f"# Benchmark comparison: `{self.experiment}`",
            "",
            f"- old: `{self.old_label}`",
            f"- new: `{self.new_label}`",
            f"- threshold: ±{self.threshold:.0%} relative change",
            f"- **{self.num_regressions} regression(s)**, "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.deltas)} metric comparison(s)",
            "",
            "| configuration | metric | old | new | change | status |",
            "|---|---|---:|---:|---:|---|",
        ]
        order = {"regression": 0, "improvement": 1, "ok": 2}
        for d in sorted(
            self.deltas, key=lambda d: (order[d.status], -abs(d.rel_change))
        ):
            flag = {"regression": "**regression**", "improvement": "improvement",
                    "ok": "ok"}[d.status]
            change = (
                f"{d.rel_change:+.1%}" if math.isfinite(d.rel_change) else "n/a"
            )
            lines.append(
                f"| {d.params_label} | {d.metric} | {d.old:.6g} | {d.new:.6g} "
                f"| {change} | {flag} |"
            )
        for label, missing in (("old", self.only_new), ("new", self.only_old)):
            if missing:
                lines.append("")
                lines.append(
                    f"Configurations missing from the {label} artifact: "
                    + "; ".join(f"`{m}`" for m in missing)
                )
        lines.append("")
        return "\n".join(lines)


def _classify(old: float, new: float, *, higher_better: bool, threshold: float):
    """(rel_change, status) for one metric pair."""
    if old == new:
        return 0.0, "ok"
    if old == 0:
        rel = math.inf if new > 0 else -math.inf
    else:
        rel = (new - old) / abs(old)
    worsened = (rel > 0) != higher_better
    if abs(rel) <= threshold:
        return rel, "ok"
    return rel, ("regression" if worsened else "improvement")


def compare_artifacts(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    old_label: str = "old",
    new_label: str = "new",
) -> Comparison:
    """Compare two artifacts run-by-run (matched on parameters).

    The artifacts need not come from the same experiment (the report labels
    whatever it was given), but only configurations whose parameters match
    exactly are compared.
    """
    higher = set(old.get("higher_is_better", [])) | set(
        new.get("higher_is_better", [])
    )
    old_runs = {_params_key(r["params"]): r for r in old["runs"]}
    new_runs = {_params_key(r["params"]): r for r in new["runs"]}
    experiment = old.get("experiment", "?")
    if new.get("experiment") != experiment:
        experiment = f"{experiment} vs {new.get('experiment', '?')}"
    comparison = Comparison(
        old_label=old_label,
        new_label=new_label,
        experiment=experiment,
        threshold=threshold,
        only_old=sorted(set(old_runs) - set(new_runs)),
        only_new=sorted(set(new_runs) - set(old_runs)),
    )
    for key in old_runs.keys() & new_runs.keys():
        o, n = old_runs[key], new_runs[key]
        for metric in sorted(set(o["metrics"]) & set(n["metrics"])):
            rel, status = _classify(
                float(o["metrics"][metric]),
                float(n["metrics"][metric]),
                higher_better=metric in higher,
                threshold=threshold,
            )
            comparison.deltas.append(
                MetricDelta(
                    params=dict(o["params"]),
                    metric=metric,
                    old=float(o["metrics"][metric]),
                    new=float(n["metrics"][metric]),
                    rel_change=rel,
                    status=status,
                )
            )
    comparison.deltas.sort(key=lambda d: (_params_key(d.params), d.metric))
    return comparison


def compare_files(
    old_path: str | Path,
    new_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Load two artifact files and compare them."""
    return compare_artifacts(
        load_artifact(old_path),
        load_artifact(new_path),
        threshold=threshold,
        old_label=str(old_path),
        new_label=str(new_path),
    )
