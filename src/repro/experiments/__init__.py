"""Unified experiment harness: registry-driven, artifact-producing benchmarks.

This package turns the paper's evaluation into a reproducible surface
(see docs/benchmarks.md):

* :mod:`repro.experiments.spec` — the :class:`Experiment` declaration:
  name, paper anchor, parameter grid, seed policy;
* :mod:`repro.experiments.registry` — the flat experiment namespace with
  import-time self-registration and :func:`discover`;
* :mod:`repro.experiments.runner` — grid execution with wall-time and
  peak-RSS capture, writing schema-versioned ``results/<name>.json``;
* :mod:`repro.experiments.artifacts` — the artifact schema
  (``repro.experiments.run``/v1), validation, load/save;
* :mod:`repro.experiments.sweep` — the scenario-sweep engine (cluster size
  × load trace × ordering × graph family);
* :mod:`repro.experiments.report` — artifact diffing and the markdown
  regression report;
* :mod:`repro.experiments.catalog` — the registered experiments: Tables 1-5
  plus ablations.

CLI entry points: ``repro bench list | run | sweep | report``.
"""

from repro.experiments.artifacts import (
    SCHEMA,
    SCHEMA_VERSION,
    load_artifact,
    save_artifact,
    validate_artifact,
)
from repro.experiments.registry import all_experiments, discover, get, names, register
from repro.experiments.report import Comparison, compare_artifacts, compare_files
from repro.experiments.runner import DEFAULT_RESULTS_DIR, run_experiment
from repro.experiments.spec import Experiment, config_seed, expand_grid
from repro.experiments.sweep import SCENARIO_GRIDS, run_sweep

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "SCENARIO_GRIDS",
    "DEFAULT_RESULTS_DIR",
    "Comparison",
    "Experiment",
    "all_experiments",
    "compare_artifacts",
    "compare_files",
    "config_seed",
    "discover",
    "expand_grid",
    "get",
    "load_artifact",
    "names",
    "register",
    "run_experiment",
    "run_sweep",
    "save_artifact",
    "validate_artifact",
]
