"""The experiment runner: grid expansion, timing, RSS capture, artifacts.

For each configuration in an experiment's grid the runner derives the
deterministic per-configuration seed (:func:`~repro.experiments.spec.config_seed`),
calls the experiment's metrics function, and records wall time plus the
process's peak RSS.  The finished artifact (schema
``repro.experiments.run``/v1) is written to ``<results_dir>/<name>.json``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.experiments import artifacts, registry
from repro.experiments.spec import Experiment, config_seed

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "max_rss_kb",
    "run_experiment",
    "validate_overrides",
]

#: Artifacts land here unless the caller (CLI ``--results-dir``) overrides it.
DEFAULT_RESULTS_DIR = Path("results")


def max_rss_kb() -> float:
    """Peak resident-set size of this process in KiB (0.0 if unavailable).

    Uses :mod:`resource`, which is POSIX-only; on other platforms the metric
    degrades to 0 rather than failing the run.  Note ru_maxrss is a high-water
    mark, so per-run deltas understate runs that fit inside an earlier peak.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return usage / 1024.0
    return float(usage)


def _check_metrics(name: str, params: Mapping[str, Any], metrics: Any) -> dict:
    if not isinstance(metrics, Mapping) or not metrics:
        raise ReproError(
            f"experiment {name!r} returned {metrics!r} for {dict(params)}; "
            "metrics functions must return a non-empty mapping"
        )
    out: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(
                f"experiment {name!r} metric {key!r} is {value!r}; "
                "metrics must be plain numbers"
            )
        out[str(key)] = float(value)
    return out


def validate_overrides(
    exp: Experiment | str,
    overrides: Mapping[str, Any],
    *,
    quick: bool = False,
) -> None:
    """Reject override keys that are not axes of the selected grid.

    Only grid axes may be overridden: a stray key would be recorded in
    the artifact (and perturb the seed) without the experiment ever
    reading it, making the artifact lie about what ran.  The CLI calls
    this for every glob match *before* running anything, so one bad key
    cannot kill a multi-experiment run mid-loop; :func:`run_experiment`
    applies the same rule for direct callers.
    """
    if isinstance(exp, str):
        exp = registry.get(exp)
    axes = set(exp.configs(quick=quick)[0])
    unknown = sorted(set(overrides) - axes)
    if unknown:
        raise ReproError(
            f"unknown parameter(s) for experiment {exp.name!r}: "
            f"{', '.join(unknown)}; grid axes: {', '.join(sorted(axes))}"
        )


def run_experiment(
    exp: Experiment | str,
    *,
    quick: bool = False,
    overrides: Mapping[str, Any] | None = None,
    results_dir: str | Path | None = DEFAULT_RESULTS_DIR,
) -> tuple[dict[str, Any], Path | None]:
    """Run every configuration of *exp* and return ``(artifact, path)``.

    ``quick=True`` selects the experiment's reduced grid (smoke scale).
    *overrides* force parameter values onto every configuration (the CLI's
    ``--set key=value``); axes whose value is overridden collapse, so the
    expanded grid is deduplicated.  ``results_dir=None`` skips writing.
    """
    if isinstance(exp, str):
        exp = registry.get(exp)
    configs = exp.configs(quick=quick)
    if overrides:
        validate_overrides(exp, overrides, quick=quick)
        merged: list[dict[str, Any]] = []
        for cfg in configs:
            cfg = {**cfg, **overrides}
            if cfg not in merged:
                merged.append(cfg)
        configs = merged
    runs: list[dict[str, Any]] = []
    for params in configs:
        seed = config_seed(exp.seed, params)
        t0 = time.perf_counter()
        metrics = exp.fn(params, seed=seed)
        wall = time.perf_counter() - t0
        runs.append(
            {
                "params": dict(params),
                "seed": seed,
                "wall_s": wall,
                "max_rss_kb": max_rss_kb(),
                "metrics": _check_metrics(exp.name, params, metrics),
            }
        )
    artifact = artifacts.new_artifact(
        experiment=exp.name,
        title=exp.title,
        paper_anchor=exp.paper_anchor,
        runs=runs,
        quick=quick,
        base_seed=exp.seed,
        higher_is_better=exp.higher_is_better,
    )
    path: Path | None = None
    if results_dir is not None:
        # Quick artifacts get their own file so a smoke run never clobbers
        # a full-grid baseline sitting at results/<name>.json.
        stem = f"{exp.name}-quick" if quick else exp.name
        path = artifacts.save_artifact(artifact, Path(results_dir) / f"{stem}.json")
    return artifact, path
