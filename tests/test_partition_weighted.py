"""Tests for weighted contiguous partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.intervals import partition_list
from repro.partition.weighted import partition_weighted_list, weighted_imbalance


class TestPartitionWeightedList:
    def test_uniform_weights_match_count_split(self):
        w = np.ones(100)
        wp = partition_weighted_list(w, [0.5, 0.3, 0.2])
        cp = partition_list(100, [0.5, 0.3, 0.2])
        np.testing.assert_array_equal(wp.bounds, cp.bounds)

    def test_skewed_weights_shift_boundary(self):
        # All weight in the first 10 elements: an equal 2-way split puts
        # the boundary inside the heavy prefix.
        w = np.concatenate([np.full(10, 100.0), np.full(90, 1.0)])
        part = partition_weighted_list(w, [1.0, 1.0])
        lo0, hi0 = part.interval(0)
        assert hi0 <= 11  # first block ends within the heavy region

    def test_capability_proportionality(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(0.5, 2.0, 5000)
        caps = np.array([3.0, 1.0, 1.0])
        part = partition_weighted_list(w, caps)
        assert weighted_imbalance(part, w, caps) < 1.05

    def test_arrangement_respected(self):
        w = np.ones(60)
        part = partition_weighted_list(w, [2.0, 1.0], arrangement=[1, 0])
        assert part.interval(1) == (0, 20)
        assert part.interval(0) == (20, 60)

    def test_zero_weights_fall_back_to_counts(self):
        part = partition_weighted_list(np.zeros(40), [1.0, 3.0])
        np.testing.assert_array_equal(part.sizes(), [10, 30])

    def test_huge_single_element(self):
        # One element dwarfs everything: later blocks may be empty but the
        # partition stays valid and covers [0, n).
        w = np.ones(20)
        w[5] = 1e9
        part = partition_weighted_list(w, np.ones(4))
        assert part.num_elements == 20
        assert part.sizes().sum() == 20

    def test_rejects_negative_weights(self):
        with pytest.raises(PartitionError):
            partition_weighted_list(np.array([1.0, -1.0]), [1.0])

    def test_rejects_2d_weights(self):
        with pytest.raises(PartitionError):
            partition_weighted_list(np.ones((3, 2)), [1.0])

    @given(
        seed=st.integers(0, 100),
        n=st.integers(1, 1000),
        p=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants(self, seed, n, p):
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.0, 5.0, n)
        caps = rng.dirichlet(np.ones(p)) + 0.05
        part = partition_weighted_list(w, caps)
        assert part.num_elements == n
        assert part.num_processors == p
        assert part.sizes().sum() == n
        # Boundaries respect the prefix-sum rule within one element's weight.
        if w.sum() > 0:
            total = w.sum()
            fair = caps / caps.sum()
            for r in range(p):
                lo, hi = part.interval(r)
                share = w[lo:hi].sum() / total
                # Each block's share is within one max-element of fair.
                assert share <= fair[r] + (w.max() / total) + 1e-9


class TestWeightedImbalance:
    def test_perfect_balance(self):
        w = np.ones(100)
        part = partition_list(100, [1.0, 1.0])
        assert weighted_imbalance(part, w, [1.0, 1.0]) == pytest.approx(1.0)

    def test_detects_skew(self):
        w = np.concatenate([np.full(50, 10.0), np.full(50, 1.0)])
        part = partition_list(100, [1.0, 1.0])  # count-equal, weight-skewed
        assert weighted_imbalance(part, w, [1.0, 1.0]) > 1.5

    def test_validation(self):
        part = partition_list(10, [1.0, 1.0])
        with pytest.raises(PartitionError):
            weighted_imbalance(part, np.ones(5), [1.0, 1.0])
        with pytest.raises(PartitionError):
            weighted_imbalance(part, np.ones(10), [1.0])
        with pytest.raises(PartitionError):
            weighted_imbalance(part, np.zeros(10), [1.0, 1.0])
