"""Tests for message records, size estimation, and mailbox matching."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicationError, MailboxClosedError
from repro.net.mailbox import Mailbox
from repro.net.message import ANY_SOURCE, ANY_TAG, Message, payload_nbytes


def make_msg(src=0, dest=1, tag=5, payload="x", t=0.0, seq=0):
    return Message(src, dest, tag, payload, payload_nbytes(payload), t, t, seq)


class TestPayloadNbytes:
    def test_ndarray_exact(self):
        arr = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(arr) == 16 + 800

    def test_scalar(self):
        assert payload_nbytes(3.14) == 24
        assert payload_nbytes(7) == 24

    def test_none_header_only(self):
        assert payload_nbytes(None) == 16

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 20

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float64(1.0)) == 24

    def test_array_list(self):
        arrs = [np.zeros(10), np.zeros(5)]
        assert payload_nbytes(arrs) == 16 + 120

    def test_generic_object_pickled(self):
        assert payload_nbytes({"a": [1, 2, 3]}) > 16

    def test_unpicklable_fallback(self):
        assert payload_nbytes(lambda x: x) >= 16


class TestMessage:
    def test_rejects_negative_tag(self):
        with pytest.raises(ValueError):
            Message(0, 1, -2, None, 16, 0.0)

    def test_rejects_wildcard_endpoints(self):
        with pytest.raises(ValueError):
            Message(-1, 1, 0, None, 16, 0.0)


class TestMailbox:
    def test_exact_match(self):
        box = Mailbox(1)
        box.deposit(make_msg(src=0, tag=5))
        msg = box.receive(0, 5, timeout=1.0)
        assert msg.payload == "x"

    def test_wrong_dest_rejected(self):
        box = Mailbox(2)
        with pytest.raises(CommunicationError):
            box.deposit(make_msg(dest=1))

    def test_fifo_per_channel(self):
        box = Mailbox(1)
        box.deposit(make_msg(payload="first", seq=1))
        box.deposit(make_msg(payload="second", seq=2))
        assert box.receive(0, 5, timeout=1.0).payload == "first"
        assert box.receive(0, 5, timeout=1.0).payload == "second"

    def test_any_source(self):
        box = Mailbox(1)
        box.deposit(make_msg(src=3, seq=1))
        assert box.receive(ANY_SOURCE, 5, timeout=1.0).source == 3

    def test_any_tag(self):
        box = Mailbox(1)
        box.deposit(make_msg(tag=9, seq=1))
        assert box.receive(0, ANY_TAG, timeout=1.0).tag == 9

    def test_wildcard_takes_earliest(self):
        box = Mailbox(1)
        box.deposit(make_msg(src=4, tag=7, payload="early", seq=1))
        box.deposit(make_msg(src=2, tag=5, payload="late", seq=2))
        assert box.receive(ANY_SOURCE, ANY_TAG, timeout=1.0).payload == "early"

    def test_selective_receive_leaves_others(self):
        box = Mailbox(1)
        box.deposit(make_msg(src=0, tag=1, payload="a", seq=1))
        box.deposit(make_msg(src=0, tag=2, payload="b", seq=2))
        assert box.receive(0, 2, timeout=1.0).payload == "b"
        assert box.receive(0, 1, timeout=1.0).payload == "a"

    def test_timeout_raises(self):
        box = Mailbox(1)
        with pytest.raises(CommunicationError, match="timed out"):
            box.receive(0, 5, timeout=0.05)

    def test_probe(self):
        box = Mailbox(1)
        assert not box.probe()
        box.deposit(make_msg())
        assert box.probe()
        assert box.probe(0, 5)
        assert not box.probe(3, ANY_TAG)

    def test_pending_count(self):
        box = Mailbox(1)
        assert box.pending_count() == 0
        box.deposit(make_msg(seq=1))
        box.deposit(make_msg(tag=6, seq=2))
        assert box.pending_count() == 2

    def test_close_wakes_receiver(self):
        box = Mailbox(1)
        errors = []

        def blocked():
            try:
                box.receive(0, 5, timeout=5.0)
            except MailboxClosedError:
                errors.append("closed")

        t = threading.Thread(target=blocked)
        t.start()
        box.close()
        t.join(timeout=2.0)
        assert errors == ["closed"]

    def test_deposit_after_close_raises(self):
        box = Mailbox(1)
        box.close()
        with pytest.raises(MailboxClosedError):
            box.deposit(make_msg())

    def test_blocking_receive_gets_late_message(self):
        box = Mailbox(1)
        result = []

        def rx():
            result.append(box.receive(0, 5, timeout=5.0).payload)

        t = threading.Thread(target=rx)
        t.start()
        box.deposit(make_msg(payload="late-arrival"))
        t.join(timeout=2.0)
        assert result == ["late-arrival"]


class TestPackedArrays:
    """Per-peer message coalescing: several arrays, one wire payload."""

    def test_roundtrip_mixed_dtypes_and_shapes(self):
        from repro.net.message import pack_arrays, unpack_arrays

        arrays = [
            np.arange(7, dtype=np.float64),
            np.arange(12, dtype=np.intp).reshape(3, 4),
            np.empty(0, dtype=np.float32),
            np.array(5.0),
        ]
        out = unpack_arrays(pack_arrays(arrays))
        assert len(out) == len(arrays)
        for a, b in zip(arrays, out):
            assert a.dtype == b.dtype and a.shape == b.shape
            np.testing.assert_array_equal(a, b)

    def test_one_message_cheaper_than_k(self):
        """The coalesced payload costs one header, not one per array."""
        from repro.net.message import pack_arrays

        arrays = [np.zeros(10), np.zeros(20), np.zeros(30)]
        packed = payload_nbytes(pack_arrays(arrays))
        separate = sum(payload_nbytes(a) for a in arrays)
        assert packed < separate

    def test_unpack_rejects_non_packed(self):
        from repro.net.message import unpack_arrays

        with pytest.raises(TypeError):
            unpack_arrays(np.zeros(3))

    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 2**31),
        sizes=st.lists(st.integers(0, 9), min_size=1, max_size=6),
    )
    def test_roundtrip_with_zero_length_segments_property(self, seed, sizes):
        """Round-trip any mix of segment lengths — including zero.

        Zero-length fields are what an empty-interval rank (standby,
        drained, or failed under elastic membership / resilience) packs;
        the offset arithmetic must survive them at any position.
        """
        from repro.net.message import pack_arrays, unpack_arrays

        rng = np.random.default_rng(seed)
        dtypes = [np.float64, np.float32, np.intp, np.uint8]
        arrays = [
            rng.uniform(-1e6, 1e6, size=n).astype(dtypes[i % len(dtypes)])
            for i, n in enumerate(sizes)
        ]
        out = unpack_arrays(pack_arrays(arrays))
        assert len(out) == len(arrays)
        for a, b in zip(arrays, out):
            assert a.dtype == b.dtype and a.shape == b.shape
            np.testing.assert_array_equal(a, b)

    def test_all_segments_zero_length(self):
        from repro.net.message import pack_arrays, unpack_arrays

        arrays = [np.empty(0, dtype=np.float64), np.empty(0, dtype=np.intp)]
        out = unpack_arrays(pack_arrays(arrays))
        assert [o.size for o in out] == [0, 0]
        assert [o.dtype for o in out] == [np.float64, np.intp]

    def test_send_packed_recv_packed(self):
        from repro.net.cluster import uniform_cluster
        from repro.net.spmd import run_spmd

        fields = [np.arange(4, dtype=np.float64), np.ones((2, 3))]

        def fn(ctx):
            if ctx.rank == 0:
                ctx.send_packed(1, fields, tag=101)
                return None
            parts = ctx.recv_packed(0, tag=101)
            for a, b in zip(fields, parts):
                np.testing.assert_array_equal(a, b)
            return len(parts)

        res = run_spmd(uniform_cluster(2), fn)
        assert res.values[1] == 2

    def test_send_packed_is_one_message(self):
        from repro.net.cluster import uniform_cluster
        from repro.net.spmd import run_spmd

        def fn(ctx):
            if ctx.rank == 0:
                ctx.send_packed(1, [np.zeros(5), np.zeros(6)], tag=102)
            else:
                ctx.recv_packed(0, tag=102)

        res = run_spmd(uniform_cluster(2), fn, trace=True)
        assert res.trace.message_count() == 1


class TestMailboxLazyDeletion:
    """The O(1)-amortized matching path keeps wildcard/exact semantics."""

    def test_exact_then_wildcard_interleaved(self):
        box = Mailbox(1)
        msgs = [make_msg(src=s, tag=t, seq=i)
                for i, (s, t) in enumerate([(0, 5), (2, 5), (0, 6), (3, 5)])]
        for m in msgs:
            box.deposit(m)
        assert box.receive(0, 5) is msgs[0]          # exact: marks dead
        assert box.receive(ANY_SOURCE, 5) is msgs[1]  # skips the dead head
        assert box.pending_count() == 2
        assert box.receive(ANY_SOURCE, ANY_TAG) is msgs[2]
        assert box.receive(3, 5) is msgs[3]
        assert box.pending_count() == 0

    def test_probe_ignores_dead_entries(self):
        box = Mailbox(1)
        box.deposit(make_msg(src=0, tag=5, seq=1))
        box.deposit(make_msg(src=0, tag=7, seq=2))
        box.receive(0, 5)
        assert not box.probe(0, 5)
        assert box.probe(0, 7)

    def test_fifo_per_channel_preserved(self):
        box = Mailbox(1)
        first = make_msg(src=0, tag=5, seq=1)
        second = make_msg(src=0, tag=5, seq=2)
        box.deposit(first)
        box.deposit(second)
        assert box.receive(ANY_SOURCE, ANY_TAG) is first
        assert box.receive(0, 5) is second

    def test_burst_drain_in_arrival_order(self):
        box = Mailbox(1)
        msgs = [make_msg(src=i % 4, tag=9, seq=i) for i in range(64)]
        for m in msgs:
            box.deposit(m)
        drained = [box.receive(ANY_SOURCE, 9) for _ in range(64)]
        assert drained == msgs
        assert box.pending_count() == 0
