"""Tests for processor specs and cluster construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.cluster import (
    SUN4_SPEEDS,
    adaptive_cluster,
    heterogeneous_cluster,
    sun4_cluster,
    uniform_cluster,
)
from repro.net.loadmodel import ConstantLoad, NoLoad
from repro.net.network import SharedEthernet
from repro.net.processor import ProcessorSpec


class TestProcessorSpec:
    def test_defaults(self):
        p = ProcessorSpec()
        assert p.speed == 1.0
        assert isinstance(p.load, NoLoad)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            ProcessorSpec(speed=0.0)

    def test_effective_speed_with_load(self):
        p = ProcessorSpec(speed=2.0, load=ConstantLoad(1.0))
        assert p.effective_speed(0.0) == pytest.approx(1.0)

    def test_finish_time(self):
        p = ProcessorSpec(speed=0.5)
        assert p.finish_time(1.0, 2.0) == pytest.approx(5.0)

    def test_capacity(self):
        p = ProcessorSpec(speed=2.0, load=ConstantLoad(1.0))
        assert p.capacity(0.0, 3.0) == pytest.approx(3.0)

    def test_with_load_copies(self):
        p = ProcessorSpec(speed=1.5)
        q = p.with_load(ConstantLoad(2.0))
        assert isinstance(p.load, NoLoad)  # original untouched
        assert q.speed == 1.5
        assert q.effective_speed(0.0) == pytest.approx(0.5)


class TestClusterSpec:
    def test_uniform(self):
        cl = uniform_cluster(4, speed=2.0)
        assert cl.size == 4
        np.testing.assert_allclose(cl.speeds, 2.0)

    def test_uniform_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster(0)

    def test_heterogeneous_speeds(self):
        cl = heterogeneous_cluster([1.0, 0.5])
        np.testing.assert_allclose(cl.speeds, [1.0, 0.5])

    def test_capability_ratios_normalized(self):
        cl = heterogeneous_cluster([3.0, 1.0])
        np.testing.assert_allclose(cl.capability_ratios(), [0.75, 0.25])

    def test_capability_ratios_respond_to_load(self):
        cl = uniform_cluster(2).with_load(0, ConstantLoad(1.0))
        np.testing.assert_allclose(cl.capability_ratios(0.0), [1 / 3, 2 / 3])

    def test_subset(self):
        cl = heterogeneous_cluster([1.0, 0.8, 0.6])
        sub = cl.subset([0, 2])
        np.testing.assert_allclose(sub.speeds, [1.0, 0.6])

    def test_subset_rejects_bad_rank(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster(2).subset([0, 5])

    def test_subset_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster(2).subset([])

    def test_prefix(self):
        cl = sun4_cluster(5)
        np.testing.assert_allclose(cl.prefix(2).speeds, SUN4_SPEEDS[:2])

    def test_with_load_out_of_range(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster(2).with_load(9, ConstantLoad(1.0))

    def test_make_network_fresh_instances(self):
        cl = uniform_cluster(2, network_factory=SharedEthernet)
        n1, n2 = cl.make_network(), cl.make_network()
        assert n1 is not n2

    def test_sun4_speeds_descending(self):
        speeds = sun4_cluster(5).speeds
        assert all(a >= b for a, b in zip(speeds, speeds[1:]))

    def test_sun4_uses_ethernet(self):
        assert isinstance(sun4_cluster(3).make_network(), SharedEthernet)

    def test_sun4_bounds(self):
        with pytest.raises(ConfigurationError):
            sun4_cluster(6)
        with pytest.raises(ConfigurationError):
            sun4_cluster(0)

    def test_adaptive_cluster_load_placement(self):
        cl = adaptive_cluster(3, loaded_rank=1, competing_load=2.0)
        assert isinstance(cl.processors[1].load, ConstantLoad)
        assert isinstance(cl.processors[0].load, NoLoad)
        assert cl.processors[1].effective_speed(0.0) == pytest.approx(
            SUN4_SPEEDS[1] / 3.0
        )
