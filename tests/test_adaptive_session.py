"""Tests for the Phase D subsystem: strategies, the session, and the shims.

The tentpole contract of ISSUE 3: one ``AdaptiveSession`` code path serves
the program driver, the adaptive apps, and the benchmarks; strategies are
pluggable through a public protocol; and the pre-refactor import sites
keep working through deprecation shims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, LoadBalanceError
from repro.graph.generators import paper_mesh
from repro.net.cluster import adaptive_cluster, uniform_cluster
from repro.net.loadmodel import ConstantLoad
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.weighted import partition_weighted_list
from repro.runtime.adaptive import (
    AdaptiveSession,
    CentralizedStrategy,
    Decision,
    DistributedStrategy,
    LoadBalanceConfig,
    NoBalancing,
    RebalanceStrategy,
    make_strategy,
)
from repro.runtime.executor import gather
from repro.runtime.kernels import run_sequential
from repro.runtime.program import (
    ProgramConfig,
    ProgramReport,
    RankStats,
    run_program,
)


class TestMakeStrategy:
    def test_name_mapping(self):
        assert isinstance(make_strategy(None), NoBalancing)
        assert isinstance(make_strategy("off"), NoBalancing)
        assert isinstance(make_strategy("centralized"), CentralizedStrategy)
        assert isinstance(make_strategy("distributed"), DistributedStrategy)

    def test_config_resolves_through_style(self):
        cfg = LoadBalanceConfig(style="distributed")
        assert isinstance(make_strategy(cfg), DistributedStrategy)

    def test_instance_passes_through(self):
        strat = CentralizedStrategy(root=1)
        assert make_strategy(strat) is strat

    def test_unknown_name_rejected(self):
        with pytest.raises(LoadBalanceError):
            make_strategy("oracle")

    def test_strategies_satisfy_protocol(self):
        for strat in (CentralizedStrategy(), DistributedStrategy(),
                      NoBalancing()):
            assert isinstance(strat, RebalanceStrategy)

    def test_config_accepts_off_style(self):
        cfg = LoadBalanceConfig(style="off")
        assert isinstance(make_strategy(cfg), NoBalancing)


class TestNoBalancing:
    def test_check_never_remaps_and_sends_nothing(self):
        part = partition_list(100, np.ones(3))
        cfg = LoadBalanceConfig(style="off")

        def fn(ctx):
            decision = NoBalancing().check(ctx, part, 1e-4, 50, cfg)
            assert isinstance(decision, Decision)
            assert not decision.remap
            return ctx.clock

        res = run_spmd(uniform_cluster(3), fn, trace=True)
        assert res.trace.message_count() == 0
        assert all(c == 0.0 for c in res.values)


def _session_loop(graph, y0, cluster, iterations, lb):
    """A minimal Fig. 8 loop driven entirely by AdaptiveSession."""
    n = graph.num_vertices

    def rank_main(ctx):
        session = AdaptiveSession(
            ctx,
            graph,
            partition_list(n, np.ones(ctx.size)),
            total_iterations=iterations,
            lb=lb,
        )
        lo, hi = session.interval()
        local = y0[lo:hi].copy()
        for it in range(iterations):
            ghost = gather(ctx, session.schedule, local)
            t0 = ctx.clock
            local = session.kernel_plan.sweep(local, ghost)
            ctx.compute(1e-5 * local.size, label="kernel")
            session.record(ctx.clock - t0, int(local.size))
            ctx.barrier()
            (local,) = session.maybe_rebalance(it, (local,))
        pieces = ctx.gather((session.interval()[0], local), root=0)
        full = None
        if ctx.rank == 0:
            full = np.empty(n)
            for piece_lo, data in pieces:
                full[piece_lo : piece_lo + data.size] = data
        return {
            "full": full,
            "stats": session.stats,
            "partition": session.partition,
        }

    return run_spmd(cluster, rank_main)


class TestAdaptiveSession:
    @pytest.fixture(scope="class")
    def workload(self):
        graph = paper_mesh(500, seed=5)
        y0 = np.random.default_rng(5).uniform(0, 100, graph.num_vertices)
        return graph, y0

    def test_no_balancing_session_is_inert(self, workload):
        graph, y0 = workload
        res = _session_loop(graph, y0, uniform_cluster(3), 12, None)
        for v in res.values:
            stats = v["stats"]
            assert stats.num_checks == 0
            assert stats.num_remaps == 0
            assert stats.lb_check_time == 0.0
            assert stats.remap_time == 0.0

    @pytest.mark.parametrize("style", ["centralized", "distributed"])
    def test_loaded_cluster_triggers_consistent_remaps(self, workload, style):
        graph, y0 = workload
        cluster = uniform_cluster(3).with_load(0, ConstantLoad(2.0))
        lb = LoadBalanceConfig(check_interval=4, style=style)
        res = _session_loop(graph, y0, cluster, 24, lb)
        remap_counts = {v["stats"].num_remaps for v in res.values}
        assert len(remap_counts) == 1  # collective decisions, all ranks agree
        assert remap_counts.pop() >= 1
        # The remap moved work off the loaded machine.
        final = res.values[0]["partition"]
        sizes = final.sizes()
        assert sizes[0] < max(sizes)
        # And never changed the numerics.
        oracle = run_sequential(graph, y0, 24)
        np.testing.assert_allclose(res.values[0]["full"], oracle, atol=1e-9)

    def test_string_lb_forms(self, workload):
        graph, y0 = workload
        res = _session_loop(graph, y0, uniform_cluster(2), 6, "off")
        assert all(v["stats"].num_checks == 0 for v in res.values)

    def test_remap_to_moves_multiple_fields(self, workload):
        graph, y0 = workload
        n = graph.num_vertices
        weights = np.ones(n)
        weights[: n // 4] = 5.0  # concentrate work at the left edge
        aux = np.arange(n, dtype=np.float64)

        def rank_main(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=4,
            )
            lo, hi = session.interval()
            local, extra = y0[lo:hi].copy(), aux[lo:hi].copy()
            new_part = partition_weighted_list(weights, np.ones(ctx.size))
            local, extra = session.remap_to(new_part, (local, extra))
            nlo, nhi = session.interval()
            np.testing.assert_array_equal(local, y0[nlo:nhi])
            np.testing.assert_array_equal(extra, aux[nlo:nhi])
            return session.stats.num_remaps

        res = run_spmd(uniform_cluster(3), rank_main)
        assert res.values == [1, 1, 1]

    def test_rejects_bad_iterations(self, workload):
        graph, _ = workload

        def rank_main(ctx):
            AdaptiveSession(
                ctx, graph, partition_list(graph.num_vertices, np.ones(1)),
                total_iterations=0,
            )

        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(1), rank_main)


class TestProgramIntegration:
    def test_program_config_normalizes_string_styles(self):
        cfg = ProgramConfig(load_balance="distributed")
        assert isinstance(cfg.load_balance, LoadBalanceConfig)
        assert cfg.load_balance.style == "distributed"
        assert ProgramConfig(load_balance="off").load_balance is None
        with pytest.raises(ConfigurationError):
            ProgramConfig(load_balance="oracle")

    def test_distributed_style_matches_centralized_decisions(self):
        graph = paper_mesh(400, seed=9)
        y0 = np.random.default_rng(9).uniform(0, 100, graph.num_vertices)
        cluster = adaptive_cluster(3, competing_load=2.0)
        reports = {
            style: run_program(
                graph,
                cluster,
                ProgramConfig(
                    iterations=20,
                    initial_capabilities="equal",
                    load_balance=LoadBalanceConfig(
                        check_interval=5, style=style
                    ),
                ),
                y0=y0,
            )
            for style in ("centralized", "distributed")
        }
        # Same deterministic decision function on the same monitored loads:
        # both styles remap identically (they differ only in protocol cost).
        assert (
            reports["centralized"].num_remaps
            == reports["distributed"].num_remaps
            >= 1
        )
        np.testing.assert_array_equal(
            reports["centralized"].partition_final.bounds,
            reports["distributed"].partition_final.bounds,
        )
        np.testing.assert_array_equal(
            reports["centralized"].values, reports["distributed"].values
        )

    def test_num_remaps_aggregates_and_raises_on_desync(self):
        def report_with(counts):
            return ProgramReport(
                values=np.zeros(4),
                makespan=1.0,
                clocks=[1.0] * len(counts),
                rank_stats=[
                    RankStats(rank=r, n_local_final=2, num_remaps=c)
                    for r, c in enumerate(counts)
                ],
                cluster=uniform_cluster(len(counts)),
                config=ProgramConfig(),
                work_per_iteration=1.0,
            )

        assert report_with([3, 3, 3]).num_remaps == 3
        with pytest.raises(LoadBalanceError, match="desynchronized"):
            report_with([3, 2, 3]).num_remaps


class TestDynamicLoadScenarios:
    def test_cluster_traces_follow_scenarios(self):
        from repro.apps.workloads import DYNAMIC_SCENARIOS, dynamic_load_cluster

        horizon = 100.0
        onset = dynamic_load_cluster(4, "onset", horizon)
        trace = onset.processors[0].load
        assert trace.load_at(0.0) == 0.0
        assert trace.load_at(0.3 * horizon) > 0
        assert trace.load_at(0.9 * horizon) == 0.0

        hotspot = dynamic_load_cluster(4, "hotspot", horizon)
        for rank in range(4):
            mid = (rank + 0.5) * horizon / 4
            assert hotspot.processors[rank].load.load_at(mid) > 0

        ramp = dynamic_load_cluster(4, "ramp", horizon)
        r = ramp.processors[0].load
        assert r.load_at(0.1 * horizon) < r.load_at(0.6 * horizon)

        assert set(DYNAMIC_SCENARIOS) == {"onset", "hotspot", "ramp"}
        with pytest.raises(ValueError):
            dynamic_load_cluster(4, "tsunami", horizon)
        with pytest.raises(ValueError):
            dynamic_load_cluster(4, "onset", 0.0)

    def test_scale_adaptive_measurement_remaps(self):
        from repro.experiments.catalog import scale_adaptive_measurements

        m = scale_adaptive_measurements(
            "10k", "hotspot", "vectorized", "centralized", 4, 20, 5
        )
        assert m["num_remaps"] >= 1
        assert m["makespan"] > 0
        assert m["redistribute_host_s"] > 0
        assert m["check_time"] < m["remap_time"]


class TestReviewFixes:
    """Regression tests for the pluggable-strategy and pricing edges."""

    def test_caller_supplied_strategy_without_config_still_balances(self):
        graph = paper_mesh(500, seed=5)
        y0 = np.random.default_rng(5).uniform(0, 100, graph.num_vertices)
        n = graph.num_vertices
        cluster = uniform_cluster(3).with_load(0, ConstantLoad(2.0))

        def rank_main(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=24,
                strategy=CentralizedStrategy(),  # no lb config supplied
            )
            lo, hi = session.interval()
            local = y0[lo:hi].copy()
            for it in range(24):
                ghost = gather(ctx, session.schedule, local)
                t0 = ctx.clock
                local = session.kernel_plan.sweep(local, ghost)
                ctx.compute(1e-5 * local.size, label="kernel")
                session.record(ctx.clock - t0, int(local.size))
                ctx.barrier()
                (local,) = session.maybe_rebalance(it, (local,))
            return session.stats

        res = run_spmd(cluster, rank_main)
        assert all(s.num_checks > 0 for s in res.values)
        assert all(s.num_remaps >= 1 for s in res.values)

    def test_remap_cost_scales_with_num_fields(self):
        """The profitability test prices every field the exchange ships."""
        from repro.runtime.adaptive import decide

        part = partition_list(10_000, np.ones(2))
        times = np.array([4e-4, 1e-4])  # rank 0 heavily loaded

        def fn(ctx):
            one = decide(ctx, part, times, 100, LoadBalanceConfig())
            three = decide(
                ctx, part, times, 100, LoadBalanceConfig(num_fields=3)
            )
            assert three.remap_cost > one.remap_cost
            return one.remap_cost, three.remap_cost

        run_spmd(uniform_cluster(2), fn)

    def test_config_rejects_bad_num_fields(self):
        with pytest.raises(LoadBalanceError):
            LoadBalanceConfig(num_fields=0)


class TestDynamicRunDeterminism:
    def test_scale_adaptive_virtual_metrics_backend_independent(self):
        """Virtual metrics of a dynamic-load run are bit-identical across
        backends AND reruns: recv_expected charges receives in virtual-
        arrival order, so host thread scheduling cannot leak into them."""
        from repro.experiments.catalog import scale_adaptive_measurements

        runs = [
            scale_adaptive_measurements(
                "10k", "onset", backend, "centralized", 4, 20, 5
            )
            for backend in ("vectorized", "reference", "vectorized")
        ]
        for key in ("makespan", "num_remaps", "remap_time", "check_time"):
            assert len({r[key] for r in runs}) == 1, key


class TestSessionEdgeCases:
    def test_explicit_off_wins_over_supplied_strategy(self):
        graph = paper_mesh(300, seed=2)
        n = graph.num_vertices

        def rank_main(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=10,
                lb="off",
                strategy=CentralizedStrategy(),
            )
            assert isinstance(session.strategy, NoBalancing)
            assert not session.check_due(4)
            return True

        assert all(run_spmd(uniform_cluster(2), rank_main).values)

    def test_maybe_rebalance_with_no_fields_survives_check(self):
        """A session driving a kernel with no movable per-vertex state can
        still run checks (and remap ownership) without crashing."""
        graph = paper_mesh(300, seed=2)
        n = graph.num_vertices
        cluster = uniform_cluster(2).with_load(0, ConstantLoad(2.0))

        def rank_main(ctx):
            session = AdaptiveSession(
                ctx,
                graph,
                partition_list(n, np.ones(ctx.size)),
                total_iterations=12,
                lb=LoadBalanceConfig(check_interval=3),
            )
            for it in range(12):
                ctx.compute(1e-5 * session.partition.sizes()[ctx.rank])
                session.record(
                    1e-5 * session.partition.sizes()[ctx.rank],
                    int(session.partition.sizes()[ctx.rank]),
                )
                ctx.barrier()
                out = session.maybe_rebalance(it, ())
                assert out == []
            return session.stats.num_checks

        res = run_spmd(cluster, rank_main)
        assert all(c > 0 for c in res.values)
