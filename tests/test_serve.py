"""Tests for the multi-tenant job service (:mod:`repro.serve`).

Covers the JSONL job schema, the canonical seeded streams, admission
ordering and gang placement, the :class:`ServiceLoad` interval algebra,
the service session's event loop (head-of-line blocking, co-tenant
coupling), the backend differential contract on service metrics, and a
hypothesis test that admission-policy permutations conserve total work —
no job lost, duplicated, or numerically altered by reordering.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigurationError
from repro.net.cluster import uniform_cluster
from repro.net.loadmodel import ConstantLoad, MembershipEvent, MembershipTrace, ServiceLoad
from repro.serve import (
    ADMISSION_POLICIES,
    JobQueue,
    JobSpec,
    ServiceSession,
    admission_order,
    generate_stream,
    place_job,
)


def _job(job_id: str, *, ranks: int = 1, vertices: int = 48,
         iterations: int = 2, **kw) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        vertices=vertices,
        iterations=iterations,
        ranks=ranks,
        **kw,
    )


# --------------------------------------------------------------------- #
# ServiceLoad interval algebra
# --------------------------------------------------------------------- #


class TestServiceLoad:
    def test_single_interval(self):
        load = ServiceLoad([(1.0, 3.0, 1.0)])
        assert load.load_at(0.5) == 0.0
        assert load.load_at(1.0) == 1.0
        assert load.load_at(2.9) == 1.0
        assert load.load_at(3.0) == 0.0

    def test_overlapping_intervals_sum(self):
        load = ServiceLoad([(0.0, 4.0, 1.0), (2.0, 6.0, 2.0)])
        assert load.load_at(1.0) == 1.0
        assert load.load_at(3.0) == 3.0
        assert load.load_at(5.0) == 2.0
        assert load.load_at(7.0) == 0.0

    def test_origin_shifts_and_clips(self):
        # Interval (1, 5) seen from origin 2: already running at local 0,
        # ends at local 3.  Interval (0, 2) is over by the origin: gone.
        load = ServiceLoad([(1.0, 5.0, 1.0), (0.0, 2.0, 1.0)], origin=2.0)
        assert load.load_at(0.0) == 1.0
        assert load.load_at(2.9) == 1.0
        assert load.load_at(3.0) == 0.0

    def test_empty_intervals_is_no_load(self):
        load = ServiceLoad([])
        assert load.load_at(0.0) == 0.0
        assert load.load_at(100.0) == 0.0

    def test_zero_length_or_zero_load_dropped(self):
        load = ServiceLoad([(1.0, 1.0, 5.0), (2.0, 3.0, 0.0)])
        assert load.load_at(1.0) == 0.0
        assert load.load_at(2.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="end >= start"):
            ServiceLoad([(2.0, 1.0, 1.0)])
        with pytest.raises(ValueError, match="load"):
            ServiceLoad([(0.0, 1.0, -1.0)])
        with pytest.raises(ValueError, match="origin"):
            ServiceLoad([(0.0, 1.0, 1.0)], origin=-0.5)

    def test_mean_load_integrates(self):
        load = ServiceLoad([(0.0, 2.0, 1.0)])
        assert load.mean_load(0.0, 4.0) == pytest.approx(0.5)


# --------------------------------------------------------------------- #
# JobSpec / JobQueue schema
# --------------------------------------------------------------------- #


class TestJobSpec:
    def test_round_trip(self):
        job = _job("alpha", ranks=3, priority=2, strategy="sort1",
                   load_balance="distributed", check_interval=2)
        again = JobSpec.from_json(job.to_json())
        assert again == job

    def test_dict_includes_schema_version(self):
        assert _job("a").to_dict()["schema_version"] == 1

    def test_unsupported_schema_version(self):
        data = _job("a").to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version 99"):
            JobSpec.from_dict(data)

    def test_unknown_field_rejected(self):
        data = _job("a").to_dict()
        data["colour"] = "blue"
        with pytest.raises(ConfigurationError, match="colour"):
            JobSpec.from_dict(data)

    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            JobSpec.from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            JobSpec.from_dict([1, 2, 3])  # type: ignore[arg-type]

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"job_id": ""}, "non-empty"),
            ({"vertices": 8}, "16 vertices"),
            ({"iterations": 0}, "1 iteration"),
            ({"ranks": 0}, "1 rank"),
            ({"strategy": "magic"}, "strategy"),
            ({"load_balance": "psychic"}, "load-balance"),
            ({"check_interval": 0}, "check_interval"),
        ],
    )
    def test_validation(self, kwargs, match):
        base = dict(job_id="a", vertices=48, iterations=2, ranks=1)
        base.update(kwargs)
        with pytest.raises(ConfigurationError, match=match):
            JobSpec(**base)

    def test_work_estimate(self):
        assert _job("a", vertices=100, iterations=3).work_estimate() == 300.0


class TestJobQueue:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate job_id"):
            JobQueue([_job("x"), _job("x")])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            JobQueue([])

    def test_jsonl_round_trip_with_comments(self):
        queue = JobQueue([_job("a", ranks=2), _job("b")])
        text = "# stream header\n\n" + queue.to_jsonl()
        again = JobQueue.from_jsonl(text)
        assert again.jobs == queue.jobs

    def test_jsonl_error_names_line(self):
        text = _job("a").to_json() + "\n{broken\n"
        with pytest.raises(ConfigurationError, match="line 2"):
            JobQueue.from_jsonl(text)

    def test_jsonl_all_comments_rejected(self):
        with pytest.raises(ConfigurationError, match="no jobs"):
            JobQueue.from_jsonl("# nothing\n\n# here\n")

    def test_aggregates(self):
        queue = JobQueue([
            _job("a", ranks=3, vertices=48, iterations=2),
            _job("b", ranks=1, vertices=32, iterations=3),
        ])
        assert queue.max_width() == 3
        assert queue.total_work() == 48 * 2 + 32 * 3
        assert len(queue) == 2


class TestGenerateStream:
    def test_deterministic_per_seed(self):
        a = generate_stream("uniform", 6, max_ranks=4, seed=7)
        b = generate_stream("uniform", 6, max_ranks=4, seed=7)
        assert a.to_jsonl() == b.to_jsonl()
        c = generate_stream("uniform", 6, max_ranks=4, seed=8)
        assert a.to_jsonl() != c.to_jsonl()

    def test_unknown_shape(self):
        with pytest.raises(ConfigurationError, match="stream shape"):
            generate_stream("spiral", 4, max_ranks=4)

    @pytest.mark.parametrize("shape", ["uniform", "descending", "mixed"])
    def test_widths_bounded_and_ids_unique(self, shape):
        queue = generate_stream(shape, 12, max_ranks=5, seed=3)
        assert len(queue) == 12
        assert all(1 <= job.ranks <= 5 for job in queue)
        assert len({job.job_id for job in queue}) == 12

    def test_descending_is_the_fifo_worst_case(self):
        queue = generate_stream("descending", 12, max_ranks=8)
        widths = [job.ranks for job in queue]
        works = [job.work_estimate() for job in queue]
        assert widths == sorted(widths, reverse=True)
        assert works == sorted(works, reverse=True)
        # Consecutive wide jobs cannot co-run: head-of-line blocking
        # idles the remainder ranks, which is the whole point.
        assert widths[0] + widths[1] > 8

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError, match="n_jobs"):
            generate_stream("uniform", 0, max_ranks=4)
        with pytest.raises(ConfigurationError, match="max_ranks"):
            generate_stream("uniform", 4, max_ranks=0)


# --------------------------------------------------------------------- #
# Admission order and placement
# --------------------------------------------------------------------- #


class TestAdmissionOrder:
    def _jobs(self):
        return [
            _job("big", vertices=96, iterations=4),
            _job("small", vertices=32, iterations=2),
            _job("mid", vertices=64, iterations=2),
        ]

    def test_fifo_keeps_submission_order(self):
        order = admission_order(self._jobs(), "fifo")
        assert [j.job_id for j in order] == ["big", "small", "mid"]

    def test_sjf_sorts_by_work(self):
        order = admission_order(self._jobs(), "sjf")
        assert [j.job_id for j in order] == ["small", "mid", "big"]

    def test_sjf_ties_break_by_submission(self):
        jobs = [_job("a"), _job("b"), _job("c")]
        order = admission_order(jobs, "sjf")
        assert [j.job_id for j in order] == ["a", "b", "c"]

    def test_random_is_a_deterministic_permutation(self):
        jobs = self._jobs()
        once = admission_order(jobs, "random", seed=5)
        again = admission_order(jobs, "random", seed=5)
        assert [j.job_id for j in once] == [j.job_id for j in again]
        assert sorted(j.job_id for j in once) == ["big", "mid", "small"]

    def test_random_seeds_differ(self):
        jobs = [_job(f"j{i}") for i in range(8)]
        orders = {
            tuple(j.job_id for j in admission_order(jobs, "random", seed=s))
            for s in range(6)
        }
        assert len(orders) > 1

    def test_priority_classes_dominate_every_policy(self):
        jobs = [
            _job("steerage", vertices=32),
            _job("first-class", vertices=96, priority=1),
        ]
        for policy in ADMISSION_POLICIES:
            order = admission_order(jobs, policy, seed=0)
            assert order[0].job_id == "first-class"

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="admission policy"):
            admission_order(self._jobs(), "psychic")


class TestPlaceJob:
    def test_prefers_least_loaded_ranks(self):
        placement = place_job(_job("a", ranks=2), [1, 0, 0, 1], 2)
        assert placement == (1, 2)

    def test_gang_or_nothing(self):
        # Three ranks wanted, only two free slots: refuse, don't shrink.
        assert place_job(_job("a", ranks=3), [0, 0, 1], 1) is None

    def test_full_cluster_refuses(self):
        assert place_job(_job("a"), [1, 1], 1) is None

    def test_time_sharing_stacks_tenants(self):
        assert place_job(_job("a"), [1, 1], 2) == (0,)

    def test_wider_than_cluster_raises(self):
        with pytest.raises(ConfigurationError, match="requests 4 ranks"):
            place_job(_job("a", ranks=4), [0, 0], 1)


# --------------------------------------------------------------------- #
# Service session behavior
# --------------------------------------------------------------------- #


def _run(jobs, *, size=2, policy="fifo", seed=0, max_tenants=1,
         backend=None):
    session = ServiceSession(
        uniform_cluster(size, name="test-pool"),
        JobQueue(jobs),
        policy=policy,
        seed=seed,
        max_tenants=max_tenants,
        backend=backend,
    )
    return session.run()


class TestServiceSession:
    def test_bad_policy(self):
        with pytest.raises(ConfigurationError, match="admission policy"):
            ServiceSession(
                uniform_cluster(2), JobQueue([_job("a")]), policy="psychic"
            )

    def test_bad_max_tenants(self):
        with pytest.raises(ConfigurationError, match="max_tenants"):
            ServiceSession(
                uniform_cluster(2), JobQueue([_job("a")]), max_tenants=0
            )

    def test_job_wider_than_cluster(self):
        with pytest.raises(ConfigurationError, match="wide"):
            ServiceSession(uniform_cluster(2), JobQueue([_job("wide", ranks=3)]))

    def test_membership_cluster_rejected(self):
        trace = MembershipTrace(2, [MembershipEvent(1.0, "leave", 1)])
        cluster = uniform_cluster(2).with_membership(trace)
        with pytest.raises(ConfigurationError, match="membership"):
            ServiceSession(cluster, JobQueue([_job("a")]))

    def test_every_job_served_exactly_once(self):
        jobs = [_job(f"j{i}", ranks=1 + i % 2) for i in range(5)]
        report = _run(jobs, size=3, max_tenants=2)
        served = [r.job.job_id for r in report.records]
        assert sorted(served) == sorted(j.job_id for j in jobs)
        assert all(r.finished > r.admitted for r in report.records)
        assert all(r.queue_wait >= 0.0 for r in report.records)

    def test_head_of_line_blocking_on_dedicated_ranks(self):
        # A two-rank job owns the whole pool; both narrow jobs behind it
        # must wait for its completion even though rank 1 alone could
        # have hosted one of them the whole time.
        jobs = [
            _job("wide", ranks=2, vertices=96, iterations=3),
            _job("n1"),
            _job("n2"),
        ]
        report = _run(jobs, size=2, max_tenants=1)
        by_id = {r.job.job_id: r for r in report.records}
        assert by_id["wide"].admitted == 0.0
        assert by_id["n1"].admitted == by_id["wide"].finished
        assert by_id["n2"].admitted == by_id["wide"].finished
        assert by_id["n1"].queue_wait > 0.0

    def test_sjf_reorders_the_same_stream(self):
        jobs = [
            _job("wide", ranks=2, vertices=96, iterations=3),
            _job("n1"),
            _job("n2"),
        ]
        report = _run(jobs, size=2, policy="sjf", max_tenants=1)
        by_id = {r.job.job_id: r for r in report.records}
        assert by_id["n1"].admitted == 0.0
        assert by_id["n2"].admitted == 0.0
        assert by_id["wide"].queue_wait > 0.0

    def test_co_tenant_slows_execution(self):
        # Alone, the job runs at full speed; sharing its single rank
        # with an earlier tenant, its ServiceLoad halves the rate.
        solo = _run([_job("only", vertices=64, iterations=3)], size=1)
        both = _run(
            [
                _job("first", vertices=96, iterations=4),
                _job("only", vertices=64, iterations=3),
            ],
            size=1,
            max_tenants=2,
        )
        solo_exec = solo.records[0].exec_makespan
        shared = {r.job.job_id: r for r in both.records}
        assert shared["only"].admitted == 0.0  # co-admitted, not queued
        assert shared["only"].exec_makespan > solo_exec

    def test_checksums_invariant_under_policy(self):
        jobs = [_job(f"j{i}", vertices=32 + 16 * i, ranks=1 + i % 2)
                for i in range(4)]
        sums = {}
        for policy in ADMISSION_POLICIES:
            report = _run(jobs, size=3, policy=policy, seed=3, max_tenants=2)
            sums[policy] = {r.job.job_id: r.checksum for r in report.records}
        assert sums["fifo"] == sums["random"] == sums["sjf"]

    def test_report_metrics_shape(self):
        report = _run([_job("a"), _job("b")], size=2, max_tenants=1)
        metrics = report.metrics()
        assert metrics["n_jobs"] == 2.0
        assert metrics["throughput"] > 0.0
        assert 0.0 < metrics["jain_fairness"] <= 1.0
        assert metrics["p99_makespan"] >= metrics["p50_makespan"]
        payload = report.to_dict()
        assert {j["job_id"] for j in payload["jobs"]} == {"a", "b"}
        text = report.to_text()
        assert "throughput" in text and "Jain fairness" in text

    def test_preloaded_cluster_slows_service(self):
        cluster = uniform_cluster(1).with_load(0, ConstantLoad(1.0))
        slow = ServiceSession(cluster, JobQueue([_job("a")])).run()
        fast = _run([_job("a")], size=1)
        assert slow.service_makespan > fast.service_makespan


# --------------------------------------------------------------------- #
# Backend differential contract on service metrics
# --------------------------------------------------------------------- #


class TestServeBackendDifferential:
    @pytest.mark.parametrize("shape", ["uniform", "descending"])
    @pytest.mark.parametrize("policy", ["fifo", "random"])
    def test_metrics_bit_identical(self, shape, policy):
        queue = generate_stream(shape, 5, max_ranks=4, seed=11)
        max_tenants = 1 if shape == "descending" else 2
        reports = {}
        for backend in ("reference", "vectorized"):
            session = ServiceSession(
                uniform_cluster(4, name="diff-pool"),
                queue,
                policy=policy,
                seed=1,
                max_tenants=max_tenants,
                backend=backend,
            )
            reports[backend] = session.run()
        ref, vec = reports["reference"], reports["vectorized"]
        assert ref.metrics() == vec.metrics()
        for a, b in zip(ref.records, vec.records):
            assert a.job.job_id == b.job.job_id
            assert a.ranks == b.ranks
            assert a.admitted == b.admitted
            assert a.finished == b.finished
            assert a.checksum == b.checksum


# --------------------------------------------------------------------- #
# Conservation under admission permutations (hypothesis)
# --------------------------------------------------------------------- #


class TestConservation:
    @given(
        stream_seed=st.integers(0, 100),
        admission_seed=st.integers(0, 100),
    )
    @settings(max_examples=8, deadline=None)
    def test_permutations_conserve_total_work(self, stream_seed,
                                              admission_seed):
        # Whatever order the policy admits in, the same jobs run to
        # completion with the same numerical results: no job is lost,
        # duplicated, or silently altered by the reordering.
        queue = generate_stream("mixed", 4, max_ranks=3, seed=stream_seed)
        outcomes = {}
        for policy in ADMISSION_POLICIES:
            session = ServiceSession(
                uniform_cluster(3, name="conserve-pool"),
                queue,
                policy=policy,
                seed=admission_seed,
                max_tenants=2,
            )
            report = session.run()
            assert report.n_jobs == len(queue)
            outcomes[policy] = sorted(
                (r.job.job_id, r.checksum) for r in report.records
            )
        assert outcomes["fifo"] == outcomes["random"] == outcomes["sjf"]


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestServeCli:
    def test_generated_stream_with_json(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        rc = main([
            "serve", "--stream", "uniform", "--n-jobs", "4",
            "--cluster-size", "4", "--policy", "random", "--seed", "2",
            "--max-tenants", "2", "--json", str(out),
        ])
        assert rc == 0
        assert "throughput" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["policy"] == "random"
        assert len(payload["jobs"]) == 4

    def test_jobs_file(self, tmp_path, capsys):
        stream = tmp_path / "jobs.jsonl"
        stream.write_text(
            "# two tiny jobs\n"
            + JobQueue([_job("a"), _job("b", ranks=2)]).to_jsonl()
        )
        rc = main(["serve", "--jobs", str(stream), "--cluster-size", "2"])
        assert rc == 0
        assert "service: 2 jobs" in capsys.readouterr().out

    def test_missing_jobs_file(self, tmp_path, capsys):
        rc = main(["serve", "--jobs", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_stream_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["serve", "--stream", "spiral"])
