"""The unified experiment harness: registry, runner, artifacts, CLI, report.

Exercises the acceptance surface end to end: discovery finds every
registered experiment, a quick run produces a schema-valid JSON artifact,
``repro bench run table4 --quick`` / ``repro bench sweep --grid small``
work through the CLI, and ``repro bench report`` detects an injected
regression.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import (
    SCHEMA,
    SCHEMA_VERSION,
    compare_artifacts,
    config_seed,
    expand_grid,
    get,
    load_artifact,
    names,
    run_experiment,
    save_artifact,
    validate_artifact,
)

PAPER_EXPERIMENTS = {
    "table1", "table2", "table3", "table4", "table5",
    "ablation_orderings", "ablation_check_frequency",
}


# --------------------------------------------------------------------------
# registry + spec


def test_registry_discovery_finds_all_registered_experiments():
    found = set(names())
    assert PAPER_EXPERIMENTS <= found
    assert {"sweep_small", "sweep_full"} <= found
    assert {"scale-epoch", "scale-generate", "scale-adaptive"} <= found


def test_every_experiment_has_anchor_and_grids():
    for name in names():
        exp = get(name)
        assert exp.paper_anchor
        assert exp.num_configs() >= 1
        assert exp.num_configs(quick=True) <= exp.num_configs()


def test_get_unknown_experiment_raises_with_known_names():
    with pytest.raises(ReproError, match="table4"):
        get("nope")


def test_expand_grid_is_cartesian_and_ordered():
    configs = expand_grid({"a": (1, 2), "b": ("x",)})
    assert configs == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
    with pytest.raises(ReproError):
        expand_grid({"a": 3})  # scalar axis is an error
    with pytest.raises(ReproError):
        expand_grid({"a": ()})


def test_seed_policy_is_deterministic_and_content_based():
    configs = [{"p": p, "n": 100} for p in range(10)]
    seeds = [config_seed(1995, c) for c in configs]
    assert seeds == [config_seed(1995, c) for c in configs]
    assert len(set(seeds)) == len(seeds)
    # Content-based: key order and grid position are irrelevant, so the same
    # configuration reached via --set or --quick gets the same seed.
    assert config_seed(1995, {"n": 100, "p": 3}) == config_seed(1995, {"p": 3, "n": 100})


# --------------------------------------------------------------------------
# runner + artifacts


def test_quick_run_produces_schema_valid_artifact(tmp_path):
    artifact, path = run_experiment("table1", quick=True, results_dir=tmp_path)
    assert path == tmp_path / "table1-quick.json"  # never clobbers a full run
    assert path.is_file()
    on_disk = json.loads(path.read_text())
    assert validate_artifact(on_disk) == []
    assert on_disk["schema"] == SCHEMA
    assert on_disk["schema_version"] == SCHEMA_VERSION
    assert on_disk["quick"] is True
    assert len(on_disk["runs"]) == get("table1").num_configs(quick=True)
    for run in on_disk["runs"]:
        assert run["metrics"]["mcr_seconds"] > 0
        assert run["wall_s"] > 0


def test_run_experiment_rejects_unknown_override_keys():
    with pytest.raises(ReproError, match="unknown parameter"):
        run_experiment("table1", quick=True,
                       overrides={"bogus_param": 7}, results_dir=None)


def test_run_experiment_same_params_same_seed_regardless_of_path():
    # Seed policy is content-based: a --set-restricted run of one
    # configuration matches the full-grid run of the same configuration.
    full, _ = run_experiment("table1", quick=True,
                             overrides={"repeats": 1}, results_dir=None)
    sub, _ = run_experiment("table1", quick=True,
                            overrides={"p": 5, "repeats": 1}, results_dir=None)
    by_params = {json.dumps(r["params"], sort_keys=True): r["seed"]
                 for r in full["runs"]}
    key = json.dumps(sub["runs"][0]["params"], sort_keys=True)
    assert by_params[key] == sub["runs"][0]["seed"]


def test_run_experiment_overrides_collapse_grid():
    artifact, _ = run_experiment(
        "table1",
        quick=True,
        overrides={"p": 3, "repeats": 1, "elements": 500},
        results_dir=None,
    )
    assert len(artifact["runs"]) == 1
    assert artifact["runs"][0]["params"]["p"] == 3


def test_validate_artifact_rejects_malformed():
    artifact, _ = run_experiment(
        "table1", quick=True,
        overrides={"p": 3, "repeats": 1, "elements": 500}, results_dir=None,
    )
    bad = copy.deepcopy(artifact)
    bad["schema_version"] = 99
    assert any("schema_version" in e for e in validate_artifact(bad))
    bad = copy.deepcopy(artifact)
    bad["runs"][0]["metrics"]["mcr_seconds"] = "fast"
    assert any("metrics" in e for e in validate_artifact(bad))
    assert validate_artifact([]) != []


def test_load_artifact_rejects_invalid_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "other"}')
    with pytest.raises(ReproError, match="invalid artifact"):
        load_artifact(path)


# --------------------------------------------------------------------------
# report: regression detection


def _toy_artifact(makespan: float, efficiency: float) -> dict:
    from repro.experiments.artifacts import new_artifact

    return new_artifact(
        experiment="toy",
        title="toy",
        paper_anchor="Table 0",
        quick=True,
        base_seed=1,
        higher_is_better=["efficiency"],
        runs=[{
            "params": {"p": 2},
            "seed": 1,
            "wall_s": 0.1,
            "max_rss_kb": 1.0,
            "metrics": {"makespan": makespan, "efficiency": efficiency},
        }],
    )


def test_report_detects_injected_regression():
    old = _toy_artifact(1.0, 0.8)
    worse = _toy_artifact(1.5, 0.8)  # makespan +50% = regression
    comparison = compare_artifacts(old, worse)
    assert comparison.num_regressions == 1
    assert comparison.regressions[0].metric == "makespan"
    markdown = comparison.to_markdown()
    assert "**1 regression(s)**" in markdown
    assert "| p=2 | makespan |" in markdown


def test_report_respects_metric_direction_and_threshold():
    old = _toy_artifact(1.0, 0.8)
    better = _toy_artifact(0.5, 0.9)  # time down + efficiency up: improvements
    comparison = compare_artifacts(old, better)
    assert comparison.num_regressions == 0
    assert len(comparison.improvements) == 2
    # Efficiency DROPPING is a regression (higher_is_better).
    comparison = compare_artifacts(old, _toy_artifact(1.0, 0.4))
    assert [d.metric for d in comparison.regressions] == ["efficiency"]
    # Within-threshold jitter is noise.
    comparison = compare_artifacts(old, _toy_artifact(1.02, 0.8))
    assert comparison.num_regressions == 0


def test_report_flags_unmatched_configurations():
    old = _toy_artifact(1.0, 0.8)
    other = copy.deepcopy(old)
    other["runs"][0]["params"] = {"p": 4}
    comparison = compare_artifacts(old, other)
    assert comparison.deltas == []
    assert comparison.only_old and comparison.only_new


# --------------------------------------------------------------------------
# CLI acceptance: bench list / run / sweep / report


def test_cli_bench_list_exits_zero(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for name in PAPER_EXPERIMENTS:
        assert name in out


def test_cli_bench_run_table4_quick(tmp_path, capsys):
    rc = main(["bench", "run", "table4", "--quick",
               "--results-dir", str(tmp_path)])
    assert rc == 0
    artifact = load_artifact(tmp_path / "table4-quick.json")
    assert artifact["schema_version"] == SCHEMA_VERSION
    effs = {r["params"]["p"]: r["metrics"]["efficiency"]
            for r in artifact["runs"]}
    assert effs[1] == pytest.approx(1.0, abs=1e-6)
    assert effs[2] < 1.0  # nonuniform pool: efficiency declines
    assert "artifact" in capsys.readouterr().out


def test_cli_bench_run_unknown_name_fails_cleanly(tmp_path, capsys):
    rc = main(["bench", "run", "nope", "--results-dir", str(tmp_path)])
    assert rc == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_bench_sweep_small(tmp_path):
    rc = main(["bench", "sweep", "--grid", "small",
               "--results-dir", str(tmp_path)])
    assert rc == 0
    artifact = load_artifact(tmp_path / "sweep_small.json")
    assert artifact["schema_version"] == SCHEMA_VERSION
    assert len(artifact["runs"]) == 16  # 2 sizes x 2 loads x 2 orderings x 2 graphs
    # Adaptive scenarios actually adapted somewhere in the grid.
    assert any(r["metrics"]["num_remaps"] >= 1 for r in artifact["runs"]
               if r["params"]["load"] == "constant")
    # Every scenario finished with a positive makespan.
    assert all(r["metrics"]["makespan"] > 0 for r in artifact["runs"])


def test_cli_bench_sweep_unknown_grid_fails_cleanly(tmp_path, capsys):
    rc = main(["bench", "sweep", "--grid", "gigantic",
               "--results-dir", str(tmp_path)])
    assert rc == 2
    assert "unknown sweep grid" in capsys.readouterr().err


def test_cli_bench_report_end_to_end(tmp_path, capsys):
    old_path = save_artifact(_toy_artifact(1.0, 0.8), tmp_path / "old.json")
    new_path = save_artifact(_toy_artifact(1.5, 0.8), tmp_path / "new.json")
    out_md = tmp_path / "deep" / "dir" / "report.md"  # parents auto-created
    rc = main(["bench", "report", str(old_path), str(new_path),
               "-o", str(out_md)])
    assert rc == 0  # regressions reported, but exit 0 without the flag
    printed = capsys.readouterr().out
    assert "regression" in printed
    assert "**1 regression(s)**" in out_md.read_text()
    rc = main(["bench", "report", str(old_path), str(new_path),
               "--fail-on-regression"])
    assert rc == 1
    # Identical artifacts: no regression, exit 0 even with the flag.
    rc = main(["bench", "report", str(old_path), str(old_path),
               "--fail-on-regression"])
    assert rc == 0


def test_cli_bench_run_set_override(tmp_path):
    rc = main(["bench", "run", "table1", "--quick",
               "--set", "p=3", "--set", "elements=500",
               "--results-dir", str(tmp_path)])
    assert rc == 0
    artifact = load_artifact(tmp_path / "table1-quick.json")
    assert len(artifact["runs"]) == 1
    assert artifact["runs"][0]["params"]["elements"] == 500
