"""Tests for competing-load traces and virtual-clock integration."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.loadmodel import (
    CompositeLoad,
    ConstantLoad,
    MembershipEvent,
    MembershipTrace,
    NoLoad,
    RampLoad,
    RandomWalkLoad,
    StepLoad,
    advance_clock,
    work_done_in,
)


class TestTraces:
    def test_noload_always_zero(self):
        tr = NoLoad()
        assert tr.load_at(0.0) == 0.0
        assert tr.load_at(1e9) == 0.0
        assert tr.next_change_after(5.0) == math.inf

    def test_constant_level(self):
        tr = ConstantLoad(2.0)
        assert tr.load_at(0.0) == 2.0
        assert tr.next_change_after(0.0) == math.inf

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1.0)

    def test_step_lookup(self):
        tr = StepLoad([(0, 0), (10, 2), (50, 0)])
        assert tr.load_at(5) == 0
        assert tr.load_at(10) == 2
        assert tr.load_at(49.99) == 2
        assert tr.load_at(50) == 0

    def test_step_breakpoints(self):
        tr = StepLoad([(0, 0), (10, 2), (50, 0)])
        assert tr.next_change_after(0) == 10
        assert tr.next_change_after(10) == 50
        assert tr.next_change_after(50) == math.inf

    def test_step_pads_time_zero(self):
        tr = StepLoad([(5, 1.0)])
        assert tr.load_at(0.0) == 0.0
        assert tr.load_at(5.0) == 1.0

    def test_step_rejects_unsorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            StepLoad([(5, 1), (3, 2)])

    def test_step_rejects_negative_load(self):
        with pytest.raises(ValueError, match="non-negative"):
            StepLoad([(0, -1)])

    def test_step_rejects_empty(self):
        with pytest.raises(ValueError):
            StepLoad([])

    def test_ramp_endpoints(self):
        tr = RampLoad(10, 20, 0.0, 4.0, n_steps=16)
        assert tr.load_at(0.0) == 0.0
        assert tr.load_at(25.0) == 4.0
        mid = tr.load_at(15.0)
        assert 1.0 < mid < 3.0

    def test_ramp_monotone(self):
        tr = RampLoad(0, 10, 0.0, 2.0)
        samples = [tr.load_at(t) for t in np.linspace(0, 10, 40)]
        assert all(b >= a - 1e-12 for a, b in zip(samples, samples[1:]))

    def test_ramp_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            RampLoad(5, 5, 0, 1)

    def test_random_walk_bounds_and_reproducibility(self):
        a = RandomWalkLoad(horizon=50, dt=1.0, max_load=2.0, seed=3)
        b = RandomWalkLoad(horizon=50, dt=1.0, max_load=2.0, seed=3)
        for t in np.linspace(0, 60, 30):
            la, lb = a.load_at(t), b.load_at(t)
            assert la == lb
            assert 0.0 <= la <= 2.0

    def test_random_walk_holds_after_horizon(self):
        tr = RandomWalkLoad(horizon=10, dt=1.0, seed=0)
        assert tr.load_at(10.5) == tr.load_at(1e6)

    def test_composite_sums(self):
        tr = CompositeLoad([ConstantLoad(1.0), StepLoad([(0, 0), (5, 2)])])
        assert tr.load_at(0) == 1.0
        assert tr.load_at(5) == 3.0
        assert tr.next_change_after(0) == 5

    def test_composite_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeLoad([])

    def test_mean_load(self):
        tr = StepLoad([(0, 0), (5, 2)])
        assert tr.mean_load(0, 10) == pytest.approx(1.0)


class TestAdvanceClock:
    def test_unloaded_unit_speed(self):
        assert advance_clock(0.0, 3.0, 1.0, NoLoad()) == pytest.approx(3.0)

    def test_speed_scales(self):
        assert advance_clock(0.0, 3.0, 2.0, NoLoad()) == pytest.approx(1.5)

    def test_constant_load_halves_rate(self):
        assert advance_clock(0.0, 3.0, 1.0, ConstantLoad(1.0)) == pytest.approx(6.0)

    def test_zero_work(self):
        assert advance_clock(7.0, 0.0, 1.0, ConstantLoad(5.0)) == 7.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            advance_clock(0.0, -1.0, 1.0, NoLoad())

    def test_step_boundary_crossing(self):
        # Unloaded for 2s (2 units done), then load 1 (rate 1/2): remaining
        # 2 units take 4s.
        tr = StepLoad([(0, 0), (2, 1)])
        assert advance_clock(0.0, 4.0, 1.0, tr) == pytest.approx(6.0)

    def test_start_mid_segment(self):
        tr = StepLoad([(0, 0), (2, 1)])
        assert advance_clock(1.0, 1.0, 1.0, tr) == pytest.approx(2.0)
        assert advance_clock(2.0, 1.0, 1.0, tr) == pytest.approx(4.0)

    def test_work_done_in_inverse_simple(self):
        tr = StepLoad([(0, 0), (3, 2), (9, 0.5)])
        t1 = advance_clock(0.0, 5.0, 1.3, tr)
        assert work_done_in(0.0, t1, 1.3, tr) == pytest.approx(5.0)

    def test_work_done_in_empty_interval(self):
        assert work_done_in(4.0, 4.0, 1.0, ConstantLoad(1.0)) == 0.0

    def test_work_done_in_rejects_reversed(self):
        with pytest.raises(ValueError):
            work_done_in(5.0, 4.0, 1.0, NoLoad())

    @given(
        work=st.floats(0.01, 50.0),
        speed=st.floats(0.1, 10.0),
        t0=st.floats(0.0, 20.0),
        steps=st.lists(
            st.tuples(st.floats(0.0, 40.0), st.floats(0.0, 4.0)),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_advance_and_work_are_inverse(self, work, speed, t0, steps):
        steps = sorted(steps, key=lambda s: s[0])
        tr = StepLoad(steps)
        t1 = advance_clock(t0, work, speed, tr)
        assert t1 >= t0
        recovered = work_done_in(t0, t1, speed, tr)
        assert recovered == pytest.approx(work, rel=1e-9, abs=1e-12)

    @given(
        work=st.floats(0.01, 10.0),
        load=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_load_closed_form(self, work, load):
        t1 = advance_clock(0.0, work, 1.0, ConstantLoad(load))
        assert t1 == pytest.approx(work * (1.0 + load), rel=1e-12)

    def test_monotone_in_load(self):
        t_light = advance_clock(0.0, 5.0, 1.0, ConstantLoad(0.5))
        t_heavy = advance_clock(0.0, 5.0, 1.0, ConstantLoad(2.0))
        assert t_heavy > t_light


class TestCompositeAlgebraProperties:
    """ISSUE 4 satellite: the piecewise-constant algebra under composition,
    coincident breakpoints, zero-length segments, and inf sentinels —
    the regimes the smooth-trace tests above never reach."""

    @staticmethod
    def _jagged_step(rng: np.random.Generator) -> StepLoad:
        """A StepLoad with deliberately coincident and zero-length steps."""
        times = np.round(np.sort(rng.uniform(0.0, 20.0, size=6)), 1)
        k = int(rng.integers(0, 5))
        times[k + 1] = times[k]  # a zero-length segment
        loads = rng.uniform(0.0, 4.0, size=6)
        return StepLoad(list(zip(times.tolist(), loads.tolist())))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_composite_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        parts = [self._jagged_step(rng) for _ in range(int(rng.integers(1, 4)))]
        if rng.random() < 0.5:
            parts.append(ConstantLoad(float(rng.uniform(0, 2))))
        tr = CompositeLoad(parts)
        t0 = float(rng.uniform(0.0, 25.0))
        work = float(rng.uniform(0.01, 30.0))
        speed = float(rng.uniform(0.2, 5.0))
        t1 = advance_clock(t0, work, speed, tr)
        assert t1 >= t0
        assert work_done_in(t0, t1, speed, tr) == pytest.approx(
            work, rel=1e-9, abs=1e-12
        )

    @given(seed=st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_next_change_strictly_advances_to_inf(self, seed):
        """next_change_after always moves strictly forward and ends at the
        math.inf sentinel, even across coincident breakpoints — the
        property that guarantees advance_clock terminates."""
        rng = np.random.default_rng(seed)
        tr = CompositeLoad([self._jagged_step(rng), self._jagged_step(rng)])
        t, hops = 0.0, 0
        while True:
            nxt = tr.next_change_after(t)
            assert nxt > t
            if nxt == math.inf:
                break
            t = nxt
            hops += 1
        assert hops <= 12  # duplicates collapse: at most one hop per time

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_work_is_additive_over_coincident_splits(self, seed):
        """Splitting [t0, t2] at any point — including exactly at a
        breakpoint shared by several component traces — conserves work."""
        rng = np.random.default_rng(seed)
        step = self._jagged_step(rng)
        tr = CompositeLoad([step, step])  # every breakpoint coincides
        t0 = float(rng.uniform(0.0, 10.0))
        t2 = t0 + float(rng.uniform(0.1, 15.0))
        mid = step.next_change_after(t0)
        if not (t0 < mid < t2):
            mid = (t0 + t2) / 2.0
        whole = work_done_in(t0, t2, 1.0, tr)
        parts = work_done_in(t0, mid, 1.0, tr) + work_done_in(mid, t2, 1.0, tr)
        assert parts == pytest.approx(whole, rel=1e-9, abs=1e-12)

    def test_zero_length_segment_is_invisible(self):
        plain = StepLoad([(0.0, 1.0), (5.0, 2.0)])
        jagged = StepLoad([(0.0, 1.0), (5.0, 9.9), (5.0, 2.0)])
        for t in (0.0, 4.999, 5.0, 7.3):
            assert jagged.load_at(t) == plain.load_at(t)
        t1p = advance_clock(0.0, 12.0, 1.0, plain)
        t1j = advance_clock(0.0, 12.0, 1.0, jagged)
        assert t1j == pytest.approx(t1p, rel=1e-12)

    def test_mean_load_handles_coincident_breakpoints(self):
        tr = CompositeLoad([
            StepLoad([(0.0, 1.0), (2.0, 0.0)]),
            StepLoad([(0.0, 0.0), (2.0, 1.0)]),
        ])
        assert tr.mean_load(0.0, 4.0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# MembershipTrace DSL round-trips: parse -> format -> parse is identity


class TestMembershipDSLRoundTrip:
    @pytest.mark.parametrize("spec", [
        "leave:0@9.5",
        "standby:3, join:3@5.0, leave:0@9.5, replace:1->0@12, fail:0@15",
        "standby:1, standby:2, join:1@0.5, join:2@0.5",
        "standby:4, fail:1@0.015, join:4@0.015, leave:3@0.015",  # coincident
        "leave:2@0.0033",  # float that must survive repr exactly
        "",  # the empty trace
    ])
    def test_parse_format_parse_is_identity(self, spec):
        world = 5
        first = MembershipTrace.parse(spec, world)
        text = first.format()
        second = MembershipTrace.parse(text, world)
        assert second == first
        # And formatting is a fixpoint: one more cycle changes nothing.
        assert second.format() == text

    def test_format_spells_every_event_kind(self):
        trace = MembershipTrace(
            5,
            [
                MembershipEvent(1.0, "leave", 0),
                MembershipEvent(2.0, "join", 0),
                MembershipEvent(3.0, "replace", 1, replacement=4),
                MembershipEvent(4.0, "fail", 2),
            ],
            initially_inactive=[4],
        )
        assert trace.format() == (
            "standby:4, leave:0@1, join:0@2, replace:1->4@3, fail:2@4"
        )

    def test_coincident_events_keep_their_apply_order(self):
        # Two opposite orderings of the same instant are distinct traces
        # and must stay distinct through a round-trip.
        a = MembershipTrace.parse("standby:3, leave:0@1, join:3@1", 4)
        b = MembershipTrace.parse("standby:3, join:3@1, leave:0@1", 4)
        assert a != b
        assert MembershipTrace.parse(a.format(), 4) == a
        assert MembershipTrace.parse(b.format(), 4) == b

    def test_equality_covers_standby_and_world_size(self):
        a = MembershipTrace.parse("standby:2, join:2@1", 3)
        b = MembershipTrace.parse("standby:2, join:2@1", 4)
        assert a != b
        assert a == MembershipTrace.parse("standby:2, join:2@1", 3)

    @settings(deadline=None, max_examples=60)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_random_valid_traces_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        world = int(rng.integers(2, 7))
        standby = set(
            int(r)
            for r in rng.choice(
                world, size=int(rng.integers(0, world - 1)), replace=False
            )
        )
        active = set(range(world)) - set(standby)
        inactive = set(standby)
        events = []
        t = 0.0
        for _ in range(int(rng.integers(0, 8))):
            t += float(np.round(rng.uniform(0.0, 3.0), 3))
            kinds = []
            if len(active) > 1:
                kinds += ["leave", "fail"]
            if inactive:
                kinds += ["join"]
                if active:
                    kinds += ["replace"]
            if not kinds:
                break
            kind = str(rng.choice(kinds))
            if kind in ("leave", "fail"):
                r = int(rng.choice(sorted(active)))
                active.discard(r)
                inactive.add(r)
                events.append(MembershipEvent(t, kind, r))
            elif kind == "join":
                r = int(rng.choice(sorted(inactive)))
                inactive.discard(r)
                active.add(r)
                events.append(MembershipEvent(t, "join", r))
            else:
                old = int(rng.choice(sorted(active)))
                new = int(rng.choice(sorted(inactive)))
                active.discard(old)
                inactive.discard(new)
                active.add(new)
                inactive.add(old)
                events.append(
                    MembershipEvent(t, "replace", old, replacement=new)
                )
        trace = MembershipTrace(
            world, events, initially_inactive=sorted(standby)
        )
        assert MembershipTrace.parse(trace.format(), world) == trace
