"""Tests for the paper's future-work extensions: capability prediction,
distributed load balancing, and the adaptive-application driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.adaptive_refinement import (
    MovingHotspot,
    run_adaptive_application,
)
from repro.errors import ConfigurationError, LoadBalanceError
from repro.graph.generators import paper_mesh
from repro.net.cluster import adaptive_cluster, heterogeneous_cluster, uniform_cluster
from repro.net.network import PointToPointNetwork, SharedEthernet
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import LoadBalanceConfig
from repro.runtime.adaptive import distributed_check
from repro.runtime.kernels import run_sequential
from repro.runtime.prediction import (
    ExponentialSmoothingPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    make_predictor,
)
from repro.runtime.program import ProgramConfig, run_program


class TestPredictors:
    def test_last_value(self):
        p = LastValuePredictor()
        p.observe(10.0)
        p.observe(20.0)
        assert p.predict() == 20.0

    def test_last_value_empty_raises(self):
        with pytest.raises(LoadBalanceError):
            LastValuePredictor().predict()

    def test_moving_average_window(self):
        p = MovingAveragePredictor(window=2)
        for v in (10.0, 20.0, 30.0):
            p.observe(v)
        assert p.predict() == pytest.approx(25.0)

    def test_moving_average_validation(self):
        with pytest.raises(LoadBalanceError):
            MovingAveragePredictor(window=0)

    def test_ewma_smoothing(self):
        p = ExponentialSmoothingPredictor(alpha=0.5)
        p.observe(10.0)
        p.observe(20.0)
        assert p.predict() == pytest.approx(15.0)

    def test_ewma_alpha_one_is_last_value(self):
        p = ExponentialSmoothingPredictor(alpha=1.0)
        p.observe(10.0)
        p.observe(33.0)
        assert p.predict() == 33.0

    def test_ewma_validation(self):
        with pytest.raises(LoadBalanceError):
            ExponentialSmoothingPredictor(alpha=0.0)
        with pytest.raises(LoadBalanceError):
            ExponentialSmoothingPredictor(alpha=1.5)

    def test_trend_extrapolates_ramp(self):
        p = LinearTrendPredictor(window=4)
        for v in (10.0, 8.0, 6.0, 4.0):  # capability falling 2/step
            p.observe(v)
        # Forecast continues the decline (clamped above 1 = 4*0.25).
        assert p.predict() == pytest.approx(2.0, abs=0.5)

    def test_trend_clamps_extremes(self):
        p = LinearTrendPredictor(window=2, min_factor=0.5, max_factor=2.0)
        p.observe(100.0)
        p.observe(1.0)  # wild fit would go negative
        assert p.predict() >= 0.5

    def test_trend_single_observation(self):
        p = LinearTrendPredictor()
        p.observe(7.0)
        assert p.predict() == 7.0

    def test_trend_validation(self):
        with pytest.raises(LoadBalanceError):
            LinearTrendPredictor(window=1)
        with pytest.raises(LoadBalanceError):
            LinearTrendPredictor(min_factor=2.0)

    def test_rejects_nonpositive_observations(self):
        for p in (LastValuePredictor(), MovingAveragePredictor(),
                  ExponentialSmoothingPredictor(), LinearTrendPredictor()):
            with pytest.raises(LoadBalanceError):
                p.observe(0.0)

    def test_factory(self):
        assert isinstance(make_predictor("last"), LastValuePredictor)
        assert isinstance(make_predictor("ewma"), ExponentialSmoothingPredictor)
        with pytest.raises(LoadBalanceError):
            make_predictor("oracle")

    def test_trend_beats_last_on_ramp(self):
        """On a steadily degrading machine the trend predictor's forecast is
        closer to the next observation than last-value's."""
        series = [10.0, 9.0, 8.0, 7.0, 6.0, 5.0]
        trend, last = LinearTrendPredictor(window=4), LastValuePredictor()
        trend_err = last_err = 0.0
        for prev, nxt in zip(series, series[1:]):
            trend.observe(prev)
            last.observe(prev)
            if prev != series[0]:  # trend needs 2+ points
                trend_err += abs(trend.predict() - nxt)
                last_err += abs(last.predict() - nxt)
        assert trend_err < last_err


class TestDistributedCheck:
    def run_check(self, cluster, times, remaining=200, config=None):
        config = config or LoadBalanceConfig(style="distributed")
        part = partition_list(10_000, np.ones(cluster.size))

        def fn(ctx):
            return distributed_check(
                ctx, part, times[ctx.rank], remaining, config
            )

        return run_spmd(cluster, fn, trace=True)

    def test_all_ranks_agree(self):
        res = self.run_check(uniform_cluster(4), [3e-4, 1e-4, 1e-4, 1e-4])
        decisions = res.values
        assert all(d.remap == decisions[0].remap for d in decisions)
        if decisions[0].remap:
            for d in decisions[1:]:
                np.testing.assert_array_equal(
                    d.new_partition.bounds, decisions[0].new_partition.bounds
                )

    def test_detects_imbalance(self):
        res = self.run_check(uniform_cluster(3), [5e-4, 1e-4, 1e-4])
        assert res.values[0].remap

    def test_balanced_no_remap(self):
        res = self.run_check(uniform_cluster(3), [1e-4] * 3)
        assert not res.values[0].remap

    def test_multicast_message_count(self):
        """On Ethernet the distributed protocol is p multicasts."""
        cl = uniform_cluster(4, network_factory=SharedEthernet)
        res = self.run_check(cl, [1e-4] * 4)
        assert res.trace.message_count(kinds=("multicast",)) == 4

    def test_unicast_fallback_message_count(self):
        """Without multicast, each rank sends p-1 unicasts: O(p^2) total."""
        cl = uniform_cluster(4, network_factory=PointToPointNetwork)
        res = self.run_check(cl, [1e-4] * 4)
        # One traced event per rank's multicast() call; payload reaches
        # every peer via sequential unicasts under the hood.
        assert res.trace.message_count(kinds=("send",)) == 4

    def test_negative_remaining_rejected(self):
        from repro.errors import RankFailedError

        with pytest.raises(RankFailedError):
            self.run_check(uniform_cluster(2), [1e-4, 1e-4], remaining=-1)

    def test_config_style_validation(self):
        with pytest.raises(LoadBalanceError):
            LoadBalanceConfig(style="anarchic")


class TestProgramWithExtensions:
    @pytest.fixture(scope="class")
    def workload(self):
        g = paper_mesh(700, seed=31)
        y0 = np.random.default_rng(3).uniform(0, 100, g.num_vertices)
        return g, y0

    def test_distributed_style_matches_oracle(self, workload):
        g, y0 = workload
        oracle = run_sequential(g, y0, 30)
        cl = adaptive_cluster(3, loaded_rank=0, competing_load=2.0)
        rep = run_program(
            g, cl,
            ProgramConfig(
                iterations=30,
                initial_capabilities="equal",
                load_balance=LoadBalanceConfig(
                    check_interval=10, style="distributed"
                ),
            ),
            y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)
        assert rep.num_remaps >= 1

    @pytest.mark.parametrize("predictor", ["last", "moving-average", "ewma", "trend"])
    def test_predictors_preserve_correctness(self, workload, predictor):
        g, y0 = workload
        oracle = run_sequential(g, y0, 25)
        cl = adaptive_cluster(3, loaded_rank=0, competing_load=2.0)
        rep = run_program(
            g, cl,
            ProgramConfig(
                iterations=25,
                initial_capabilities="equal",
                load_balance=LoadBalanceConfig(
                    check_interval=8, predictor=predictor
                ),
            ),
            y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_centralized_and_distributed_same_decision_path(self, workload):
        g, y0 = workload
        cl = adaptive_cluster(3, loaded_rank=0, competing_load=2.0)
        kw = dict(iterations=30, initial_capabilities="equal")
        central = run_program(
            g, cl,
            ProgramConfig(**kw, load_balance=LoadBalanceConfig(check_interval=10)),
            y0=y0,
        )
        distributed = run_program(
            g, cl,
            ProgramConfig(
                **kw,
                load_balance=LoadBalanceConfig(
                    check_interval=10, style="distributed"
                ),
            ),
            y0=y0,
        )
        assert central.num_remaps == distributed.num_remaps
        np.testing.assert_array_equal(
            central.partition_final.bounds, distributed.partition_final.bounds
        )


class TestAdaptiveApplication:
    @pytest.fixture(scope="class")
    def setup(self):
        g = paper_mesh(1200, seed=2)
        y0 = np.random.default_rng(5).uniform(0, 100, g.num_vertices)
        hs = MovingHotspot(g, amplitude=14.0, radius_fraction=0.12, n_phases=4)
        return g, y0, hs

    def test_hotspot_weights_shape_and_motion(self, setup):
        g, _, hs = setup
        w0, w1 = hs.weights(0), hs.weights(1)
        assert w0.shape == (g.num_vertices,)
        assert w0.min() >= 1.0
        assert w0.max() > 5.0
        assert not np.allclose(w0, w1)  # the hotspot moved

    def test_hotspot_validation(self, setup):
        g, _, _ = setup
        from repro.graph.csr import CSRGraph

        abstract = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(ConfigurationError):
            MovingHotspot(abstract)
        with pytest.raises(ConfigurationError):
            MovingHotspot(g, amplitude=-1.0)
        with pytest.raises(ConfigurationError):
            MovingHotspot(g, n_phases=0)

    def test_matches_oracle_both_modes(self, setup):
        g, y0, hs = setup
        oracle = run_sequential(g, y0, 30)
        for repartition in (False, True):
            rep = run_adaptive_application(
                g, uniform_cluster(3), iterations=30, adapt_interval=10,
                hotspot=hs, repartition=repartition, y0=y0,
            )
            np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_repartitioning_pays_off(self, setup):
        g, y0, hs = setup
        kw = dict(iterations=40, adapt_interval=10, hotspot=hs, y0=y0)
        static = run_adaptive_application(
            g, uniform_cluster(4), repartition=False, **kw
        )
        adaptive = run_adaptive_application(
            g, uniform_cluster(4), repartition=True, **kw
        )
        assert adaptive.num_repartitions == 3
        assert static.num_repartitions == 0
        assert adaptive.makespan < static.makespan

    def test_heterogeneous_cluster_supported(self, setup):
        g, y0, hs = setup
        oracle = run_sequential(g, y0, 20)
        rep = run_adaptive_application(
            g, heterogeneous_cluster([1.0, 0.6, 0.4]),
            iterations=20, adapt_interval=5, hotspot=hs, y0=y0,
        )
        np.testing.assert_allclose(rep.values, oracle, atol=1e-9)

    def test_validation(self, setup):
        g, y0, hs = setup
        with pytest.raises(ConfigurationError):
            run_adaptive_application(g, uniform_cluster(2), iterations=0)
        with pytest.raises(ConfigurationError):
            run_adaptive_application(g, uniform_cluster(2), y0=np.zeros(3))
