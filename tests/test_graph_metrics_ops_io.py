"""Tests for graph metrics, operations, and IO."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_graph, perturbed_grid_mesh
from repro.graph.io import (
    load_graph_npz,
    load_mesh_npz,
    read_chaco,
    save_graph_npz,
    save_mesh_npz,
    write_chaco,
)
from repro.graph.metrics import (
    boundary_vertices,
    cut_curve,
    edge_cut,
    load_imbalance,
    locality_profile,
    mean_edge_span,
    ordering_bandwidth,
    partition_sizes,
)
from repro.graph.ops import (
    bfs_levels,
    connected_components,
    from_scipy,
    laplacian,
    largest_component,
    to_scipy,
)


def path4() -> CSRGraph:
    return CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


class TestMetrics:
    def test_edge_cut_halves(self):
        labels = np.array([0, 0, 1, 1])
        assert edge_cut(path4(), labels) == 1

    def test_edge_cut_all_same(self):
        assert edge_cut(path4(), np.zeros(4, dtype=int)) == 0

    def test_edge_cut_alternating(self):
        assert edge_cut(path4(), np.array([0, 1, 0, 1])) == 3

    def test_edge_cut_shape_check(self):
        with pytest.raises(PartitionError):
            edge_cut(path4(), np.zeros(3, dtype=int))

    def test_boundary_vertices(self):
        mask = boundary_vertices(path4(), np.array([0, 0, 1, 1]))
        np.testing.assert_array_equal(mask, [False, True, True, False])

    def test_partition_sizes(self):
        np.testing.assert_array_equal(
            partition_sizes(np.array([0, 0, 2, 1]), 3), [2, 1, 1]
        )

    def test_partition_sizes_rejects_overflow_label(self):
        with pytest.raises(PartitionError):
            partition_sizes(np.array([0, 5]), 3)

    def test_load_imbalance_perfect(self):
        labels = np.array([0, 0, 1, 1])
        w = np.ones(4)
        assert load_imbalance(labels, w, np.array([1.0, 1.0])) == pytest.approx(1.0)

    def test_load_imbalance_skewed(self):
        labels = np.array([0, 0, 0, 1])
        w = np.ones(4)
        # P0 got 3/4 of work but only half the capability.
        assert load_imbalance(labels, w, np.array([1.0, 1.0])) == pytest.approx(1.5)

    def test_load_imbalance_capability_aware(self):
        labels = np.array([0, 0, 0, 1])
        w = np.ones(4)
        caps = np.array([3.0, 1.0])
        assert load_imbalance(labels, w, caps) == pytest.approx(1.0)

    def test_load_imbalance_rejects_zero_caps(self):
        with pytest.raises(PartitionError):
            load_imbalance(np.zeros(2, dtype=int), np.ones(2), np.array([0.0, 1.0]))

    def test_bandwidth_and_span(self):
        g = path4()
        ident = np.arange(4)
        assert ordering_bandwidth(g, ident) == 1
        assert mean_edge_span(g, ident) == 1.0
        rev = np.array([3, 2, 1, 0])
        assert ordering_bandwidth(g, rev) == 1

    def test_bandwidth_bad_ordering(self):
        g = path4()
        scrambled = np.array([0, 3, 1, 2])
        assert ordering_bandwidth(g, scrambled) == 3

    def test_cut_curve_monotonic_grid(self):
        g = grid_graph(8, 8)
        curve = cut_curve(g, np.arange(64), [2, 4, 8])
        assert curve[2] <= curve[4] <= curve[8]
        assert curve[2] == 8  # one row boundary

    def test_cut_curve_rejects_bad_parts(self):
        with pytest.raises(PartitionError):
            cut_curve(path4(), np.arange(4), [0])

    def test_locality_profile_keys(self):
        prof = locality_profile(grid_graph(4, 4), np.arange(16), (2, 4))
        assert set(prof) == {"bandwidth", "mean_span", "cut_curve"}

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_edge_cut_bounds(self, data):
        g = perturbed_grid_mesh(6, 6, seed=0).graph
        labels = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 3),
                    min_size=g.num_vertices,
                    max_size=g.num_vertices,
                )
            )
        )
        cut = edge_cut(g, labels)
        assert 0 <= cut <= g.num_edges


class TestOps:
    def test_to_from_scipy_roundtrip(self):
        g = grid_graph(4, 4)
        g2 = from_scipy(to_scipy(g), coords=g.coords)
        assert np.array_equal(g2.edge_array(), g.edge_array())

    def test_from_scipy_symmetrizes(self):
        import scipy.sparse as sp

        m = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        g = from_scipy(m)
        assert g.num_edges == 1

    def test_from_scipy_rejects_nonsquare(self):
        import scipy.sparse as sp

        with pytest.raises(Exception):
            from_scipy(sp.csr_matrix(np.zeros((2, 3))))

    def test_connected_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)])
        n, labels = connected_components(g)
        assert n == 3
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_largest_component(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)],
                                coords=np.random.default_rng(0).uniform(size=(6, 2)))
        big = largest_component(g)
        assert big.num_vertices == 3
        assert big.num_edges == 2
        assert big.coords.shape == (3, 2)

    def test_largest_component_noop_when_connected(self):
        g = path4()
        assert largest_component(g) is g

    def test_laplacian_row_sums_zero(self):
        lap = laplacian(grid_graph(3, 3))
        np.testing.assert_allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_bfs_levels(self):
        levels = bfs_levels(path4(), 0)
        np.testing.assert_array_equal(levels, [0, 1, 2, 3])

    def test_bfs_levels_unreachable(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        levels = bfs_levels(g, 0)
        assert levels[2] == -1

    def test_bfs_levels_bad_start(self):
        with pytest.raises(Exception):
            bfs_levels(path4(), 17)


class TestIO:
    def test_graph_npz_roundtrip(self, tmp_path):
        g = perturbed_grid_mesh(6, 6, seed=0).graph
        path = tmp_path / "g.npz"
        save_graph_npz(g, path)
        g2 = load_graph_npz(path)
        np.testing.assert_array_equal(g2.indptr, g.indptr)
        np.testing.assert_array_equal(g2.indices, g.indices)
        np.testing.assert_array_equal(g2.coords, g.coords)

    def test_graph_npz_weights(self, tmp_path):
        g = CSRGraph.from_edges(2, [(0, 1)], vertex_weights=[2.0, 3.0])
        path = tmp_path / "w.npz"
        save_graph_npz(g, path)
        np.testing.assert_array_equal(load_graph_npz(path).vertex_weights, [2.0, 3.0])

    def test_graph_npz_no_coords(self, tmp_path):
        g = path4()
        path = tmp_path / "nc.npz"
        save_graph_npz(g, path)
        assert load_graph_npz(path).coords is None

    def test_mesh_npz_roundtrip(self, tmp_path):
        m = perturbed_grid_mesh(5, 5, seed=1)
        path = tmp_path / "m.npz"
        save_mesh_npz(m, path)
        m2 = load_mesh_npz(path)
        np.testing.assert_array_equal(m2.points, m.points)
        np.testing.assert_array_equal(m2.cells, m.cells)

    def test_chaco_roundtrip(self, tmp_path):
        g = grid_graph(4, 4)
        path = tmp_path / "g.graph"
        write_chaco(g, path)
        g2 = read_chaco(path)
        assert np.array_equal(g2.edge_array(), g.edge_array())
        np.testing.assert_allclose(g2.coords, g.coords)

    def test_chaco_without_coords(self, tmp_path):
        g = path4()
        path = tmp_path / "p.graph"
        write_chaco(g, path, coords=False)
        g2 = read_chaco(path)
        assert g2.coords is None
        assert g2.num_edges == 3

    def test_chaco_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("")
        with pytest.raises(Exception):
            read_chaco(path)
        path.write_text("3 1\n2\n1\n\n\n")
        with pytest.raises(Exception):
            read_chaco(path)
