"""Tests for data redistribution and remap-cost estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankFailedError, RedistributionError
from repro.net.cluster import uniform_cluster
from repro.net.network import ETHERNET_10MBIT, PointToPointNetwork, SwitchedNetwork
from repro.net.spmd import run_spmd
from repro.partition.arrangement import (
    message_count,
    minimize_cost_redistribution,
    transfer_matrix,
)
from repro.partition.intervals import partition_list
from repro.runtime.redistribution import estimate_remap_cost, redistribute


def do_redistribute(n, old_caps, new_caps, p, old_arr=None, new_arr=None):
    old = partition_list(n, old_caps, old_arr)
    new = partition_list(n, new_caps, new_arr)
    base = np.arange(n, dtype=np.float64) * 3.0

    def fn(ctx):
        lo, hi = old.interval(ctx.rank)
        out = redistribute(ctx, old, new, base[lo:hi].copy())
        nlo, nhi = new.interval(ctx.rank)
        np.testing.assert_array_equal(out, base[nlo:nhi])
        return out.size

    res = run_spmd(uniform_cluster(p), fn, trace=True)
    return res, old, new


class TestRedistribute:
    def test_data_lands_at_new_homes(self):
        res, old, new = do_redistribute(
            100, [0.27, 0.18, 0.34, 0.07, 0.14],
            [0.10, 0.13, 0.29, 0.24, 0.24], 5,
        )
        assert sum(res.values) == 100

    def test_with_mcr_arrangement(self):
        old_caps = [0.27, 0.18, 0.34, 0.07, 0.14]
        new_caps = [0.10, 0.13, 0.29, 0.24, 0.24]
        arr = minimize_cost_redistribution(np.arange(5), old_caps, new_caps, 100)
        do_redistribute(100, old_caps, new_caps, 5, new_arr=arr)

    def test_identity_moves_nothing(self):
        res, old, new = do_redistribute(60, np.ones(3), np.ones(3), 3)
        assert res.trace.message_count() == 0

    def test_message_count_matches_plan(self):
        res, old, new = do_redistribute(
            100, [0.27, 0.18, 0.34, 0.07, 0.14],
            [0.10, 0.13, 0.29, 0.24, 0.24], 5,
        )
        assert res.trace.message_count() == message_count(old, new)

    def test_vector_payload(self):
        old = partition_list(30, [1, 1, 1])
        new = partition_list(30, [3, 2, 1])
        base = np.random.default_rng(0).uniform(size=(30, 2))

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            out = redistribute(ctx, old, new, base[lo:hi].copy())
            nlo, nhi = new.interval(ctx.rank)
            np.testing.assert_array_equal(out, base[nlo:nhi])
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_rejects_wrong_local_size(self):
        old = partition_list(10, [1, 1])
        new = partition_list(10, [3, 1])

        def fn(ctx):
            redistribute(ctx, old, new, np.zeros(2))

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    def test_empty_new_block(self):
        res, old, new = do_redistribute(10, [1.0, 1.0], [1.0, 0.0], 2)
        assert res.values == [10, 0]

    @given(
        seed=st.integers(0, 40),
        n=st.integers(4, 300),
        p=st.integers(2, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_redistribution_preserves_data(self, seed, n, p):
        rng = np.random.default_rng(seed)
        old_caps = rng.dirichlet(np.ones(p)) + 0.05
        new_caps = rng.dirichlet(np.ones(p)) + 0.05
        new_arr = rng.permutation(p)
        old = partition_list(n, old_caps)
        new = partition_list(n, new_caps, new_arr)
        base = rng.uniform(size=n)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            out = redistribute(ctx, old, new, base[lo:hi].copy())
            nlo, nhi = new.interval(ctx.rank)
            np.testing.assert_array_equal(out, base[nlo:nhi])
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)


class TestEstimateRemapCost:
    def test_zero_when_identical(self):
        part = partition_list(100, np.ones(4))
        assert estimate_remap_cost(ETHERNET_10MBIT(), part, part, 8) == 0.0

    def test_scales_with_moved_volume(self):
        old = partition_list(10_000, [1, 1])
        small = partition_list(10_000, [1.1, 1.0])
        big = partition_list(10_000, [4.0, 1.0])
        net = ETHERNET_10MBIT()
        assert estimate_remap_cost(net, old, big, 8) > estimate_remap_cost(
            net, old, small, 8
        )

    def test_scales_with_element_size(self):
        old = partition_list(1000, [1, 1])
        new = partition_list(1000, [2, 1])
        net = ETHERNET_10MBIT()
        assert estimate_remap_cost(net, old, new, 64) > estimate_remap_cost(
            net, old, new, 8
        )

    def test_switched_overlaps_transfers(self):
        old = partition_list(100_000, [1, 1, 1, 1])
        new = partition_list(100_000, [4, 3, 2, 1])
        eth_cost = estimate_remap_cost(ETHERNET_10MBIT(), old, new, 8)
        atm_cost = estimate_remap_cost(SwitchedNetwork(), old, new, 8)
        assert atm_cost < eth_cost

    def test_shared_medium_flag_override(self):
        old = partition_list(50_000, [1, 1, 1])
        new = partition_list(50_000, [3, 2, 1])
        net = PointToPointNetwork()
        serial = estimate_remap_cost(net, old, new, 8, shared_medium=True)
        parallel = estimate_remap_cost(net, old, new, 8, shared_medium=False)
        assert serial >= parallel

    def test_rejects_bad_element_size(self):
        part = partition_list(10, [1, 1])
        with pytest.raises(RedistributionError):
            estimate_remap_cost(ETHERNET_10MBIT(), part, part, 0)

    def test_estimate_tracks_actual(self):
        """The analytic estimate is within 2x of the simulated cost."""
        old = partition_list(20_000, [1, 1, 1, 1])
        new = partition_list(20_000, [0.4, 0.3, 0.2, 0.1])
        est = estimate_remap_cost(PointToPointNetwork(), old, new, 8)
        base = np.zeros(20_000)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            t0 = ctx.clock
            redistribute(ctx, old, new, base[lo:hi].copy())
            ctx.barrier()
            return ctx.clock - t0

        res = run_spmd(uniform_cluster(4), fn)
        actual = max(res.values)
        assert est == pytest.approx(actual, rel=1.0)
