"""Tests for data redistribution and remap-cost estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankFailedError, RedistributionError
from repro.net.cluster import uniform_cluster
from repro.net.message import Tags, pack_arrays
from repro.net.network import ETHERNET_10MBIT, PointToPointNetwork, SwitchedNetwork
from repro.net.spmd import run_spmd
from repro.partition.arrangement import (
    message_count,
    minimize_cost_redistribution,
    transfer_matrix,
)
from repro.partition.intervals import partition_list
from repro.runtime.adaptive import (
    estimate_remap_cost,
    redistribute,
    redistribute_fields,
    transfer_plan_summary,
)
from repro.runtime.backend import BACKENDS


def do_redistribute(n, old_caps, new_caps, p, old_arr=None, new_arr=None):
    old = partition_list(n, old_caps, old_arr)
    new = partition_list(n, new_caps, new_arr)
    base = np.arange(n, dtype=np.float64) * 3.0

    def fn(ctx):
        lo, hi = old.interval(ctx.rank)
        out = redistribute(ctx, old, new, base[lo:hi].copy())
        nlo, nhi = new.interval(ctx.rank)
        np.testing.assert_array_equal(out, base[nlo:nhi])
        return out.size

    res = run_spmd(uniform_cluster(p), fn, trace=True)
    return res, old, new


class TestRedistribute:
    def test_data_lands_at_new_homes(self):
        res, old, new = do_redistribute(
            100, [0.27, 0.18, 0.34, 0.07, 0.14],
            [0.10, 0.13, 0.29, 0.24, 0.24], 5,
        )
        assert sum(res.values) == 100

    def test_with_mcr_arrangement(self):
        old_caps = [0.27, 0.18, 0.34, 0.07, 0.14]
        new_caps = [0.10, 0.13, 0.29, 0.24, 0.24]
        arr = minimize_cost_redistribution(np.arange(5), old_caps, new_caps, 100)
        do_redistribute(100, old_caps, new_caps, 5, new_arr=arr)

    def test_identity_moves_nothing(self):
        res, old, new = do_redistribute(60, np.ones(3), np.ones(3), 3)
        assert res.trace.message_count() == 0

    def test_message_count_matches_plan(self):
        res, old, new = do_redistribute(
            100, [0.27, 0.18, 0.34, 0.07, 0.14],
            [0.10, 0.13, 0.29, 0.24, 0.24], 5,
        )
        assert res.trace.message_count() == message_count(old, new)

    def test_vector_payload(self):
        old = partition_list(30, [1, 1, 1])
        new = partition_list(30, [3, 2, 1])
        base = np.random.default_rng(0).uniform(size=(30, 2))

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            out = redistribute(ctx, old, new, base[lo:hi].copy())
            nlo, nhi = new.interval(ctx.rank)
            np.testing.assert_array_equal(out, base[nlo:nhi])
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_rejects_wrong_local_size(self):
        old = partition_list(10, [1, 1])
        new = partition_list(10, [3, 1])

        def fn(ctx):
            redistribute(ctx, old, new, np.zeros(2))

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    def test_empty_new_block(self):
        res, old, new = do_redistribute(10, [1.0, 1.0], [1.0, 0.0], 2)
        assert res.values == [10, 0]

    @given(
        seed=st.integers(0, 40),
        n=st.integers(4, 300),
        p=st.integers(2, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_redistribution_preserves_data(self, seed, n, p):
        rng = np.random.default_rng(seed)
        old_caps = rng.dirichlet(np.ones(p)) + 0.05
        new_caps = rng.dirichlet(np.ones(p)) + 0.05
        new_arr = rng.permutation(p)
        old = partition_list(n, old_caps)
        new = partition_list(n, new_caps, new_arr)
        base = rng.uniform(size=n)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            out = redistribute(ctx, old, new, base[lo:hi].copy())
            nlo, nhi = new.interval(ctx.rank)
            np.testing.assert_array_equal(out, base[nlo:nhi])
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)


class TestEstimateRemapCost:
    def test_zero_when_identical(self):
        part = partition_list(100, np.ones(4))
        assert estimate_remap_cost(ETHERNET_10MBIT(), part, part, 8) == 0.0

    def test_scales_with_moved_volume(self):
        old = partition_list(10_000, [1, 1])
        small = partition_list(10_000, [1.1, 1.0])
        big = partition_list(10_000, [4.0, 1.0])
        net = ETHERNET_10MBIT()
        assert estimate_remap_cost(net, old, big, 8) > estimate_remap_cost(
            net, old, small, 8
        )

    def test_scales_with_element_size(self):
        old = partition_list(1000, [1, 1])
        new = partition_list(1000, [2, 1])
        net = ETHERNET_10MBIT()
        assert estimate_remap_cost(net, old, new, 64) > estimate_remap_cost(
            net, old, new, 8
        )

    def test_switched_overlaps_transfers(self):
        old = partition_list(100_000, [1, 1, 1, 1])
        new = partition_list(100_000, [4, 3, 2, 1])
        eth_cost = estimate_remap_cost(ETHERNET_10MBIT(), old, new, 8)
        atm_cost = estimate_remap_cost(SwitchedNetwork(), old, new, 8)
        assert atm_cost < eth_cost

    def test_shared_medium_flag_override(self):
        old = partition_list(50_000, [1, 1, 1])
        new = partition_list(50_000, [3, 2, 1])
        net = PointToPointNetwork()
        serial = estimate_remap_cost(net, old, new, 8, shared_medium=True)
        parallel = estimate_remap_cost(net, old, new, 8, shared_medium=False)
        assert serial >= parallel

    def test_rejects_bad_element_size(self):
        part = partition_list(10, [1, 1])
        with pytest.raises(RedistributionError):
            estimate_remap_cost(ETHERNET_10MBIT(), part, part, 0)

    def test_estimate_tracks_actual(self):
        """The analytic estimate is within 2x of the simulated cost."""
        old = partition_list(20_000, [1, 1, 1, 1])
        new = partition_list(20_000, [0.4, 0.3, 0.2, 0.1])
        est = estimate_remap_cost(PointToPointNetwork(), old, new, 8)
        base = np.zeros(20_000)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            t0 = ctx.clock
            redistribute(ctx, old, new, base[lo:hi].copy())
            ctx.barrier()
            return ctx.clock - t0

        res = run_spmd(uniform_cluster(4), fn)
        actual = max(res.values)
        assert est == pytest.approx(actual, rel=1.0)


class TestRedistributeFields:
    """The packed multi-field exchange (ISSUE 3 tentpole)."""

    def run_fields(self, n, old, new, fields, p, *, backend=None):
        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            outs = redistribute_fields(
                ctx, old, new, [f[lo:hi].copy() for f in fields],
                backend=backend,
            )
            return outs

        return run_spmd(uniform_cluster(p), fn, trace=True)

    def test_multi_field_lands_at_new_homes(self):
        n, p = 120, 4
        rng = np.random.default_rng(7)
        old = partition_list(n, [0.3, 0.3, 0.2, 0.2])
        new = partition_list(n, [0.1, 0.2, 0.3, 0.4], [2, 0, 3, 1])
        fields = [
            rng.uniform(size=n),
            rng.integers(0, 1000, size=n),
            rng.uniform(size=(n, 3)),
        ]
        res = self.run_fields(n, old, new, fields, p)
        for rank, outs in enumerate(res.values):
            lo, hi = new.interval(rank)
            for f, out in zip(fields, outs):
                np.testing.assert_array_equal(out, f[lo:hi])
                assert out.dtype == f.dtype

    def test_one_packed_message_per_peer(self):
        """k fields still cost one message per peer pair, not k."""
        n, p = 100, 5
        old = partition_list(n, [0.27, 0.18, 0.34, 0.07, 0.14])
        new = partition_list(n, [0.10, 0.13, 0.29, 0.24, 0.24])
        fields = [np.arange(n, dtype=np.float64), np.ones(n)]
        res = self.run_fields(n, old, new, fields, p)
        assert res.trace.message_count() == message_count(old, new)

    def test_identity_guard_detects_corrupt_slab(self):
        """A slab whose vertex identity disagrees with the plan is rejected."""
        n = 10
        old = partition_list(n, [1.0, 1.0])
        new = partition_list(n, [1.2, 0.8])  # plan: rank1 -> rank0 slab
        data = np.arange(n, dtype=np.float64)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            if ctx.rank == 1:
                # Impersonate the exchange but lie about which vertices move.
                [tr] = transfer_matrix(old, new)
                wrong_identity = np.arange(tr.lo + 1, tr.hi + 1, dtype=np.intp)
                ctx.send(
                    tr.dest,
                    pack_arrays([
                        wrong_identity,
                        data[tr.lo - lo : tr.hi - lo],
                    ]),
                    Tags.REDISTRIBUTE,
                )
                return None
            return redistribute_fields(ctx, old, new, [data[lo:hi].copy()])

        with pytest.raises(RankFailedError) as err:
            run_spmd(uniform_cluster(2), fn)
        assert "identities" in str(err.value)

    def test_rejects_empty_field_list(self):
        old = partition_list(10, [1, 1])

        def fn(ctx):
            redistribute_fields(ctx, old, old, [])

        with pytest.raises(RankFailedError):
            run_spmd(uniform_cluster(2), fn)

    @given(
        seed=st.integers(0, 60),
        n=st.integers(6, 250),
        p=st.integers(2, 5),
        k=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_bit_identical_across_backends(self, seed, n, p, k):
        """Both backends: same arrays, bit for bit, and same virtual times."""
        rng = np.random.default_rng(seed)
        old = partition_list(n, rng.dirichlet(np.ones(p)) + 0.05)
        new = partition_list(
            n, rng.dirichlet(np.ones(p)) + 0.05, rng.permutation(p)
        )
        fields = [rng.uniform(-1e6, 1e6, size=n) for _ in range(k)]

        per_backend = {}
        for backend in BACKENDS:
            def fn(ctx):
                lo, hi = old.interval(ctx.rank)
                return redistribute_fields(
                    ctx, old, new,
                    [f[lo:hi].copy() for f in fields],
                    backend=backend,
                )

            res = run_spmd(uniform_cluster(p), fn)
            per_backend[backend] = res
            for rank, outs in enumerate(res.values):
                lo, hi = new.interval(rank)
                for f, out in zip(fields, outs):
                    np.testing.assert_array_equal(out, f[lo:hi])
        ref, vec = per_backend["reference"], per_backend["vectorized"]
        for a, b in zip(ref.values, vec.values):
            for fa, fb in zip(a, b):
                np.testing.assert_array_equal(fa, fb)
        # PointToPointNetwork is deterministic, so virtual clocks must agree
        # exactly: both backends send identical payloads in identical order.
        assert ref.clocks == vec.clocks

    def test_single_field_wrapper_matches_fields_form(self):
        n, p = 80, 3
        rng = np.random.default_rng(3)
        old = partition_list(n, [0.5, 0.3, 0.2])
        new = partition_list(n, [0.2, 0.3, 0.5])
        base = rng.uniform(size=n)

        def fn(ctx):
            lo, hi = old.interval(ctx.rank)
            a = redistribute(ctx, old, new, base[lo:hi].copy())
            [b] = redistribute_fields(ctx, old, new, [base[lo:hi].copy()])
            np.testing.assert_array_equal(a, b)
            return True

        assert all(run_spmd(uniform_cluster(p), fn).values)


class TestTransferPlanSummary:
    def test_paper_example_structure(self):
        old = partition_list(100, [0.27, 0.18, 0.34, 0.07, 0.14])
        new = partition_list(100, [0.10, 0.13, 0.29, 0.24, 0.24])
        summary = transfer_plan_summary(old, new, num_fields=2)
        assert summary["packed_messages"] == message_count(old, new)
        assert summary["moved_elements"] == sum(
            tr.count for tr in transfer_matrix(old, new)
        )
        # Every packed message prices identity + both fields.
        for key, nbytes in summary["packed_message_nbytes"].items():
            src, dst = key.split("->")
            count = sum(
                tr.count
                for tr in transfer_matrix(old, new)
                if tr.source == int(src) and tr.dest == int(dst)
            )
            assert nbytes >= count * (8 + 2 * 8)

    def test_identity_partition_is_empty(self):
        part = partition_list(50, np.ones(4))
        summary = transfer_plan_summary(part, part)
        assert summary["transfers"] == []
        assert summary["packed_messages"] == 0
        assert summary["moved_elements"] == 0
