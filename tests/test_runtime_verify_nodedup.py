"""Tests for global schedule verification and the no-dedup builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.graph.generators import perturbed_grid_mesh
from repro.net.cluster import uniform_cluster
from repro.net.spmd import run_spmd
from repro.partition.intervals import partition_list
from repro.partition.rcb import RCBOrdering
from repro.runtime.executor import gather
from repro.runtime.kernels import build_kernel_plan, sequential_kernel
from repro.runtime.schedule import CommSchedule
from repro.runtime.schedule_builders import (
    build_schedule_no_dedup,
    build_schedule_sort1,
    build_schedule_sort2,
)
from repro.runtime.verify import check_global_consistency


@pytest.fixture(scope="module")
def mesh():
    g = perturbed_grid_mesh(12, 12, seed=6).graph
    return g.permute(RCBOrdering()(g))


@pytest.fixture(scope="module")
def part(mesh):
    return partition_list(mesh.num_vertices, [0.4, 0.35, 0.25])


class TestCheckGlobalConsistency:
    def test_accepts_valid_sorted_schedules(self, mesh, part):
        scheds = [build_schedule_sort1(mesh, part, r) for r in range(3)]
        report = check_global_consistency(scheds, mesh)
        assert report.ok
        assert report.num_ranks == 3
        assert report.total_ghost_slots > 0
        assert report.total_send_entries == report.total_ghost_slots
        assert 0 < report.max_ghost_fraction < 1.0

    def test_accepts_no_dedup_schedules(self, mesh, part):
        scheds = [build_schedule_no_dedup(mesh, part, r) for r in range(3)]
        report = check_global_consistency(scheds, mesh)
        assert report.ok

    def test_detects_tampered_send_list(self, mesh, part):
        scheds = [build_schedule_sort1(mesh, part, r) for r in range(3)]
        bad = scheds[0]
        dest = next(iter(bad.send_lists))
        tampered = dict(bad.send_lists)
        tampered[dest] = tampered[dest][:-1]  # drop one element
        scheds[0] = CommSchedule(
            rank=0, partition=part, send_lists=tampered,
            recv_lists=bad.recv_lists, ghost_globals=bad.ghost_globals,
        )
        with pytest.raises(ScheduleError, match="mismatch"):
            check_global_consistency(scheds, mesh)

    def test_detects_missing_coverage(self, mesh, part):
        scheds = [build_schedule_sort1(mesh, part, r) for r in range(3)]
        # Empty out rank 1's schedule entirely: its references go uncovered.
        scheds[1] = CommSchedule(rank=1, partition=part)
        with pytest.raises(ScheduleError):
            check_global_consistency(scheds, mesh)

    def test_nonstrict_collects_issues(self, mesh, part):
        scheds = [build_schedule_sort1(mesh, part, r) for r in range(3)]
        scheds[1] = CommSchedule(rank=1, partition=part)
        report = check_global_consistency(scheds, mesh, strict=False)
        assert not report.ok
        assert len(report.issues) >= 2  # mismatches + coverage

    def test_detects_rank_order(self, mesh, part):
        scheds = [build_schedule_sort1(mesh, part, r) for r in range(3)]
        swapped = [scheds[1], scheds[0], scheds[2]]
        with pytest.raises(ScheduleError, match="claims rank"):
            check_global_consistency(swapped)

    def test_rejects_empty_input(self):
        with pytest.raises(ScheduleError):
            check_global_consistency([])


class TestNoDedupBuilder:
    def test_ghosts_have_duplicates(self, mesh, part):
        naive = build_schedule_no_dedup(mesh, part, 1)
        dedup = build_schedule_sort2(mesh, part, 1)
        assert naive.ghost_size > dedup.ghost_size
        np.testing.assert_array_equal(
            np.unique(naive.ghost_globals), dedup.ghost_globals
        )

    def test_slot_count_equals_offproc_references(self, mesh, part):
        from repro.runtime.schedule_builders import local_references

        for r in range(3):
            naive = build_schedule_no_dedup(mesh, part, r)
            lo, hi = part.interval(r)
            _, nbr = local_references(mesh, part, r)
            off = nbr[(nbr < lo) | (nbr >= hi)]
            assert naive.ghost_size == off.size

    def test_gather_delivers_correct_values(self, mesh, part):
        y = np.random.default_rng(0).uniform(size=mesh.num_vertices)

        def fn(ctx):
            sched = build_schedule_no_dedup(mesh, part, ctx.rank)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi])
            np.testing.assert_array_equal(ghost, y[sched.ghost_globals])
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_kernel_still_correct(self, mesh, part):
        """The fat schedule feeds the kernel identical results."""
        y = np.random.default_rng(1).uniform(size=mesh.num_vertices)
        expected = sequential_kernel(mesh, y)

        def fn(ctx):
            sched = build_schedule_no_dedup(mesh, part, ctx.rank)
            plan = build_kernel_plan(mesh, part, sched)
            lo, hi = part.interval(ctx.rank)
            ghost = gather(ctx, sched, y[lo:hi])
            out = plan.sweep(y[lo:hi], ghost)
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-12)
            return True

        assert all(run_spmd(uniform_cluster(3), fn).values)

    def test_send_volume_exceeds_dedup(self, mesh, part):
        naive_vol = sum(
            build_schedule_no_dedup(mesh, part, r).send_volume for r in range(3)
        )
        dedup_vol = sum(
            build_schedule_sort2(mesh, part, r).send_volume for r in range(3)
        )
        assert naive_vol > dedup_vol
