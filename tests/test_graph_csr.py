"""Tests for the CSR graph structure (+ property tests on construction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def triangle() -> CSRGraph:
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        np.testing.assert_array_equal(g.degrees, [2, 2, 2])

    def test_from_edges_drops_duplicates(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_drops_self_loops(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_empty(self):
        g = CSRGraph.from_edges(4, [])
        assert g.num_vertices == 4
        assert g.num_edges == 0

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_rejects_asymmetric(self):
        # 0->1 stored but not 1->0.
        with pytest.raises(GraphError, match="symmetric"):
            CSRGraph(indptr=np.array([0, 1, 1]), indices=np.array([1]))

    def test_rejects_self_loop_in_csr(self):
        with pytest.raises(GraphError, match="self-loops"):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0]))

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([1, 0]))

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(GraphError, match="disagrees"):
            CSRGraph(indptr=np.array([0, 5]), indices=np.array([1]))

    def test_coords_validation(self):
        coords = np.zeros((3, 2))
        g = CSRGraph.from_edges(3, [(0, 1)], coords=coords)
        assert g.dim == 2
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(0, 1)], coords=np.zeros((2, 2)))
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(0, 1)], coords=np.zeros((3, 5)))

    def test_weights_validation(self):
        g = CSRGraph.from_edges(2, [(0, 1)], vertex_weights=[1.0, 2.0])
        np.testing.assert_array_equal(g.weights(), [1.0, 2.0])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 1)], vertex_weights=[-1.0, 2.0])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 1)], vertex_weights=[1.0])

    def test_default_weights_uniform(self):
        np.testing.assert_array_equal(triangle().weights(), np.ones(3))


class TestAccessors:
    def test_neighbors(self):
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        np.testing.assert_array_equal(np.sort(g.neighbors(0)), [1, 2, 3])
        np.testing.assert_array_equal(g.neighbors(1), [0])

    def test_neighbors_out_of_range(self):
        with pytest.raises(GraphError):
            triangle().neighbors(9)

    def test_edge_array_canonical(self):
        edges = triangle().edge_array()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        # Sorted lexicographically.
        assert np.array_equal(edges, np.array([[0, 1], [0, 2], [1, 2]]))

    def test_iter_edges(self):
        assert list(triangle().iter_edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_repr(self):
        assert "n=3" in repr(triangle())


class TestPermute:
    def test_permute_identity(self):
        g = triangle()
        g2 = g.permute([0, 1, 2])
        assert np.array_equal(g2.edge_array(), g.edge_array())

    def test_permute_relabels_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        g2 = g.permute([2, 0, 1])  # 0->2, 1->0
        assert list(g2.iter_edges()) == [(0, 2)]

    def test_permute_carries_coords(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], coords=coords)
        g2 = g.permute([2, 0, 1])
        # new vertex 2 is old vertex 0.
        np.testing.assert_array_equal(g2.coords[2], coords[0])

    def test_permute_carries_weights(self):
        g = CSRGraph.from_edges(2, [(0, 1)], vertex_weights=[5.0, 7.0])
        g2 = g.permute([1, 0])
        np.testing.assert_array_equal(g2.vertex_weights, [7.0, 5.0])

    def test_permute_rejects_invalid(self):
        with pytest.raises(ValueError):
            triangle().permute([0, 0, 1])

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_permute_preserves_structure(self, data):
        n = data.draw(st.integers(2, 12))
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = data.draw(
            st.lists(st.sampled_from(possible), max_size=20, unique=True)
        )
        g = CSRGraph.from_edges(n, edges)
        perm = np.array(data.draw(st.permutations(list(range(n)))))
        g2 = g.permute(perm)
        assert g2.num_edges == g.num_edges
        # degree multiset invariant under relabeling
        assert sorted(g2.degrees.tolist()) == sorted(g.degrees.tolist())
        # each original edge maps to a permuted edge
        original = {(min(u, v), max(u, v)) for u, v in g.iter_edges()}
        mapped = {
            (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in original
        }
        assert mapped == {(u, v) for u, v in g2.iter_edges()}

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_from_edges_symmetric_property(self, data):
        n = data.draw(st.integers(1, 15))
        edges = data.draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=30,
            )
        )
        g = CSRGraph.from_edges(n, edges)
        # Symmetry: u in adj(v) iff v in adj(u); validated at construction,
        # double-check via explicit membership.
        for u, v in g.iter_edges():
            assert u in g.neighbors(v)
            assert v in g.neighbors(u)
